//! TPC-C under chaos, plus the "my nightly failed" workflow: catch an
//! isolation bug with the serializability checker and shrink the failing
//! fault schedule to a minimal, replayable timeline.
//!
//! ```text
//! cargo run --release --example tpcc_chaos [seed]
//! ```
//!
//! Part 1 runs the real five-profile TPC-C mix through a named chaos preset
//! and prints the four checker verdicts (atomicity, durability, liveness,
//! serializability). Part 2 arms the storage engines' lock-bypass fail point
//! (every 2nd read skips its shared lock — a deliberately injected isolation
//! bug), proves the checker catches it under a noisy seeded-random schedule,
//! then delta-debugs the schedule down to a minimal repro and writes it to
//! `target/chaos/minimized_timeline.txt`, replays the minimized repro with
//! the deterministic tracer installed, and attaches the span tree as
//! `target/chaos/minimized.trace.json` (Perfetto-loadable; the chaos-drills
//! CI job uploads both files as artifacts).

use std::rc::Rc;

use geotp::chaos::telemetry::{attach_trace_on_failure, run_scenario_with_traced};
use geotp::chaos::{
    run_scenario_with, shrink_schedule, DrillWorkload, FaultSchedule, RandomFaultConfig, Scenario,
    TpccChaosWorkload,
};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);

    // ---------------- part 1: TPC-C under a chaos preset ----------------
    let scenario = Scenario::CrashDuringBrownout;
    println!(
        "== TPC-C under chaos: {} (seed {seed}) ==\n",
        scenario.name()
    );
    let report = scenario.run_with(seed, DrillWorkload::Tpcc);
    for line in report.trace.iter().rev().take(8).rev() {
        println!("  {line}");
    }
    println!(
        "\nclient view: {} committed, {} aborted, {} indeterminate",
        report.committed, report.aborted, report.indeterminate
    );
    println!(
        "invariants: atomicity={} durability={} liveness={} serializability={}",
        report.invariants.atomicity_ok,
        report.invariants.durability_ok,
        report.invariants.liveness_ok,
        report.invariants.serializability_ok
    );
    assert!(
        report.invariants.all_hold(),
        "{:?}",
        report.invariants.violations
    );
    assert_eq!(
        report.fingerprint,
        scenario.run_with(seed, DrillWorkload::Tpcc).fingerprint,
        "replay must be bit-identical"
    );
    println!("replay fingerprint matches — the run is bit-reproducible.");

    // ---------------- part 2: inject a bug, catch it, shrink it ----------------
    println!("\n== injected isolation bug: catch + shrink ==\n");
    let (mut config, _) = Scenario::RandomizedFaults.build(seed);
    config.isolation_bug_read_stride = Some(2);
    let noisy = FaultSchedule::random(
        config.seed,
        &RandomFaultConfig {
            data_sources: config.nodes(),
            faults: 8,
            horizon: std::time::Duration::from_secs(60),
        },
    );
    let fails = |schedule: &FaultSchedule| {
        let workload = Rc::new(TpccChaosWorkload::drill_scale(config.nodes()));
        let run = run_scenario_with(config.clone(), schedule.clone(), workload);
        !run.invariants.serializability_ok
    };
    println!("noisy schedule: {} events", noisy.events.len());
    let Some(shrink) = shrink_schedule(&noisy, 80, fails) else {
        // CI runs this as a gate: a shrink that silently does nothing must
        // fail the step, not upload no artifact. (Regression-pinned seeds
        // live in crates/chaos/tests/shrink_repro.rs; seed 1 trips the bug.)
        eprintln!("seed {seed} did not trip the injected bug — the shrink gate is vacuous");
        std::process::exit(1);
    };
    println!(
        "checker caught the bug; ddmin: {} -> {} event(s) in {} run(s)",
        shrink.initial_events, shrink.minimized_events, shrink.runs
    );
    let timeline = shrink.timeline();
    println!("minimized replayable timeline:\n{timeline}");
    let replayed = FaultSchedule::parse_timeline(&timeline).expect("timeline parses");
    assert!(fails(&replayed), "replayed timeline must still fail");
    println!("replayed timeline still fails — minimal repro confirmed.");

    let out_dir = std::path::Path::new("target/chaos");
    std::fs::create_dir_all(out_dir).expect("create target/chaos");
    let out = out_dir.join("minimized_timeline.txt");
    std::fs::write(&out, &timeline).expect("write timeline artifact");
    println!("artifact written: {}", out.display());

    // Replay the minimized repro once more with the deterministic tracer
    // installed (tracing never changes the schedule, so it reproduces the
    // exact same failure) and attach the full span tree to the bug report:
    // a Chrome-trace/Perfetto JSON plus the event trace + metrics snapshot.
    let workload = Rc::new(TpccChaosWorkload::drill_scale(config.nodes()));
    let (traced_run, telemetry) = run_scenario_with_traced(config.clone(), replayed, workload);
    assert!(
        !traced_run.invariants.serializability_ok,
        "traced replay must reproduce the failure"
    );
    let trace_artifact = attach_trace_on_failure(out_dir, "minimized", &traced_run, &telemetry)
        .expect("write trace artifact")
        .expect("a failing run always attaches its trace");
    println!(
        "trace attached: {} ({} spans) — load it in ui.perfetto.dev",
        trace_artifact.display(),
        telemetry.tracer.len()
    );
}
