//! Run a small YCSB benchmark (the paper's default medium-contention
//! configuration, scaled down) against SSP, QURO, Chiller and GeoTP and print
//! a Fig. 7-style comparison.
//!
//! ```text
//! cargo run --release --example ycsb_comparison
//! ```

use std::rc::Rc;
use std::time::Duration;

use geotp::prelude::*;

fn main() {
    let protocols = [
        Protocol::SspXa,
        Protocol::Quro,
        Protocol::Chiller,
        Protocol::geotp(),
    ];
    println!("== YCSB, medium contention, 20% distributed transactions, 4 regions ==\n");
    println!(
        "{:<12} {:>16} {:>16} {:>12} {:>12}",
        "middleware", "tput (txn/s)", "avg lat (ms)", "p99 (ms)", "abort rate"
    );
    for protocol in protocols {
        let mut rt = geotp::runtime();
        let report = rt.block_on(async {
            let cluster = ClusterBuilder::new()
                .paper_default_sources()
                .records_per_node(2_000)
                .protocol(protocol)
                .build();
            let ycsb = YcsbConfig::new(4, 2_000)
                .with_contention(Contention::Medium)
                .with_distributed_ratio(0.2);
            let generator = Rc::new(YcsbGenerator::new(ycsb));
            generator.load(cluster.data_sources());
            run_benchmark(
                Rc::clone(cluster.middleware()),
                WorkloadMix::Ycsb(generator),
                DriverConfig {
                    terminals: 16,
                    warmup: Duration::from_secs(1),
                    measure: Duration::from_secs(8),
                    seed: 7,
                },
            )
            .await
        });
        println!(
            "{:<12} {:>16.1} {:>16.1} {:>12.1} {:>11.1}%",
            report.label,
            report.throughput(),
            report.mean_latency().as_secs_f64() * 1e3,
            report.p99_latency().as_secs_f64() * 1e3,
            report.abort_rate() * 100.0
        );
    }
    println!("\n(virtual-time measurement; wall-clock runtime is a small fraction of the simulated window)");
}
