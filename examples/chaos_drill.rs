//! Run one chaos failure drill and print its replayable trace.
//!
//! The drill crashes the coordinator deterministically right after it
//! flushes a commit decision (paper §V-A), fails over to a successor that
//! replays the shared commit log, and checks atomicity / durability /
//! liveness over the durable state. Pass a seed to see a different — but
//! individually perfectly reproducible — history.
//!
//! ```text
//! cargo run --release --example chaos_drill [seed]
//! ```

use geotp::Scenario;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let scenario = Scenario::CoordinatorFailover;
    println!("== chaos drill: {} (seed {seed}) ==\n", scenario.name());

    let report = scenario.run(seed);
    for line in &report.trace {
        println!("  {line}");
    }
    println!(
        "\nclient view: {} committed, {} aborted, {} indeterminate (coordinator crash)",
        report.committed, report.aborted, report.indeterminate
    );
    println!(
        "invariants: atomicity={} durability={} liveness={}",
        report.invariants.atomicity_ok,
        report.invariants.durability_ok,
        report.invariants.liveness_ok
    );
    for violation in &report.invariants.violations {
        println!("  VIOLATION: {violation}");
    }
    println!("trace fingerprint: {:016x}", report.fingerprint);

    // Replayability is the whole point: run it again, byte-for-byte equal.
    let replay = scenario.run(seed);
    assert_eq!(report.fingerprint, replay.fingerprint);
    println!("replay fingerprint matches — the run is bit-reproducible.");
    assert!(report.invariants.all_hold());
}
