//! Trace one chaos drill end to end and explain where the latency went.
//!
//! Runs the transfer workload through the coordinator-failover preset (the
//! coordinator crashes mid-drill and a successor takes over from the shared
//! commit log) with the telemetry collector installed, then:
//!
//! 1. prints the metrics-registry counters the run produced,
//! 2. finds the *slowest committed* transaction and prints its critical-path
//!    breakdown — which span kinds its end-to-end latency is attributed to,
//! 3. writes the whole run as a Chrome-trace file you can open at
//!    `ui.perfetto.dev` or `chrome://tracing`:
//!    `target/chaos/trace_explorer.trace.json`.
//!
//! Tracing never perturbs the schedule (same fingerprint with or without a
//! collector), so what you explore is exactly what an untraced run does.
//!
//! ```text
//! cargo run --release --example trace_explorer [seed]
//! ```

use geotp::chaos::telemetry::run_scenario_traced;
use geotp::chaos::Scenario;
use geotp::telemetry::{critical_path, write_chrome_trace, SpanKind};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let scenario = Scenario::CoordinatorFailover;
    println!("== trace explorer: {} (seed {seed}) ==\n", scenario.name());

    let (config, schedule) = scenario.build(seed);
    let (report, telemetry) = run_scenario_traced(config, schedule);
    assert!(report.invariants.all_hold());
    println!(
        "client view: {} committed, {} aborted, {} indeterminate (coordinator crash)",
        report.committed, report.aborted, report.indeterminate
    );

    println!("\n-- metrics registry --");
    print!("{}", telemetry.metrics.snapshot().render());

    // A transaction committed iff its trace reached commit dispatch; rank the
    // committed ones by their root Txn span's duration.
    let spans = telemetry.tracer.spans();
    let slowest = spans
        .iter()
        .filter(|s| {
            s.kind == SpanKind::Txn
                && spans
                    .iter()
                    .any(|c| c.id.gtrid == s.id.gtrid && c.kind == SpanKind::CommitDispatch)
        })
        .max_by_key(|s| (s.duration_micros(), s.id.gtrid))
        .expect("the drill commits transactions");
    let gtrid = slowest.id.gtrid;
    println!(
        "\n-- critical path of the slowest committed transaction (gtrid {gtrid}, {} us) --",
        slowest.duration_micros()
    );
    let path = critical_path(&spans, gtrid).expect("a committed txn has a root span");
    print!("{}", path.render());

    drop(spans);
    let out = std::path::Path::new("target/chaos/trace_explorer.trace.json");
    std::fs::create_dir_all(out.parent().unwrap()).expect("create target/chaos");
    write_chrome_trace(out, &telemetry.tracer.spans()).expect("write chrome trace");
    println!(
        "\nwrote {} ({} spans) — open it at ui.perfetto.dev",
        out.display(),
        telemetry.tracer.len()
    );
}
