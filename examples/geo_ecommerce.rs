//! The paper's motivating application (§I): a global e-commerce platform that
//! stores US user accounts in a US data source and stock data in a Singapore
//! data source. A purchase must update both atomically.
//!
//! The example runs the same purchase workload against a classic XA
//! middleware (SSP) and against GeoTP, and prints the latency and lock
//! contention span difference — the crux of Figures 2 and 4 in the paper.
//!
//! ```text
//! cargo run --example geo_ecommerce
//! ```

use std::time::Duration;

use geotp::prelude::*;
use geotp::USERTABLE;
use geotp_simrt::join_all;

const RECORDS: u64 = 10_000;

/// One purchase: charge the user's US account, decrement Singapore stock.
fn purchase(user: u64, item: u64) -> TransactionSpec {
    TransactionSpec::single_round(vec![
        ClientOp::add(GlobalKey::new(USERTABLE, user), -50),
        ClientOp::add(GlobalKey::new(USERTABLE, RECORDS + item), -1),
    ])
}

/// A local "check my account" transaction touching only the US data source.
fn account_check(user: u64) -> TransactionSpec {
    TransactionSpec::single_round(vec![
        ClientOp::Read(GlobalKey::new(USERTABLE, user)),
        ClientOp::add(GlobalKey::new(USERTABLE, user), 0),
    ])
}

async fn run_scenario(protocol: Protocol) -> (f64, f64, f64) {
    let cluster = ClusterBuilder::new()
        .data_source(10, Dialect::Postgres) // US accounts, close to the middleware
        .data_source(100, Dialect::MySql) // Singapore stock, far away
        .records_per_node(RECORDS)
        .protocol(protocol)
        .build();
    cluster.load_uniform(RECORDS, 1_000);

    // A purchase and a local account check race on the same user record.
    // Each client holds its own session against the middleware (the
    // session-first front door; `run_spec` replays the whole script through
    // a live transaction handle).
    let mut buyer_session = cluster.connect(1);
    let mut checker_session = cluster.connect(2);
    let buyer = geotp_simrt::spawn(async move { buyer_session.run_spec(&purchase(7, 99)).await });
    // The account check arrives 5 ms later, like T2 in the paper's Fig. 2.
    // Under full GeoTP the hotspot heuristics may *reject* it at admission
    // (the user record is forecast hot); rejection is an explicit
    // back-off-and-retry signal, so the client simply resubmits.
    let checker = geotp_simrt::spawn(async move {
        geotp_simrt::sleep(Duration::from_millis(5)).await;
        loop {
            let outcome = checker_session.run_spec(&account_check(7)).await;
            if outcome.abort_reason == Some(geotp::middleware::AbortReason::AdmissionRejected) {
                continue;
            }
            break outcome;
        }
    });
    let results = join_all(vec![buyer, checker]).await;
    let purchase_latency = results[0].latency.as_secs_f64() * 1e3;
    let check_latency = results[1].latency.as_secs_f64() * 1e3;
    assert!(results[0].committed && results[1].committed);

    // Lock contention span observed on the US (fast) data source.
    let span_us = cluster.data_sources()[0].engine().stats();
    let avg_span_ms = if span_us.contention_span_samples == 0 {
        0.0
    } else {
        span_us.total_contention_span_micros as f64 / span_us.contention_span_samples as f64 / 1e3
    };
    (purchase_latency, check_latency, avg_span_ms)
}

fn main() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        println!("== Geo-distributed e-commerce: purchase + concurrent account check ==\n");
        println!(
            "{:<12} {:>18} {:>22} {:>26}",
            "middleware", "purchase (ms)", "account check (ms)", "avg lock span on US DS (ms)"
        );
        for protocol in [Protocol::SspXa, Protocol::geotp_o1(), Protocol::geotp()] {
            let (purchase_ms, check_ms, span_ms) = run_scenario(protocol).await;
            println!(
                "{:<12} {:>18.1} {:>22.1} {:>26.1}",
                protocol.name(),
                purchase_ms,
                check_ms,
                span_ms
            );
        }
        println!(
            "\nGeoTP commits the cross-region purchase in ~2 WAN round trips instead of 3,\n\
             and the latency-aware scheduler keeps the US record's lock span near its own\n\
             10 ms RTT, so the local account check no longer queues behind the purchase."
        );
    });
}
