//! Quickstart: build a two-region deployment, connect a client session, run
//! a cross-region bank transfer interactively (via the SQL front door) and
//! print where the latency went.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use geotp::prelude::*;
use geotp::USERTABLE;

fn main() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        // A PostgreSQL data source 10 ms away and a MySQL data source 100 ms
        // away, fronted by a GeoTP middleware co-located with the client.
        let cluster = ClusterBuilder::new()
            .data_source(10, Dialect::Postgres)
            .data_source(100, Dialect::MySql)
            .records_per_node(10_000)
            .protocol(Protocol::geotp())
            .build();
        cluster.load_uniform(10_000, 1_000);

        println!("== GeoTP quickstart ==");
        println!("DS0 (PostgreSQL): RTT 10 ms   DS1 (MySQL): RTT 100 ms\n");

        // Connect a client session — the front door is session-first: the
        // session holds live transactions and ships statements one round at
        // a time. Bob's account (id 42) lives on DS0, Alice's (id 10_042) on
        // DS1. The `/*+ last */` annotation lets GeoTP trigger the
        // decentralized prepare as soon as that statement finishes.
        let mut session = cluster.connect(1);
        let outcome = session
            .run_sql(
                "BEGIN; \
                 UPDATE savings SET bal = bal - 100 WHERE id = 10042; \
                 UPDATE savings SET bal = bal + 100 WHERE id = 42 /*+ last */; \
                 COMMIT;",
            )
            .await
            .expect("the transfer script parses");

        println!("committed      : {}", outcome.committed);
        println!("distributed    : {}", outcome.distributed);
        println!(
            "total latency  : {:.1} ms",
            outcome.latency.as_secs_f64() * 1e3
        );
        let b = outcome.breakdown;
        println!("  analysis     : {:.2} ms", b.analysis.as_secs_f64() * 1e3);
        println!("  execution    : {:.2} ms", b.execution.as_secs_f64() * 1e3);
        println!(
            "  prepare wait : {:.2} ms  (decentralized prepare, no extra WAN trip)",
            b.prepare_wait.as_secs_f64() * 1e3
        );
        println!("  log flush    : {:.2} ms", b.log_flush.as_secs_f64() * 1e3);
        println!("  commit       : {:.2} ms", b.commit.as_secs_f64() * 1e3);

        let alice = cluster.sum_records([GlobalKey::new(USERTABLE, 10_042)]);
        let bob = cluster.sum_records([GlobalKey::new(USERTABLE, 42)]);
        println!("\nbalances after transfer: Alice={alice}  Bob={bob}");
        assert!(outcome.committed);
        assert_eq!(alice + bob, 2_000);

        // The same transfer from a *remote* client 40 ms from the middleware:
        // every statement round pays the client↔middleware hop, and that
        // time is visible in the breakdown.
        let remote_client = NodeId::client(0);
        cluster.network().set_link(
            remote_client,
            NodeId::middleware(0),
            geotp::StaticLatency::new(std::time::Duration::from_millis(40)),
        );
        let mut remote = cluster.connect_from(remote_client, 2);
        let mut txn = remote.begin().await.unwrap();
        txn.execute_sql("UPDATE savings SET bal = bal - 10 WHERE id = 10042")
            .await
            .unwrap();
        txn.execute_sql("UPDATE savings SET bal = bal + 10 WHERE id = 42 /*+ last */")
            .await
            .unwrap();
        let remote_outcome = txn.commit().await;
        assert!(remote_outcome.committed);
        println!(
            "\nremote client (40 ms away): total {:.1} ms, of which client\u{2194}middleware {:.1} ms",
            remote_outcome.latency.as_secs_f64() * 1e3,
            remote_outcome.breakdown.client_rtt.as_secs_f64() * 1e3
        );
    });
}
