//! Quickstart: build a two-region deployment, run a cross-region bank
//! transfer through the GeoTP middleware (via the SQL front door) and print
//! where the latency went.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use geotp::prelude::*;
use geotp::USERTABLE;

fn main() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        // A PostgreSQL data source 10 ms away and a MySQL data source 100 ms
        // away, fronted by a GeoTP middleware co-located with the client.
        let cluster = ClusterBuilder::new()
            .data_source(10, Dialect::Postgres)
            .data_source(100, Dialect::MySql)
            .records_per_node(10_000)
            .protocol(Protocol::geotp())
            .build();
        cluster.load_uniform(10_000, 1_000);

        println!("== GeoTP quickstart ==");
        println!("DS0 (PostgreSQL): RTT 10 ms   DS1 (MySQL): RTT 100 ms\n");

        // Bob's account (id 42) lives on DS0, Alice's (id 10_042) on DS1.
        // The `/*+ last */` annotation lets GeoTP trigger the decentralized
        // prepare as soon as that statement finishes.
        let outcome = cluster
            .middleware()
            .run_sql(
                "BEGIN; \
                 UPDATE savings SET bal = bal - 100 WHERE id = 10042; \
                 UPDATE savings SET bal = bal + 100 WHERE id = 42 /*+ last */; \
                 COMMIT;",
            )
            .await
            .expect("the transfer script parses");

        println!("committed      : {}", outcome.committed);
        println!("distributed    : {}", outcome.distributed);
        println!(
            "total latency  : {:.1} ms",
            outcome.latency.as_secs_f64() * 1e3
        );
        let b = outcome.breakdown;
        println!("  analysis     : {:.2} ms", b.analysis.as_secs_f64() * 1e3);
        println!("  execution    : {:.2} ms", b.execution.as_secs_f64() * 1e3);
        println!(
            "  prepare wait : {:.2} ms  (decentralized prepare, no extra WAN trip)",
            b.prepare_wait.as_secs_f64() * 1e3
        );
        println!("  log flush    : {:.2} ms", b.log_flush.as_secs_f64() * 1e3);
        println!("  commit       : {:.2} ms", b.commit.as_secs_f64() * 1e3);

        let alice = cluster.sum_records([GlobalKey::new(USERTABLE, 10_042)]);
        let bob = cluster.sum_records([GlobalKey::new(USERTABLE, 42)]);
        println!("\nbalances after transfer: Alice={alice}  Bob={bob}");
        assert!(outcome.committed);
        assert_eq!(alice + bob, 2_000);
    });
}
