//! Failure recovery walk-through (paper §V-A): the middleware crashes after
//! flushing a COMMIT decision but before dispatching it; a data source
//! crashes with a prepared branch. A fresh middleware instance sharing the
//! durable commit log finishes both correctly.
//!
//! ```text
//! cargo run --example failure_recovery
//! ```

use std::rc::Rc;

use geotp::datasource::{DsOperation, PrepareVote, StatementRequest};
use geotp::middleware::Decision;
use geotp::prelude::*;
use geotp::storage::Xid;
use geotp::USERTABLE;

fn main() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        let cluster = ClusterBuilder::new()
            .data_source(10, Dialect::MySql)
            .data_source(100, Dialect::MySql)
            .records_per_node(1_000)
            .protocol(Protocol::geotp())
            .build();
        cluster.load_uniform(1_000, 500);
        let mw = cluster.middleware();
        println!("== Middleware failure recovery ==");

        // Drive both branches of a distributed transfer to the PREPARED state
        // by hand, simulating a middleware that crashed right after flushing
        // its commit decision.
        let gtrid = 777;
        for (i, ds) in cluster.data_sources().iter().enumerate() {
            let xid = Xid::new(gtrid, i as u32);
            let conn =
                geotp::DsConnection::new(mw.node(), Rc::clone(ds), Rc::clone(cluster.network()));
            let resp = conn
                .execute(StatementRequest {
                    xid,
                    begin: true,
                    ops: vec![DsOperation::AddInt {
                        key: GlobalKey::new(USERTABLE, i as u64 * 1_000 + 3).storage_key(),
                        col: 0,
                        delta: if i == 0 { -200 } else { 200 },
                    }],
                    is_last: false,
                    decentralized_prepare: false,
                    early_abort: false,
                    peers: vec![1 - i as u32],
                    trace_parent: None,
                })
                .await;
            assert!(resp.outcome.is_ok());
            assert_eq!(conn.prepare(xid).await, PrepareVote::Prepared);
            println!("  branch {xid} prepared on {}", ds.node());
        }
        mw.commit_log()
            .flush_decision(gtrid, Decision::Commit)
            .await;
        println!("  commit decision for gtrid {gtrid} flushed to the durable log");
        println!("  ... middleware crashes before dispatching the commit ...\n");

        // One data source also crashes and restarts: its prepared branch
        // survives (paper setting ❷).
        cluster.data_sources()[1].crash();
        let recovered = cluster.data_sources()[1].restart().await;
        println!(
            "  data source ds1 restarted; prepared branches recovered: {:?}",
            recovered
        );

        // A new middleware instance (same durable commit log) takes over.
        let successor = geotp::middleware::Middleware::connect(
            geotp::MiddlewareConfig::new(mw.node(), Protocol::geotp(), cluster.partitioner()),
            Rc::clone(cluster.network()),
            cluster.data_sources(),
            Some(Rc::clone(mw.commit_log())),
        );
        let (committed, aborted) = successor.recover().await;
        println!("\n  recovery finished: {committed} branch(es) committed, {aborted} aborted");

        let a = cluster.sum_records([GlobalKey::new(USERTABLE, 3)]);
        let b = cluster.sum_records([GlobalKey::new(USERTABLE, 1_003)]);
        println!(
            "  balances after recovery: {a} and {b} (sum preserved: {})",
            a + b
        );
        assert_eq!(committed, 2);
        assert_eq!(a, 300);
        assert_eq!(b, 700);
        println!("\nAtomicity held across the middleware crash and the data-source restart.");
    });
}
