//! Cross-crate integration tests for the paper's correctness claims (§V-B,
//! §V-C): atomicity of distributed commits and preservation of the data
//! sources' isolation under every protocol, including property-based tests
//! over randomly generated conflicting workloads.

use std::rc::Rc;
use std::time::Duration;

use geotp::prelude::*;
use geotp::storage::{CostModel, EngineConfig};
use geotp::USERTABLE;
use geotp_simrt::join_all;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RECORDS: u64 = 200;

fn build(protocol: Protocol, lock_timeout_ms: u64, seed: u64) -> geotp::Cluster {
    let cluster = ClusterBuilder::new()
        .seed(seed)
        .data_source(10, Dialect::Postgres)
        .data_source(60, Dialect::MySql)
        .data_source(120, Dialect::MySql)
        .records_per_node(RECORDS)
        .protocol(protocol)
        .engine_config(EngineConfig {
            lock_wait_timeout: Duration::from_millis(lock_timeout_ms),
            cost: CostModel::default(),
            record_history: false,
            ..EngineConfig::default()
        })
        .build();
    cluster.load_uniform(RECORDS, 1_000);
    cluster
}

fn gk(row: u64) -> GlobalKey {
    GlobalKey::new(USERTABLE, row)
}

/// Generate a random transfer between two distinct accounts (possibly on
/// different data sources), conserving the total balance.
fn random_transfer(rng: &mut StdRng, hot_keys: u64) -> TransactionSpec {
    let from = rng.gen_range(0..hot_keys) + RECORDS * rng.gen_range(0..3u64);
    let mut to = rng.gen_range(0..hot_keys) + RECORDS * rng.gen_range(0..3u64);
    if to == from {
        to = (to + 1) % (3 * RECORDS);
    }
    let amount = rng.gen_range(1..50i64);
    TransactionSpec::single_round(vec![
        ClientOp::add(gk(from), -amount),
        ClientOp::add(gk(to), amount),
    ])
}

fn total_balance(cluster: &geotp::Cluster) -> i64 {
    cluster.sum_records((0..3 * RECORDS).map(gk))
}

fn run_conflicting_transfers(
    protocol: Protocol,
    seed: u64,
    txns: usize,
    hot_keys: u64,
) -> (u64, u64, i64) {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        let cluster = build(protocol, 300, seed);
        let before = total_balance(&cluster);
        let mut handles = Vec::new();
        for t in 0..txns {
            let mw = Rc::clone(cluster.middleware());
            let mut rng = StdRng::seed_from_u64(seed * 1000 + t as u64);
            handles.push(geotp_simrt::spawn(async move {
                mw.run_transaction(&random_transfer(&mut rng, hot_keys))
                    .await
            }));
        }
        let outcomes = join_all(handles.into_iter().collect()).await;
        let committed = outcomes.iter().filter(|o| o.committed).count() as u64;
        let aborted = outcomes.len() as u64 - committed;
        let after = total_balance(&cluster);
        assert_eq!(
            before,
            after,
            "{}: total balance changed ({} -> {}) — atomicity violated",
            protocol.name(),
            before,
            after
        );
        (committed, aborted, after)
    })
}

#[test]
fn geotp_conserves_money_under_heavy_conflicts() {
    let (committed, aborted, _) = run_conflicting_transfers(Protocol::geotp(), 1, 60, 5);
    assert!(committed > 0, "some transactions must commit");
    // With only 5 hot keys and 60 concurrent transfers, conflicts are certain.
    assert!(committed + aborted == 60);
}

#[test]
fn ssp_and_quro_and_chiller_conserve_money_too() {
    for protocol in [Protocol::SspXa, Protocol::Quro, Protocol::Chiller] {
        let (committed, _, _) = run_conflicting_transfers(protocol, 2, 40, 5);
        assert!(committed > 0, "{} committed nothing", protocol.name());
    }
}

#[test]
fn geotp_o1_only_and_o1_o2_conserve_money() {
    for protocol in [Protocol::geotp_o1(), Protocol::geotp_o1_o2()] {
        run_conflicting_transfers(protocol, 3, 40, 4);
    }
}

#[test]
fn early_abort_does_not_leak_partial_writes() {
    // Force failures: a lock timeout so short that many distributed
    // transactions abort mid-flight; none of their writes may survive.
    let mut rt = geotp::runtime();
    rt.block_on(async {
        let cluster = build(Protocol::geotp(), 40, 9);
        let before = total_balance(&cluster);
        let mut handles = Vec::new();
        for t in 0..40u64 {
            let mw = Rc::clone(cluster.middleware());
            handles.push(geotp_simrt::spawn(async move {
                // Everyone fights over keys 0 and RECORDS (two data sources).
                let spec = TransactionSpec::single_round(vec![
                    ClientOp::add(gk(0), -1),
                    ClientOp::add(gk(RECORDS), 1),
                ]);
                let _ = t;
                mw.run_transaction(&spec).await
            }));
        }
        let outcomes = join_all(handles.into_iter().collect()).await;
        let committed = outcomes.iter().filter(|o| o.committed).count() as i64;
        assert_eq!(total_balance(&cluster), before);
        // The two hot records must reflect exactly the committed count.
        assert_eq!(cluster.sum_records([gk(0)]), 1_000 - committed);
        assert_eq!(cluster.sum_records([gk(RECORDS)]), 1_000 + committed);
    });
}

#[test]
fn serializability_committed_increments_equal_final_state() {
    // Every transaction increments a disjoint pair plus one shared counter;
    // under strict 2PL the shared counter must equal the number of commits.
    let mut rt = geotp::runtime();
    rt.block_on(async {
        let cluster = build(Protocol::geotp(), 500, 11);
        let mut handles = Vec::new();
        for t in 0..30u64 {
            let mw = Rc::clone(cluster.middleware());
            handles.push(geotp_simrt::spawn(async move {
                let spec = TransactionSpec::single_round(vec![
                    ClientOp::add(gk(7), 1),               // shared hot counter (DS0)
                    ClientOp::add(gk(RECORDS + 1 + t), 1), // private record (DS1)
                ]);
                mw.run_transaction(&spec).await
            }));
        }
        let outcomes = join_all(handles.into_iter().collect()).await;
        let committed = outcomes.iter().filter(|o| o.committed).count() as i64;
        assert_eq!(cluster.sum_records([gk(7)]), 1_000 + committed);
        for (t, outcome) in outcomes.iter().enumerate() {
            let expected = if outcome.committed { 1_001 } else { 1_000 };
            assert_eq!(cluster.sum_records([gk(RECORDS + 1 + t as u64)]), expected);
        }
    });
}

/// Property: for any random conflicting transfer workload and any protocol
/// with atomicity guarantees, the total balance is conserved (checked inside
/// `run_conflicting_transfers`) and outcomes are reported consistently.
///
/// Property-based in spirit: the build environment cannot fetch `proptest`,
/// so the cases are drawn from a seeded generator instead of shrunk inputs.
#[test]
fn balance_is_conserved_for_random_workloads() {
    let mut rng = StdRng::seed_from_u64(20_250_101);
    for case in 0..8 {
        let seed = rng.gen_range(0u64..1_000);
        let txns = rng.gen_range(5usize..25);
        let hot = rng.gen_range(2u64..20);
        let protocol =
            [Protocol::geotp(), Protocol::SspXa, Protocol::Chiller][rng.gen_range(0usize..3)];
        let (committed, aborted, _) = run_conflicting_transfers(protocol, seed, txns, hot);
        assert_eq!(
            committed + aborted,
            txns as u64,
            "case {case}: {} seed={seed} txns={txns} hot={hot}",
            protocol.name()
        );
    }
}
