//! End-to-end failure-recovery tests across the middleware and data-source
//! crates (paper §V-A): middleware failure with a flushed decision, middleware
//! failure without a decision, and data-source crash/restart.

use std::rc::Rc;

use geotp::datasource::{DsOperation, PrepareVote, StatementRequest};
use geotp::middleware::{Decision, Middleware};
use geotp::prelude::*;
use geotp::storage::Xid;
use geotp::USERTABLE;

const RECORDS: u64 = 100;

fn build() -> geotp::Cluster {
    let cluster = ClusterBuilder::new()
        .data_source(10, Dialect::MySql)
        .data_source(80, Dialect::Postgres)
        .records_per_node(RECORDS)
        .protocol(Protocol::geotp())
        .build();
    cluster.load_uniform(RECORDS, 1_000);
    cluster
}

fn gk(row: u64) -> GlobalKey {
    GlobalKey::new(USERTABLE, row)
}

/// Drive both branches of a manual distributed transaction to PREPARED.
async fn prepare_two_branches(cluster: &geotp::Cluster, gtrid: u64, delta: i64) {
    for (i, ds) in cluster.data_sources().iter().enumerate() {
        let xid = Xid::new(gtrid, i as u32);
        let conn = geotp::DsConnection::new(
            cluster.middleware().node(),
            Rc::clone(ds),
            Rc::clone(cluster.network()),
        );
        let resp = conn
            .execute(StatementRequest {
                xid,
                begin: true,
                ops: vec![DsOperation::AddInt {
                    key: gk(i as u64 * RECORDS).storage_key(),
                    col: 0,
                    delta: if i == 0 { -delta } else { delta },
                }],
                is_last: false,
                decentralized_prepare: false,
                early_abort: false,
                peers: vec![1 - i as u32],
                trace_parent: None,
            })
            .await;
        assert!(resp.outcome.is_ok());
        assert_eq!(conn.prepare(xid).await, PrepareVote::Prepared);
    }
}

fn successor(cluster: &geotp::Cluster) -> Rc<Middleware> {
    Middleware::connect(
        geotp::MiddlewareConfig::new(
            cluster.middleware().node(),
            Protocol::geotp(),
            cluster.partitioner(),
        ),
        Rc::clone(cluster.network()),
        cluster.data_sources(),
        Some(Rc::clone(cluster.middleware().commit_log())),
    )
}

#[test]
fn logged_commit_decision_is_completed_after_middleware_restart() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        let cluster = build();
        prepare_two_branches(&cluster, 500, 100).await;
        cluster
            .middleware()
            .commit_log()
            .flush_decision(500, Decision::Commit)
            .await;

        let (committed, aborted) = successor(&cluster).recover().await;
        assert_eq!((committed, aborted), (2, 0));
        assert_eq!(cluster.sum_records([gk(0)]), 900);
        assert_eq!(cluster.sum_records([gk(RECORDS)]), 1_100);
    });
}

#[test]
fn undecided_prepared_transaction_is_aborted_after_middleware_restart() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        let cluster = build();
        prepare_two_branches(&cluster, 600, 77).await;
        // No decision was flushed: the successor must abort both branches.
        let (committed, aborted) = successor(&cluster).recover().await;
        assert_eq!((committed, aborted), (0, 2));
        assert_eq!(cluster.sum_records([gk(0)]), 1_000);
        assert_eq!(cluster.sum_records([gk(RECORDS)]), 1_000);
    });
}

#[test]
fn logged_abort_decision_rolls_back_prepared_branches() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        let cluster = build();
        prepare_two_branches(&cluster, 601, 10).await;
        cluster
            .middleware()
            .commit_log()
            .flush_decision(601, Decision::Abort)
            .await;
        let (committed, aborted) = successor(&cluster).recover().await;
        assert_eq!((committed, aborted), (0, 2));
        assert_eq!(cluster.sum_records([gk(0)]), 1_000);
    });
}

#[test]
fn coordinator_disconnect_aborts_unprepared_work_only() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        let cluster = build();
        // One prepared branch and one branch still in execution on DS0.
        prepare_two_branches(&cluster, 700, 5).await;
        let active = Xid::new(701, 0);
        let ds0 = &cluster.data_sources()[0];
        let conn = geotp::DsConnection::new(
            cluster.middleware().node(),
            Rc::clone(ds0),
            Rc::clone(cluster.network()),
        );
        conn.execute(StatementRequest {
            xid: active,
            begin: true,
            ops: vec![DsOperation::AddInt {
                key: gk(9).storage_key(),
                col: 0,
                delta: 999,
            }],
            is_last: false,
            decentralized_prepare: false,
            early_abort: false,
            peers: vec![],
            trace_parent: None,
        })
        .await;

        // The data source notices the middleware disconnect (setting ❶).
        let aborted = ds0.coordinator_disconnected().await;
        assert_eq!(aborted, vec![active]);
        assert_eq!(
            cluster.sum_records([gk(9)]),
            1_000,
            "active branch rolled back"
        );
        assert_eq!(
            ds0.recover_prepared(),
            vec![Xid::new(700, 0)],
            "prepared branch kept"
        );
    });
}

#[test]
fn data_source_crash_preserves_prepared_branch_and_loses_active_one() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        let cluster = build();
        prepare_two_branches(&cluster, 800, 40).await;
        let ds1 = &cluster.data_sources()[1];

        // An active (unprepared) branch on DS1 is lost by the crash.
        let doomed = Xid::new(801, 1);
        ds1.engine().begin(doomed).unwrap();
        ds1.engine()
            .add_int(doomed, gk(RECORDS + 5).storage_key(), 0, 123)
            .await
            .unwrap();

        ds1.crash();
        assert!(ds1.is_crashed());
        let recovered = ds1.restart().await;
        assert_eq!(recovered, vec![Xid::new(800, 1)]);
        assert_eq!(
            cluster.sum_records([gk(RECORDS + 5)]),
            1_000,
            "unprepared write must not survive the crash"
        );

        // The in-doubt transaction can still be finished by recovery.
        cluster
            .middleware()
            .commit_log()
            .flush_decision(800, Decision::Commit)
            .await;
        let (committed, _) = successor(&cluster).recover().await;
        assert_eq!(committed, 2);
        assert_eq!(cluster.sum_records([gk(RECORDS)]), 1_040);
    });
}

#[test]
fn normal_transactions_resume_after_recovery() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        let cluster = build();
        prepare_two_branches(&cluster, 900, 10).await;
        cluster
            .middleware()
            .commit_log()
            .flush_decision(900, Decision::Commit)
            .await;
        let successor = successor(&cluster);
        successor.recover().await;

        // The successor serves new traffic normally.
        let spec = TransactionSpec::single_round(vec![
            ClientOp::add(gk(1), -1),
            ClientOp::add(gk(RECORDS + 1), 1),
        ]);
        let outcome = successor.run_transaction(&spec).await;
        assert!(outcome.committed);
        assert_eq!(cluster.sum_records([gk(1), gk(RECORDS + 1)]), 2_000);
    });
}
