//! Integration tests checking that the *latency structure* the paper derives
//! analytically (Figures 2 and 4) holds end to end through the public API:
//! how many WAN round trips each protocol pays and how the optimizations
//! shrink lock contention spans and improve throughput ordering.

use std::rc::Rc;
use std::time::Duration;

use geotp::prelude::*;
use geotp::storage::{CostModel, EngineConfig};
use geotp::USERTABLE;

const RECORDS: u64 = 1_000;

fn build(protocol: Protocol) -> geotp::Cluster {
    let cluster = ClusterBuilder::new()
        .data_source(10, Dialect::Postgres)
        .data_source(100, Dialect::MySql)
        .records_per_node(RECORDS)
        .protocol(protocol)
        .engine_config(EngineConfig {
            lock_wait_timeout: Duration::from_secs(5),
            cost: CostModel::zero(),
            record_history: false,
            ..EngineConfig::default()
        })
        .analysis_cost(Duration::ZERO)
        .log_flush_cost(Duration::ZERO)
        .agent_lan_rtt(Duration::ZERO)
        .build();
    cluster.load_uniform(RECORDS, 1_000);
    cluster
}

fn gk(row: u64) -> GlobalKey {
    GlobalKey::new(USERTABLE, row)
}

fn transfer() -> TransactionSpec {
    TransactionSpec::single_round(vec![
        ClientOp::add(gk(1), -10),
        ClientOp::add(gk(RECORDS + 1), 10),
    ])
}

async fn distributed_latency(protocol: Protocol) -> Duration {
    let cluster = build(protocol);
    let outcome = cluster.middleware().run_transaction(&transfer()).await;
    assert!(outcome.committed, "{}", protocol.name());
    outcome.latency
}

#[test]
fn wan_round_trip_counts_match_the_paper() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        // Classic XA (SSP): execution + prepare + commit = 3 round trips of
        // the slowest data source (100 ms each).
        assert_eq!(
            distributed_latency(Protocol::SspXa).await,
            Duration::from_millis(300)
        );
        // QURO reorders writes but keeps classic 2PC: still 3 round trips.
        assert_eq!(
            distributed_latency(Protocol::Quro).await,
            Duration::from_millis(300)
        );
        // GeoTP's decentralized prepare removes one: 2 round trips.
        assert_eq!(
            distributed_latency(Protocol::geotp()).await,
            Duration::from_millis(200)
        );
        assert_eq!(
            distributed_latency(Protocol::geotp_o1()).await,
            Duration::from_millis(200)
        );
        // SSP(local): no prepare phase either (but no atomicity guarantee).
        assert_eq!(
            distributed_latency(Protocol::SspLocal).await,
            Duration::from_millis(200)
        );
        // Chiller: remote execution+prepare, then local execution, then commit
        // = 100 + 10 + 100 = 210 ms.
        assert_eq!(
            distributed_latency(Protocol::Chiller).await,
            Duration::from_millis(210)
        );
    });
}

#[test]
fn centralized_transactions_cost_one_round_trip_everywhere() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        for protocol in [
            Protocol::SspXa,
            Protocol::SspLocal,
            Protocol::Quro,
            Protocol::Chiller,
            Protocol::geotp(),
        ] {
            let cluster = build(protocol);
            let spec = TransactionSpec::single_round(vec![ClientOp::add(gk(2), 1)]);
            let outcome = cluster.middleware().run_transaction(&spec).await;
            assert!(outcome.committed);
            assert!(!outcome.distributed);
            assert_eq!(
                outcome.latency,
                Duration::from_millis(20),
                "{}: execution + one-phase commit on the 10 ms data source",
                protocol.name()
            );
        }
    });
}

#[test]
fn latency_aware_scheduling_reduces_fast_node_lock_span() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        async fn fast_node_span(protocol: Protocol) -> Duration {
            let cluster = build(protocol);
            cluster.middleware().run_transaction(&transfer()).await;
            let stats = cluster.data_sources()[0].engine().stats();
            Duration::from_micros(stats.total_contention_span_micros)
        }
        let ssp = fast_node_span(Protocol::SspXa).await;
        let o1 = fast_node_span(Protocol::geotp_o1()).await;
        let full = fast_node_span(Protocol::geotp()).await;
        assert!(ssp >= Duration::from_millis(200));
        assert!(o1 >= Duration::from_millis(95) && o1 < ssp);
        assert!(
            full <= Duration::from_millis(20),
            "postponed branch span {full:?}"
        );
    });
}

#[test]
fn multi_round_transactions_schedule_each_round() {
    let mut rt = geotp::runtime();
    rt.block_on(async {
        let cluster = build(Protocol::geotp());
        // Two interactive rounds, each touching both data sources.
        let spec = TransactionSpec::multi_round(vec![
            vec![ClientOp::Read(gk(5)), ClientOp::Read(gk(RECORDS + 5))],
            vec![ClientOp::add(gk(5), 1), ClientOp::add(gk(RECORDS + 5), 1)],
        ]);
        let outcome = cluster.middleware().run_transaction(&spec).await;
        assert!(outcome.committed);
        // Two execution rounds (100 ms each) + commit (100 ms).
        assert_eq!(outcome.latency, Duration::from_millis(300));
        // The fast node's span stays bounded by roughly one round + commit
        // half-trip rather than the full transaction lifetime.
        let span = cluster.data_sources()[0]
            .engine()
            .stats()
            .total_contention_span_micros;
        assert!(span <= 220_000, "fast node span {span}us");
    });
}

#[test]
fn throughput_ordering_matches_fig5_under_contention() {
    // A compact closed-loop run: GeoTP > SSP(local) > SSP on the same
    // medium-contention workload (the ordering the paper reports in Fig. 5a).
    use geotp::workloads::driver::run_benchmark;
    use geotp::workloads::{DriverConfig, WorkloadMix, YcsbConfig, YcsbGenerator};

    fn throughput(protocol: Protocol) -> f64 {
        let mut rt = geotp::runtime();
        rt.block_on(async {
            let cluster = ClusterBuilder::new()
                .data_source(0, Dialect::MySql)
                .data_source(27, Dialect::MySql)
                .data_source(73, Dialect::MySql)
                .data_source(251, Dialect::MySql)
                .records_per_node(1_000)
                .protocol(protocol)
                .build();
            let ycsb = YcsbConfig::new(4, 1_000)
                .with_contention(Contention::Medium)
                .with_distributed_ratio(0.2);
            let generator = Rc::new(YcsbGenerator::new(ycsb));
            generator.load(cluster.data_sources());
            run_benchmark(
                Rc::clone(cluster.middleware()),
                WorkloadMix::Ycsb(generator),
                DriverConfig {
                    terminals: 16,
                    warmup: Duration::from_secs(1),
                    measure: Duration::from_secs(12),
                    seed: 5,
                },
            )
            .await
            .throughput()
        })
    }

    let geotp = throughput(Protocol::geotp());
    let ssp_local = throughput(Protocol::SspLocal);
    let ssp = throughput(Protocol::SspXa);
    assert!(geotp > ssp, "GeoTP {geotp:.1} must beat SSP {ssp:.1}");
    assert!(
        ssp_local >= ssp,
        "SSP(local) {ssp_local:.1} must be at least SSP {ssp:.1}"
    );
    assert!(
        geotp > ssp_local * 0.9,
        "GeoTP should be competitive with the no-atomicity mode"
    );
}
