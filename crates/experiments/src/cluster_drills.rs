//! The cluster failure-drill table: every multi-coordinator chaos preset,
//! seeded-swept, with the five invariant-checker verdicts (traced runs, so
//! the trace oracle's happens-before rules are checked too).
//!
//! The tier analogue of [`crate::failure_drills`]: a 2-coordinator cluster
//! with lease-based membership, epoch fencing and peer takeover, under the
//! coordinator-crash-with-takeover and coordinator-partition presets. Every
//! cell is deterministic and golden-gated (`tests/golden/cluster_drills_*`).

use geotp::chaos::traced;
use geotp::ClusterScenario;

use crate::report::Table;
use crate::scale::Scale;

/// Seeds per preset at each scale.
fn seeds(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 3,
        Scale::Full => 32,
    }
}

/// Run every cluster preset across the seed sweep.
pub fn cluster_drills(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        format!(
            "Cluster failure drills — 2 coordinators, {} seed(s) per preset, transfer workload, GeoTP (O1-O3)",
            seeds(scale)
        ),
        &[
            "scenario",
            "committed",
            "aborted",
            "indeterminate",
            "atomicity",
            "durability",
            "liveness",
            "serializability",
            "trace",
            "trace fingerprint (seed 1)",
        ],
    );
    for scenario in ClusterScenario::all() {
        let mut committed = 0u64;
        let mut aborted = 0u64;
        let mut indeterminate = 0u64;
        let mut atomicity = true;
        let mut durability = true;
        let mut liveness = true;
        let mut serializability = true;
        let mut trace_ok = true;
        let mut fingerprint = String::new();
        for seed in 1..=seeds(scale) {
            let (report, _telemetry) = traced(|| scenario.run(seed));
            committed += report.committed;
            aborted += report.aborted;
            indeterminate += report.indeterminate;
            atomicity &= report.invariants.atomicity_ok;
            durability &= report.invariants.durability_ok;
            liveness &= report.invariants.liveness_ok;
            serializability &= report.invariants.serializability_ok;
            trace_ok &= report.invariants.trace_ok;
            if seed == 1 {
                fingerprint = format!("{:016x}", report.fingerprint);
            }
        }
        let verdict = |ok: bool| if ok { "ok" } else { "VIOLATED" };
        table.push_row(vec![
            scenario.name().to_string(),
            committed.to_string(),
            aborted.to_string(),
            indeterminate.to_string(),
            verdict(atomicity).to_string(),
            verdict(durability).to_string(),
            verdict(liveness).to_string(),
            verdict(serializability).to_string(),
            verdict(trace_ok).to_string(),
            fingerprint,
        ]);
    }
    vec![table]
}

#[cfg(test)]
pub(crate) fn assert_tables_cover_every_preset_and_stay_green(tables: &[Table]) {
    assert_eq!(tables.len(), 1);
    let table = &tables[0];
    assert_eq!(table.len(), ClusterScenario::all().len());
    for scenario in ClusterScenario::all() {
        for column in [
            "atomicity",
            "durability",
            "liveness",
            "serializability",
            "trace",
        ] {
            assert_eq!(
                table.cell(scenario.name(), column),
                Some("ok"),
                "{} {column}",
                scenario.name()
            );
        }
    }
}
