//! Stored reference tables ("golden files") for deterministic experiments.
//!
//! Every experiment in this workspace runs on the deterministic simulated
//! runtime — same build, same config ⇒ byte-identical result tables. That
//! makes *result drift* (not just perf drift) mechanically checkable: the
//! rendered tables are committed under `tests/golden/` and
//! [`verify`] diffs a fresh run against them. CI fails on any mismatch
//! instead of waiting for a human to eyeball the nightly artifacts (the
//! ROADMAP's "stored reference tables" item).
//!
//! Workflow when a change *intentionally* shifts results (new scheduler
//! decision, protocol fix, workload change):
//!
//! ```text
//! GEOTP_BLESS=1 cargo test --release -p geotp-experiments golden   # quick scale
//! GEOTP_BLESS=1 GEOTP_FULL=1 cargo test --release -p geotp-experiments golden
//! git add tests/golden/ && git commit                              # review the diff!
//! ```
//!
//! The diff in review *is* the drift report: a reviewer sees exactly which
//! scenario/seed cells moved.

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::report::Table;

/// Where the golden files live: `<repo root>/tests/golden/`.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// Render a table set exactly as committed to the golden file.
pub fn render(tables: &[Table]) -> String {
    let mut out = String::new();
    for table in tables {
        let _ = write!(out, "{table}");
    }
    out
}

/// Compare `tables` against the committed golden file `<name>.txt`.
///
/// With `GEOTP_BLESS=1` the file is (re)written instead and the check
/// passes — that is the only sanctioned way to move a golden table, so the
/// change lands as a reviewable diff. Errors carry the first differing line
/// and the bless instructions.
pub fn verify(name: &str, tables: &[Table]) -> Result<(), String> {
    verify_raw(&format!("{name}.txt"), &render(tables))
}

/// Compare raw artifact bytes (a CSV, a rendered table set) against the
/// committed golden file `<filename>` (extension included). Same bless
/// protocol as [`verify`].
pub fn verify_raw(filename: &str, actual: &str) -> Result<(), String> {
    let path = golden_dir().join(filename);
    if std::env::var("GEOTP_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        std::fs::create_dir_all(golden_dir())
            .map_err(|e| format!("golden: create {}: {e}", golden_dir().display()))?;
        std::fs::write(&path, actual)
            .map_err(|e| format!("golden: write {}: {e}", path.display()))?;
        return Ok(());
    }
    let expected = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "golden: missing reference {path:?} ({e}); record it with \
             GEOTP_BLESS=1 and commit the file",
        )
    })?;
    diff(filename, &expected, actual)
}

/// Line-level comparison with a drift report naming the first divergence.
fn diff(name: &str, expected: &str, actual: &str) -> Result<(), String> {
    if expected == actual {
        return Ok(());
    }
    let mut report = format!("golden: `{name}` drifted from tests/golden/{name}\n");
    let expected_lines: Vec<&str> = expected.lines().collect();
    let actual_lines: Vec<&str> = actual.lines().collect();
    let mut shown = 0;
    for i in 0..expected_lines.len().max(actual_lines.len()) {
        let e = expected_lines.get(i).copied().unwrap_or("<missing>");
        let a = actual_lines.get(i).copied().unwrap_or("<missing>");
        if e != a {
            let _ = write!(
                report,
                "  line {}:\n    golden: {e}\n    actual: {a}\n",
                i + 1
            );
            shown += 1;
            if shown >= 5 {
                let _ = writeln!(report, "  ... (further differences elided)");
                break;
            }
        }
    }
    let _ = write!(
        report,
        "If this drift is intentional, re-record with GEOTP_BLESS=1 and commit the diff."
    );
    Err(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure_drills::failure_drills;
    use crate::scale::Scale;

    /// The CI drift gate: the failure-drill tables must match the committed
    /// golden file for the active scale. `GEOTP_FULL=1` checks the 32-seed
    /// sweep against its own reference (the nightly job does exactly that);
    /// the default checks the quick tables on every push.
    #[test]
    fn golden_failure_drills() {
        let scale = Scale::from_env();
        let name = match scale {
            Scale::Quick => "failure_drills_quick",
            Scale::Full => "failure_drills_full",
        };
        let tables = failure_drills(scale);
        // One sweep, two verdicts: structural coverage + all checkers green
        // (the drill module's assertions), then the byte-level drift gate.
        crate::failure_drills::assert_tables_cover_every_preset_and_stay_green(&tables);
        if let Err(drift) = verify(name, &tables) {
            panic!("{drift}");
        }
    }

    /// The tier analogue: the cluster failure-drill table is deterministic
    /// and golden-gated the same way (quick per push, full in the nightly).
    #[test]
    fn golden_cluster_drills() {
        let scale = Scale::from_env();
        let name = match scale {
            Scale::Quick => "cluster_drills_quick",
            Scale::Full => "cluster_drills_full",
        };
        let tables = crate::cluster_drills::cluster_drills(scale);
        crate::cluster_drills::assert_tables_cover_every_preset_and_stay_green(&tables);
        if let Err(drift) = verify(name, &tables) {
            panic!("{drift}");
        }
    }

    /// The scale-out table (open-loop throughput vs coordinator count) is
    /// deterministic too. One sweep, two verdicts: the monotonic acceptance
    /// shape, then the byte-level drift gate on the same tables.
    #[test]
    fn golden_scaleout() {
        let scale = Scale::from_env();
        let name = match scale {
            Scale::Quick => "scaleout_quick",
            Scale::Full => "scaleout_full",
        };
        let tables = crate::scaleout::scaleout(scale);
        crate::scaleout::assert_throughput_increases_monotonically(&tables);
        if let Err(drift) = verify(name, &tables) {
            panic!("{drift}");
        }
    }

    /// The overload table (graceful degradation vs collapse on a saturated
    /// coordinator) under the same two-verdict gate: the robustness shape
    /// (shedding bounds the served p99, no shedding collapses), then the
    /// byte-level drift gate.
    #[test]
    fn golden_overload() {
        let scale = Scale::from_env();
        let (name, suffix) = match scale {
            Scale::Quick => ("overload_quick", "quick"),
            Scale::Full => ("overload_full", "full"),
        };
        let (tables, timelines) = crate::overload::overload_with_timelines(scale);
        crate::overload::assert_shedding_bounds_the_tail(&tables);
        if let Err(drift) = verify(name, &tables) {
            panic!("{drift}");
        }
        // The metrics timeline of each policy's run is an artifact of its
        // own: the CSV pins how the registry evolved (arrival counters,
        // queue gauges, latency histograms) sample by sample, so a change
        // that keeps the end-of-run aggregates but warps the trajectory
        // still trips the gate.
        for (policy, csv) in &timelines {
            assert!(
                csv.lines().count() > 2,
                "overload {policy}: timeline CSV is degenerate ({csv:?})"
            );
            let file = format!("overload_timeline_{policy}_{suffix}.csv");
            if let Err(drift) = verify_raw(&file, csv) {
                panic!("{drift}");
            }
        }
    }

    /// The sweep-wide profiler: per-preset phase-dominance tables plus the
    /// critical-path CSV, both under the drift gate (quick per push, full in
    /// the nightly; CI uploads the CSV as a build artifact).
    #[test]
    fn golden_profile_drills() {
        let scale = Scale::from_env();
        let (name, suffix) = match scale {
            Scale::Quick => ("profile_drills_quick", "quick"),
            Scale::Full => ("profile_drills_full", "full"),
        };
        let (tables, csv) = crate::profile_drills::profile_drills_with_csv(scale);
        crate::profile_drills::assert_profiles_are_nondegenerate(&tables);
        if let Err(drift) = verify(name, &tables) {
            panic!("{drift}");
        }
        if let Err(drift) = verify_raw(&format!("profile_drills_{suffix}.csv"), &csv) {
            panic!("{drift}");
        }
    }

    /// Golden coverage beyond the drill tables (the ROADMAP open item):
    /// Fig. 6 is the cheapest deterministic figure experiment whose *quick*
    /// table is non-degenerate in every column (Fig. 1b's quick run commits
    /// no medium-contention centralized transactions, which would leave half
    /// the gate vacuous), so it is the first one under the drift gate.
    #[test]
    fn golden_fig06_breakdown() {
        let scale = Scale::from_env();
        let name = match scale {
            Scale::Quick => "fig06_breakdown_quick",
            Scale::Full => "fig06_breakdown_full",
        };
        let tables = crate::figs_motivation::fig06_breakdown(scale);
        if let Err(drift) = verify(name, &tables) {
            panic!("{drift}");
        }
    }

    /// Every remaining figure experiment under the drift gate (closing the
    /// ROADMAP CI item): quick on every push, full in the nightly. Only
    /// tables degenerate at quick scale are exempt from the quick gate —
    /// currently just Fig. 1, whose quick medium-contention centralized
    /// column commits nothing (it is gated at full scale below).
    macro_rules! golden_figure {
        ($test:ident, $name:literal, $runner:path) => {
            #[test]
            fn $test() {
                let scale = Scale::from_env();
                let name = match scale {
                    Scale::Quick => concat!($name, "_quick"),
                    Scale::Full => concat!($name, "_full"),
                };
                let tables = $runner(scale);
                if let Err(drift) = verify(name, &tables) {
                    panic!("{drift}");
                }
            }
        };
    }

    golden_figure!(
        golden_fig05_scalability,
        "fig05_scalability",
        crate::figs_overall::fig05_scalability
    );
    golden_figure!(
        golden_fig06_trace_breakdown,
        "fig06_trace_breakdown",
        crate::figs_motivation::fig06_trace_breakdown
    );
    golden_figure!(
        golden_fig07_dist_ratio_ycsb,
        "fig07_dist_ratio_ycsb",
        crate::figs_distributed::fig07_dist_ratio_ycsb
    );
    golden_figure!(
        golden_fig08_latency_cdf,
        "fig08_latency_cdf",
        crate::figs_distributed::fig08_latency_cdf
    );
    golden_figure!(
        golden_fig09_dist_ratio_tpcc,
        "fig09_dist_ratio_tpcc",
        crate::figs_distributed::fig09_dist_ratio_tpcc
    );
    golden_figure!(
        golden_fig10_latency_config,
        "fig10_latency_config",
        crate::figs_network::fig10_latency_config
    );
    golden_figure!(
        golden_fig11_random_dynamic,
        "fig11_random_dynamic",
        crate::figs_network::fig11_random_dynamic
    );
    golden_figure!(
        golden_fig12_ablation,
        "fig12_ablation",
        crate::figs_ablation::fig12_ablation
    );
    golden_figure!(
        golden_fig13_yugabyte,
        "fig13_yugabyte",
        crate::figs_overall::fig13_yugabyte
    );
    golden_figure!(
        golden_fig14_txn_length,
        "fig14_txn_length",
        crate::figs_ablation::fig14_txn_length
    );
    golden_figure!(
        golden_fig15_multi_dm,
        "fig15_multi_dm",
        crate::figs_overall::fig15_multi_dm
    );
    golden_figure!(
        golden_tab01_heterogeneous,
        "tab01_heterogeneous",
        crate::figs_overall::tab01_heterogeneous
    );

    /// Fig. 1 at full scale only: the quick table is degenerate (see above),
    /// so the per-push job skips it and the nightly holds the gate.
    #[test]
    fn golden_fig01_motivation_full_only() {
        if Scale::from_env() == Scale::Quick {
            return;
        }
        let tables = crate::figs_motivation::fig01_motivation(Scale::Full);
        if let Err(drift) = verify("fig01_motivation_full", &tables) {
            panic!("{drift}");
        }
    }

    /// A tiny committed fixture (`tests/golden/selftest.txt`) matching this
    /// table exactly — lets the perturbation test exercise the full verify
    /// path (file read + diff) without re-running the drill sweep.
    fn selftest_table() -> Table {
        let mut table = Table::new("Golden self-test", &["scenario", "committed"]);
        table.push_row(vec!["example".into(), "42".into()]);
        table
    }

    /// The gate is not vacuous: a deliberate single-cell perturbation — the
    /// kind of silent drift the nightly used to need a human to spot — must
    /// fail the diff and name the damaged line. Runs against a small
    /// committed fixture so it does not repeat the (already golden-checked)
    /// drill sweep.
    #[test]
    fn deliberate_perturbation_is_flagged() {
        let pristine = vec![selftest_table()];
        // Under GEOTP_BLESS=1 this call (re)records the fixture and the
        // perturbation half is meaningless (bless mode never diffs).
        verify("selftest", &pristine).expect("fixture matches its golden file");
        if std::env::var("GEOTP_BLESS")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            return;
        }

        let mut perturbed = vec![selftest_table()];
        perturbed[0].rows[0][1] = "43".into();
        let err = verify("selftest", &perturbed)
            .expect_err("perturbed tables must not match the golden file");
        assert!(err.contains("drifted"), "{err}");
        assert!(err.contains("line "), "{err}");
        assert!(err.contains("GEOTP_BLESS"), "{err}");
    }

    /// Render + diff mechanics, independent of the drill tables.
    #[test]
    fn diff_reports_first_divergence() {
        assert!(diff("x", "a\nb\n", "a\nb\n").is_ok());
        let err = diff("x", "a\nb\n", "a\nc\n").unwrap_err();
        assert!(err.contains("line 2"));
        assert!(err.contains("golden: b"));
        assert!(err.contains("actual: c"));
        // Length mismatches surface as <missing>.
        let err = diff("x", "a\n", "a\nb\n").unwrap_err();
        assert!(err.contains("<missing>"));
    }
}
