//! The failure-drill tables: every chaos scenario preset, seeded-swept under
//! both drill workloads, with the five invariant-checker verdicts (the runs
//! are traced, so the trace oracle's happens-before rules are checked too).
//!
//! This is the evaluation-side face of `geotp-chaos` (paper §V: correct
//! behaviour under middleware setting ❶ and data-source setting ❷ failures,
//! generalized to partitions, brownouts, message loss and clock skew). Each
//! preset runs across a seed sweep — 3 seeds at `Quick` scale, 32 at `Full`
//! — once driving balance transfers and once driving the TPC-C five-profile
//! mix, and the tables report client-visible outcomes plus the atomicity /
//! durability / liveness / serializability / trace verdicts. Any `VIOLATED`
//! cell is a protocol regression.
//!
//! Every cell is deterministic (bit-reproducible runs), so the rendered
//! tables are committed as golden references under `tests/golden/` and
//! diffed in CI ([`crate::golden`]): silent result drift fails the job.

use geotp::chaos::{traced, DrillWorkload, Scenario};

use crate::report::Table;
use crate::scale::Scale;

/// Seeds per preset at each scale.
fn seeds(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 3,
        Scale::Full => 32,
    }
}

fn drill_table(scale: Scale, workload: DrillWorkload) -> Table {
    let mut table = Table::new(
        format!(
            "Failure drills — chaos presets x {} seed(s), {} workload, GeoTP (O1-O3)",
            seeds(scale),
            workload.name()
        ),
        &[
            "scenario",
            "committed",
            "aborted",
            "indeterminate",
            "atomicity",
            "durability",
            "liveness",
            "serializability",
            "trace",
            "trace fingerprint (seed 1)",
        ],
    );
    for scenario in Scenario::all() {
        let mut committed = 0u64;
        let mut aborted = 0u64;
        let mut indeterminate = 0u64;
        let mut atomicity = true;
        let mut durability = true;
        let mut liveness = true;
        let mut serializability = true;
        let mut trace_ok = true;
        let mut fingerprint = String::new();
        for seed in 1..=seeds(scale) {
            // Traced, so the trace oracle (fifth checker) runs too; tracing
            // never perturbs the schedule, so the fingerprint column is the
            // same one an untraced run would report.
            let (report, _telemetry) = traced(|| scenario.run_with(seed, workload));
            committed += report.committed;
            aborted += report.aborted;
            indeterminate += report.indeterminate;
            atomicity &= report.invariants.atomicity_ok;
            durability &= report.invariants.durability_ok;
            liveness &= report.invariants.liveness_ok;
            serializability &= report.invariants.serializability_ok;
            trace_ok &= report.invariants.trace_ok;
            if seed == 1 {
                fingerprint = format!("{:016x}", report.fingerprint);
            }
        }
        let verdict = |ok: bool| if ok { "ok" } else { "VIOLATED" };
        table.push_row(vec![
            scenario.name().to_string(),
            committed.to_string(),
            aborted.to_string(),
            indeterminate.to_string(),
            verdict(atomicity).to_string(),
            verdict(durability).to_string(),
            verdict(liveness).to_string(),
            verdict(serializability).to_string(),
            verdict(trace_ok).to_string(),
            fingerprint,
        ]);
    }
    table
}

/// Run every chaos preset across the seed sweep, once per drill workload.
pub fn failure_drills(scale: Scale) -> Vec<Table> {
    DrillWorkload::all()
        .into_iter()
        .map(|workload| drill_table(scale, workload))
        .collect()
}

/// Coverage + green assertions shared with the golden gate (the quick-scale
/// sweep is expensive, so [`crate::golden`]'s test runs it once and applies
/// both this structural check and the golden diff to the same tables).
#[cfg(test)]
pub(crate) fn assert_tables_cover_every_preset_and_stay_green(tables: &[Table]) {
    assert_eq!(tables.len(), DrillWorkload::all().len());
    for (table, workload) in tables.iter().zip(DrillWorkload::all()) {
        assert!(table.title.contains(workload.name()));
        assert_eq!(table.len(), Scenario::all().len());
        for scenario in Scenario::all() {
            for column in [
                "atomicity",
                "durability",
                "liveness",
                "serializability",
                "trace",
            ] {
                assert_eq!(
                    table.cell(scenario.name(), column),
                    Some("ok"),
                    "{} {} {column}",
                    scenario.name(),
                    workload.name()
                );
            }
        }
    }
}
