//! The failure-drill table: every chaos scenario preset, seeded-swept, with
//! its invariant verdict.
//!
//! This is the evaluation-side face of `geotp-chaos` (paper §V: correct
//! behaviour under middleware setting ❶ and data-source setting ❷ failures,
//! generalized to partitions, brownouts, message loss and clock skew). Each
//! preset runs across a seed sweep — 3 seeds at `Quick` scale, 32 at `Full`
//! — and the table reports client-visible outcomes plus the atomicity /
//! durability / liveness checker verdicts. Any `VIOLATED` cell is a protocol
//! regression.

use geotp::chaos::Scenario;

use crate::report::Table;
use crate::scale::Scale;

/// Seeds per preset at each scale.
fn seeds(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 3,
        Scale::Full => 32,
    }
}

/// Run every chaos preset across the seed sweep.
pub fn failure_drills(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        format!(
            "Failure drills — chaos presets x {} seed(s), GeoTP (O1-O3)",
            seeds(scale)
        ),
        &[
            "scenario",
            "committed",
            "aborted",
            "indeterminate",
            "atomicity",
            "durability",
            "liveness",
            "trace fingerprint (seed 1)",
        ],
    );
    for scenario in Scenario::all() {
        let mut committed = 0u64;
        let mut aborted = 0u64;
        let mut indeterminate = 0u64;
        let mut atomicity = true;
        let mut durability = true;
        let mut liveness = true;
        let mut fingerprint = String::new();
        for seed in 1..=seeds(scale) {
            let report = scenario.run(seed);
            committed += report.committed;
            aborted += report.aborted;
            indeterminate += report.indeterminate;
            atomicity &= report.invariants.atomicity_ok;
            durability &= report.invariants.durability_ok;
            liveness &= report.invariants.liveness_ok;
            if seed == 1 {
                fingerprint = format!("{:016x}", report.fingerprint);
            }
        }
        let verdict = |ok: bool| if ok { "ok" } else { "VIOLATED" };
        table.push_row(vec![
            scenario.name().to_string(),
            committed.to_string(),
            aborted.to_string(),
            indeterminate.to_string(),
            verdict(atomicity).to_string(),
            verdict(durability).to_string(),
            verdict(liveness).to_string(),
            fingerprint,
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drill_table_covers_every_preset_and_stays_green() {
        let tables = failure_drills(Scale::Quick);
        assert_eq!(tables.len(), 1);
        let table = &tables[0];
        assert_eq!(table.len(), Scenario::all().len());
        for scenario in Scenario::all() {
            for column in ["atomicity", "durability", "liveness"] {
                assert_eq!(
                    table.cell(scenario.name(), column),
                    Some("ok"),
                    "{} {column}",
                    scenario.name()
                );
            }
        }
    }
}
