//! Scale-out: end-to-end throughput and tail latency vs coordinator count.
//!
//! Beyond the paper (which fixes one middleware): the same offered load is
//! driven *open-loop* against a 1-, 2- and 4-coordinator tier over the same
//! data sources. Each coordinator has a fixed worker capacity (the
//! connection/worker pool of one proxy instance), so a saturated tier caps
//! at `coordinators × capacity / latency` completed transactions per second
//! and the backlog shows up as a queueing tail in p99 — exactly how an
//! under-provisioned middleware tier behaves in production. The acceptance
//! shape: completed throughput increases monotonically from 1 to 4
//! coordinators, and the p99 collapses once the tier has headroom.
//!
//! This also closes the ROADMAP's "throughput bench gap" note: the closed
//! -loop driver can never show a tier's ceiling, the open-loop drive is the
//! tool that does.

use std::time::Duration;

use geotp::cluster::{
    build_tier, run_open_loop, ClusterConfig, CoordinatorCluster, OpenLoopConfig, TierLayout,
};
use geotp::{ClientOp, GlobalKey, Partitioner, Protocol, TableId};
use geotp_middleware::TransactionSpec;
use geotp_storage::{CostModel, EngineConfig, Row};
use rand::Rng;

use crate::report::{ms, tput, Table};
use crate::scale::Scale;

const ROWS_PER_NODE: u64 = 1_000;
const DS_RTTS_MS: [u64; 3] = [10, 60, 120];
/// Worker capacity of one coordinator (concurrent in-flight transactions).
const WORKERS_PER_COORDINATOR: usize = 32;

fn drive(coordinators: usize, scale: Scale) -> geotp::OpenLoopReport {
    let mut rt = crate::runner::sim_runtime(42, &DS_RTTS_MS);
    rt.block_on(async {
        let (net, sources) = build_tier(&TierLayout {
            seed: 42,
            coordinators,
            ds_rtts_ms: DS_RTTS_MS.to_vec(),
            control_rtt_ms: 2,
            engine: EngineConfig {
                lock_wait_timeout: Duration::from_secs(2),
                cost: CostModel::default(),
                record_history: false,
                ..EngineConfig::default()
            },
            agent_lan_rtt: Duration::from_micros(500),
        });
        let nodes = DS_RTTS_MS.len() as u32;
        for ds in &sources {
            for row in 0..ROWS_PER_NODE {
                let global = ds.index() as u64 * ROWS_PER_NODE + row;
                ds.load(
                    GlobalKey::new(TableId(0), global).storage_key(),
                    Row::int(1_000),
                );
            }
        }
        let mut config = ClusterConfig::new(
            coordinators,
            Protocol::geotp(),
            Partitioner::Range {
                rows_per_node: ROWS_PER_NODE,
                nodes,
            },
        );
        config.max_inflight = WORKERS_PER_COORDINATOR;
        let cluster = CoordinatorCluster::build(config, net, &sources);

        let total_rows = ROWS_PER_NODE * nodes as u64;
        run_open_loop(
            &cluster,
            move |rng| {
                // 50% distributed transfers (two rows anywhere in the keyspace).
                let src = rng.gen_range(0..total_rows);
                let dst = rng.gen_range(0..total_rows);
                TransactionSpec::single_round(vec![
                    ClientOp::add(GlobalKey::new(TableId(0), src), -1),
                    ClientOp::add(GlobalKey::new(TableId(0), dst), 1),
                ])
            },
            OpenLoopConfig {
                arrivals_per_sec: 600,
                sessions: 512,
                warmup: scale.warmup(),
                measure: scale.measure(),
                seed: 42,
            },
        )
        .await
    })
}

/// The scale-out table: offered vs completed throughput and latency, for
/// 1, 2 and 4 coordinators under the same open-loop offered load.
pub fn scaleout(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "Scale-out — open-loop throughput vs coordinator count (transfer mix, \
         600 arrivals/s, 32 workers/coordinator)",
        &[
            "coordinators",
            "offered (txn/s)",
            "committed (txn/s)",
            "mean latency (ms)",
            "p99 latency (ms)",
        ],
    );
    for coordinators in [1usize, 2, 4] {
        let report = drive(coordinators, scale);
        table.push_row(vec![
            coordinators.to_string(),
            tput(report.offered as f64 / scale.measure().as_secs_f64()),
            tput(report.throughput),
            ms(report.mean_latency),
            ms(report.p99_latency),
        ]);
    }
    vec![table]
}

/// The acceptance shape, asserted on already-materialized tables so the
/// (expensive) sweep runs once per test pass: completed throughput strictly
/// increases from 1 → 2 → 4 coordinators under the same offered load, and
/// the saturated single coordinator shows the worst tail. Called by the
/// golden gate (`crate::golden`) on the same tables it diffs.
#[cfg(test)]
pub(crate) fn assert_throughput_increases_monotonically(tables: &[Table]) {
    let table = &tables[0];
    assert_eq!(table.len(), 3);
    let tputs: Vec<f64> = table
        .rows
        .iter()
        .map(|r| r[2].parse::<f64>().unwrap())
        .collect();
    assert!(
        tputs[0] < tputs[1] && tputs[1] < tputs[2],
        "throughput must grow monotonically with coordinators: {tputs:?}"
    );
    let p99s: Vec<f64> = table
        .rows
        .iter()
        .map(|r| r[4].parse::<f64>().unwrap())
        .collect();
    assert!(
        p99s[0] > p99s[2],
        "the saturated tier must show the queueing tail: {p99s:?}"
    );
}
