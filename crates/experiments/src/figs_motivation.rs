//! Fig. 1b (motivating example) and Fig. 6 (resource utilisation & latency
//! breakdown).

use std::time::Duration;

use geotp::{ClientOp, ClusterBuilder, GlobalKey, Protocol, TransactionSpec};
use geotp_storage::{CostModel, EngineConfig};
use geotp_workloads::ycsb::USERTABLE;
use geotp_workloads::{Contention, YcsbConfig};

use crate::report::{ms, tput, Table};
use crate::runner::{run_ycsb, LatencyConfig, SystemUnderTest, YcsbRunSpec};
use crate::scale::Scale;

/// Fig. 1b: average latency of *centralized* transactions (which only touch
/// DS1, 10 ms away) as the latency to DS2 grows, under low and medium
/// contention, on a classic XA middleware (SSP). Reproduces the observation
/// that motivates the paper: remote latency leaks into local transactions
/// through lock contention.
pub fn fig01_motivation(scale: Scale) -> Vec<Table> {
    let ds2_rtts: Vec<u64> = match scale {
        Scale::Quick => vec![20, 60, 100],
        Scale::Full => vec![20, 40, 60, 80, 100],
    };
    let mut table = Table::new(
        "Fig. 1b — avg latency of centralized transactions vs DM–DS2 RTT (SSP)",
        &[
            "ds2_rtt_ms",
            "LC centralized avg (ms)",
            "MC centralized avg (ms)",
        ],
    );
    for rtt in &ds2_rtts {
        let mut cells = vec![rtt.to_string()];
        for contention in [Contention::Low, Contention::Medium] {
            let mut ycsb = YcsbConfig::new(2, scale.records_per_node())
                .with_contention(contention)
                .with_distributed_ratio(0.2);
            // All centralized transactions hit DS1 (node 0), as in the paper's
            // motivating setup.
            ycsb.home_node = Some(0);
            let mut spec = YcsbRunSpec::new(
                SystemUnderTest::Middleware(Protocol::SspXa),
                ycsb,
                scale.terminals(),
                scale.measure(),
            );
            spec.latency = LatencyConfig::Static(vec![10, *rtt]);
            spec.warmup = scale.warmup();
            let result = run_ycsb(&spec);
            cells.push(ms(result.mean_centralized_latency));
        }
        table.push_row(cells);
    }
    vec![table]
}

/// Fig. 6: (a/b) resource utilisation proxies under the virtual clock —
/// simulation polls, WAN messages and hotspot-footprint size — for SSP vs
/// GeoTP on the default YCSB workload, and (c) the per-phase latency
/// breakdown of one distributed GeoTP transaction.
pub fn fig06_breakdown(scale: Scale) -> Vec<Table> {
    // (a)/(b): resource proxies over the default workload.
    let mut resources = Table::new(
        "Fig. 6a/6b — resource proxies over YCSB (virtual-clock substitutes for CPU%/memory)",
        &[
            "system",
            "throughput (txn/s)",
            "sim polls",
            "WAN messages",
            "hotspot entries",
        ],
    );
    for system in [
        SystemUnderTest::Middleware(Protocol::SspXa),
        SystemUnderTest::Middleware(Protocol::geotp()),
    ] {
        let ycsb = YcsbConfig::new(4, scale.records_per_node())
            .with_contention(Contention::Medium)
            .with_distributed_ratio(0.2);
        let mut spec = YcsbRunSpec::new(system, ycsb, scale.terminals(), scale.measure());
        spec.warmup = scale.warmup();
        let result = run_ycsb(&spec);
        resources.push_row(vec![
            result.label.clone(),
            tput(result.throughput),
            result.sim_polls.to_string(),
            result.net_messages.to_string(),
            result.hotspot_entries.to_string(),
        ]);
    }

    // (c): single-transaction latency breakdown, paper-default deployment.
    let mut breakdown = Table::new(
        "Fig. 6c — latency breakdown of one distributed GeoTP transaction (paper deployment)",
        &["phase", "latency (ms)"],
    );
    let mut rt = crate::runner::sim_runtime(42, &geotp_net::PAPER_DEFAULT_RTTS_MS);
    rt.block_on(async {
        let cluster = ClusterBuilder::new()
            .paper_default_sources()
            .records_per_node(1_000)
            .protocol(Protocol::geotp())
            .engine_config(EngineConfig {
                lock_wait_timeout: Duration::from_secs(5),
                cost: CostModel::default(),
                record_history: false,
                ..EngineConfig::default()
            })
            .build();
        cluster.load_uniform(1_000, 10_000);
        // A transfer between the Beijing node (0) and the Singapore node (2).
        let spec = TransactionSpec::single_round(vec![
            ClientOp::add(GlobalKey::new(USERTABLE, 1), -100),
            ClientOp::add(GlobalKey::new(USERTABLE, 2_001), 100),
        ]);
        let outcome = cluster.middleware().run_transaction(&spec).await;
        assert!(outcome.committed, "breakdown transaction must commit");
        let b = outcome.breakdown;
        breakdown.push_row(vec!["analysis".into(), ms(b.analysis)]);
        breakdown.push_row(vec!["execution (incl. network)".into(), ms(b.execution)]);
        breakdown.push_row(vec!["prepare wait".into(), ms(b.prepare_wait)]);
        breakdown.push_row(vec!["commit log flush".into(), ms(b.log_flush)]);
        breakdown.push_row(vec!["commit dispatch".into(), ms(b.commit)]);
        breakdown.push_row(vec!["total".into(), ms(outcome.latency)]);
    });
    vec![resources, breakdown]
}

/// Fig. 6c re-derived from the distributed trace: run the same
/// single-transaction paper deployment with `geotp-telemetry` installed,
/// rebuild each phase window from the recorded span tree, and cross-check it
/// against the hand-instrumented [`geotp::middleware::LatencyBreakdown`].
/// The two instrumentations are independent — the breakdown is accumulated
/// by stopwatch code inside the coordinator, the spans by the tracer — so
/// agreement here validates both. A third table shows what only the trace
/// can produce: the critical-path attribution of the transaction's latency
/// to its blocking chain, including the data-source side (agent execution,
/// lock waits, decentralized prepare) that the middleware stopwatch cannot
/// see.
pub fn fig06_trace_breakdown(_scale: Scale) -> Vec<Table> {
    use geotp::telemetry::{self, SpanKind};

    let mut cross = Table::new(
        "Fig. 6c (trace-derived) — phase windows from the span tree vs the \
         hand-instrumented breakdown",
        &["phase", "trace (ms)", "instrumented (ms)"],
    );
    let mut path_table = Table::new(
        "Fig. 6c (trace-derived) — critical-path attribution of the same transaction",
        &["span kind", "blocking time (ms)"],
    );
    let mut rt = crate::runner::sim_runtime(42, &geotp_net::PAPER_DEFAULT_RTTS_MS);
    rt.block_on(async {
        let session = telemetry::install();
        let cluster = ClusterBuilder::new()
            .paper_default_sources()
            .records_per_node(1_000)
            .protocol(Protocol::geotp())
            .engine_config(EngineConfig {
                lock_wait_timeout: Duration::from_secs(5),
                cost: CostModel::default(),
                record_history: false,
                ..EngineConfig::default()
            })
            .build();
        cluster.load_uniform(1_000, 10_000);
        let spec = TransactionSpec::single_round(vec![
            ClientOp::add(GlobalKey::new(USERTABLE, 1), -100),
            ClientOp::add(GlobalKey::new(USERTABLE, 2_001), 100),
        ]);
        let outcome = cluster.middleware().run_transaction(&spec).await;
        telemetry::uninstall();
        assert!(outcome.committed, "breakdown transaction must commit");
        let spans = session.tracer.spans();
        let gtrid = outcome.gtrid;
        let phase = |kind: SpanKind| -> u64 {
            spans
                .iter()
                .filter(|s| s.id.gtrid == gtrid && s.kind == kind)
                .map(|s| s.duration_micros())
                .sum()
        };
        let b = outcome.breakdown;
        let pairs: [(&str, u64, Duration); 6] = [
            ("analysis", phase(SpanKind::Analysis), b.analysis),
            (
                "execution (incl. network)",
                phase(SpanKind::Round),
                b.execution,
            ),
            ("prepare wait", phase(SpanKind::VoteWait), b.prepare_wait),
            ("commit log flush", phase(SpanKind::LogFlush), b.log_flush),
            ("commit dispatch", phase(SpanKind::CommitDispatch), b.commit),
            ("total", phase(SpanKind::Txn), outcome.latency),
        ];
        for (name, traced_micros, instrumented) in pairs {
            let drift = traced_micros.abs_diff(instrumented.as_micros() as u64);
            assert!(
                drift <= 100,
                "{name}: trace says {traced_micros}us, stopwatch says {}us",
                instrumented.as_micros()
            );
            cross.push_row(vec![
                name.into(),
                ms(Duration::from_micros(traced_micros)),
                ms(instrumented),
            ]);
        }
        let path =
            telemetry::critical_path(&spans, gtrid).expect("the committed transaction has a trace");
        assert_eq!(
            path.total_micros,
            outcome.latency.as_micros() as u64,
            "critical path must account for the whole client-observed latency"
        );
        for (kind, micros) in path.rows() {
            path_table.push_row(vec![kind.label().into(), ms(Duration::from_micros(micros))]);
        }
    });
    vec![cross, path_table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp::Dialect;

    #[test]
    fn fig06_trace_breakdown_cross_checks_against_the_stopwatch() {
        // The experiment function itself asserts trace-vs-stopwatch
        // agreement (≤100us per phase) and full critical-path coverage;
        // here we additionally pin the table shape.
        let tables = fig06_trace_breakdown(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 6);
        assert!(
            tables[1].len() >= 3,
            "critical path should cross several span kinds"
        );
    }

    #[test]
    fn fig06_breakdown_produces_the_expected_phases() {
        let table = fig06_breakdown_single_txn_only();
        assert_eq!(table.headers, vec!["phase", "latency (ms)"]);
        assert_eq!(table.len(), 6);
        // The transfer involves the Beijing (0 ms) and Singapore (73 ms)
        // nodes: the commit dispatch is roughly one 73 ms WAN round trip, and
        // the prepare wait is small because the prepare is decentralized.
        let commit: f64 = table
            .cell("commit dispatch", "latency (ms)")
            .unwrap()
            .parse()
            .unwrap();
        assert!((73.0..95.0).contains(&commit), "commit {commit}");
        let prepare: f64 = table
            .cell("prepare wait", "latency (ms)")
            .unwrap()
            .parse()
            .unwrap();
        assert!(prepare < 10.0, "prepare wait {prepare}");
    }

    /// Cheap helper used by the unit test: only the single-transaction
    /// breakdown part of Fig. 6.
    fn fig06_breakdown_single_txn_only() -> Table {
        let mut rt = crate::runner::sim_runtime(42, &geotp_net::PAPER_DEFAULT_RTTS_MS);
        let mut breakdown = Table::new("test", &["phase", "latency (ms)"]);
        rt.block_on(async {
            let cluster = ClusterBuilder::new()
                .paper_default_sources()
                .records_per_node(100)
                .protocol(Protocol::geotp())
                .build();
            cluster.load_uniform(100, 0);
            let spec = TransactionSpec::single_round(vec![
                ClientOp::add(GlobalKey::new(USERTABLE, 1), -1),
                ClientOp::add(GlobalKey::new(USERTABLE, 201), 1),
            ]);
            let outcome = cluster.middleware().run_transaction(&spec).await;
            assert!(outcome.committed);
            let b = outcome.breakdown;
            breakdown.push_row(vec!["analysis".into(), ms(b.analysis)]);
            breakdown.push_row(vec!["execution (incl. network)".into(), ms(b.execution)]);
            breakdown.push_row(vec!["prepare wait".into(), ms(b.prepare_wait)]);
            breakdown.push_row(vec!["commit log flush".into(), ms(b.log_flush)]);
            breakdown.push_row(vec!["commit dispatch".into(), ms(b.commit)]);
            breakdown.push_row(vec!["total".into(), ms(outcome.latency)]);
        });
        breakdown
    }

    #[test]
    fn latency_config_dialect_defaults_hold() {
        // Quick sanity on the helper types used by this module.
        let cfg = LatencyConfig::Static(vec![10, 100]);
        assert!(matches!(cfg, LatencyConfig::Static(_)));
        assert_eq!(Dialect::MySql.name(), "MySQL");
    }
}
