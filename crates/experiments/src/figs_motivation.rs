//! Fig. 1b (motivating example) and Fig. 6 (resource utilisation & latency
//! breakdown).

use std::time::Duration;

use geotp::{ClientOp, ClusterBuilder, GlobalKey, Protocol, TransactionSpec};
use geotp_simrt::Runtime;
use geotp_storage::{CostModel, EngineConfig};
use geotp_workloads::ycsb::USERTABLE;
use geotp_workloads::{Contention, YcsbConfig};

use crate::report::{ms, tput, Table};
use crate::runner::{run_ycsb, LatencyConfig, SystemUnderTest, YcsbRunSpec};
use crate::scale::Scale;

/// Fig. 1b: average latency of *centralized* transactions (which only touch
/// DS1, 10 ms away) as the latency to DS2 grows, under low and medium
/// contention, on a classic XA middleware (SSP). Reproduces the observation
/// that motivates the paper: remote latency leaks into local transactions
/// through lock contention.
pub fn fig01_motivation(scale: Scale) -> Vec<Table> {
    let ds2_rtts: Vec<u64> = match scale {
        Scale::Quick => vec![20, 60, 100],
        Scale::Full => vec![20, 40, 60, 80, 100],
    };
    let mut table = Table::new(
        "Fig. 1b — avg latency of centralized transactions vs DM–DS2 RTT (SSP)",
        &[
            "ds2_rtt_ms",
            "LC centralized avg (ms)",
            "MC centralized avg (ms)",
        ],
    );
    for rtt in &ds2_rtts {
        let mut cells = vec![rtt.to_string()];
        for contention in [Contention::Low, Contention::Medium] {
            let mut ycsb = YcsbConfig::new(2, scale.records_per_node())
                .with_contention(contention)
                .with_distributed_ratio(0.2);
            // All centralized transactions hit DS1 (node 0), as in the paper's
            // motivating setup.
            ycsb.home_node = Some(0);
            let mut spec = YcsbRunSpec::new(
                SystemUnderTest::Middleware(Protocol::SspXa),
                ycsb,
                scale.terminals(),
                scale.measure(),
            );
            spec.latency = LatencyConfig::Static(vec![10, *rtt]);
            spec.warmup = scale.warmup();
            let result = run_ycsb(&spec);
            cells.push(ms(result.mean_centralized_latency));
        }
        table.push_row(cells);
    }
    vec![table]
}

/// Fig. 6: (a/b) resource utilisation proxies under the virtual clock —
/// simulation polls, WAN messages and hotspot-footprint size — for SSP vs
/// GeoTP on the default YCSB workload, and (c) the per-phase latency
/// breakdown of one distributed GeoTP transaction.
pub fn fig06_breakdown(scale: Scale) -> Vec<Table> {
    // (a)/(b): resource proxies over the default workload.
    let mut resources = Table::new(
        "Fig. 6a/6b — resource proxies over YCSB (virtual-clock substitutes for CPU%/memory)",
        &[
            "system",
            "throughput (txn/s)",
            "sim polls",
            "WAN messages",
            "hotspot entries",
        ],
    );
    for system in [
        SystemUnderTest::Middleware(Protocol::SspXa),
        SystemUnderTest::Middleware(Protocol::geotp()),
    ] {
        let ycsb = YcsbConfig::new(4, scale.records_per_node())
            .with_contention(Contention::Medium)
            .with_distributed_ratio(0.2);
        let mut spec = YcsbRunSpec::new(system, ycsb, scale.terminals(), scale.measure());
        spec.warmup = scale.warmup();
        let result = run_ycsb(&spec);
        resources.push_row(vec![
            result.label.clone(),
            tput(result.throughput),
            result.sim_polls.to_string(),
            result.net_messages.to_string(),
            result.hotspot_entries.to_string(),
        ]);
    }

    // (c): single-transaction latency breakdown, paper-default deployment.
    let mut breakdown = Table::new(
        "Fig. 6c — latency breakdown of one distributed GeoTP transaction (paper deployment)",
        &["phase", "latency (ms)"],
    );
    let mut rt = Runtime::new();
    rt.block_on(async {
        let cluster = ClusterBuilder::new()
            .paper_default_sources()
            .records_per_node(1_000)
            .protocol(Protocol::geotp())
            .engine_config(EngineConfig {
                lock_wait_timeout: Duration::from_secs(5),
                cost: CostModel::default(),
                record_history: false,
            })
            .build();
        cluster.load_uniform(1_000, 10_000);
        // A transfer between the Beijing node (0) and the Singapore node (2).
        let spec = TransactionSpec::single_round(vec![
            ClientOp::add(GlobalKey::new(USERTABLE, 1), -100),
            ClientOp::add(GlobalKey::new(USERTABLE, 2_001), 100),
        ]);
        let outcome = cluster.middleware().run_transaction(&spec).await;
        assert!(outcome.committed, "breakdown transaction must commit");
        let b = outcome.breakdown;
        breakdown.push_row(vec!["analysis".into(), ms(b.analysis)]);
        breakdown.push_row(vec!["execution (incl. network)".into(), ms(b.execution)]);
        breakdown.push_row(vec!["prepare wait".into(), ms(b.prepare_wait)]);
        breakdown.push_row(vec!["commit log flush".into(), ms(b.log_flush)]);
        breakdown.push_row(vec!["commit dispatch".into(), ms(b.commit)]);
        breakdown.push_row(vec!["total".into(), ms(outcome.latency)]);
    });
    vec![resources, breakdown]
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp::Dialect;

    #[test]
    fn fig06_breakdown_produces_the_expected_phases() {
        let table = fig06_breakdown_single_txn_only();
        assert_eq!(table.headers, vec!["phase", "latency (ms)"]);
        assert_eq!(table.len(), 6);
        // The transfer involves the Beijing (0 ms) and Singapore (73 ms)
        // nodes: the commit dispatch is roughly one 73 ms WAN round trip, and
        // the prepare wait is small because the prepare is decentralized.
        let commit: f64 = table
            .cell("commit dispatch", "latency (ms)")
            .unwrap()
            .parse()
            .unwrap();
        assert!((73.0..95.0).contains(&commit), "commit {commit}");
        let prepare: f64 = table
            .cell("prepare wait", "latency (ms)")
            .unwrap()
            .parse()
            .unwrap();
        assert!(prepare < 10.0, "prepare wait {prepare}");
    }

    /// Cheap helper used by the unit test: only the single-transaction
    /// breakdown part of Fig. 6.
    fn fig06_breakdown_single_txn_only() -> Table {
        let mut rt = Runtime::new();
        let mut breakdown = Table::new("test", &["phase", "latency (ms)"]);
        rt.block_on(async {
            let cluster = ClusterBuilder::new()
                .paper_default_sources()
                .records_per_node(100)
                .protocol(Protocol::geotp())
                .build();
            cluster.load_uniform(100, 0);
            let spec = TransactionSpec::single_round(vec![
                ClientOp::add(GlobalKey::new(USERTABLE, 1), -1),
                ClientOp::add(GlobalKey::new(USERTABLE, 201), 1),
            ]);
            let outcome = cluster.middleware().run_transaction(&spec).await;
            assert!(outcome.committed);
            let b = outcome.breakdown;
            breakdown.push_row(vec!["analysis".into(), ms(b.analysis)]);
            breakdown.push_row(vec!["execution (incl. network)".into(), ms(b.execution)]);
            breakdown.push_row(vec!["prepare wait".into(), ms(b.prepare_wait)]);
            breakdown.push_row(vec!["commit log flush".into(), ms(b.log_flush)]);
            breakdown.push_row(vec!["commit dispatch".into(), ms(b.commit)]);
            breakdown.push_row(vec!["total".into(), ms(outcome.latency)]);
        });
        breakdown
    }

    #[test]
    fn latency_config_dialect_defaults_hold() {
        // Quick sanity on the helper types used by this module.
        let cfg = LatencyConfig::Static(vec![10, 100]);
        assert!(matches!(cfg, LatencyConfig::Static(_)));
        assert_eq!(Dialect::MySql.name(), "MySQL");
    }
}
