//! Shared experiment runner: builds a fresh cluster for a system under test,
//! drives it with YCSB or TPC-C through the closed-loop terminal driver and
//! returns the measurements every figure needs.

use std::rc::Rc;
use std::time::Duration;

use geotp::{Cluster, ClusterBuilder, Dialect, Protocol};
use geotp_distdb::{DistDb, DistDbConfig, DistDbService};
use geotp_middleware::GlobalKey;
use geotp_net::{DynamicLatency, JitteredLatency, NodeId, RandomLatency};
use geotp_scalardb::{ScalarDbCluster, ScalarDbConfig, ScalarDbService};
use geotp_simrt::Runtime;
use geotp_storage::{CostModel, EngineConfig, Row};
use geotp_workloads::driver::run_benchmark;
use geotp_workloads::ycsb::USERTABLE;
use geotp_workloads::{
    BenchmarkReport, DriverConfig, TpccConfig, TpccGenerator, WorkloadMix, YcsbConfig,
    YcsbGenerator,
};

/// Which system a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemUnderTest {
    /// The middleware coordinator with the given protocol (GeoTP, SSP, ...).
    Middleware(Protocol),
    /// The ScalarDB-style baseline (DM-side concurrency control).
    ScalarDb,
    /// ScalarDB+ (ScalarDB architecture + GeoTP's scheduler).
    ScalarDbPlus,
    /// The YugabyteDB-like distributed database baseline.
    DistDb,
}

impl SystemUnderTest {
    /// Display name used in tables.
    pub fn name(&self) -> String {
        match self {
            SystemUnderTest::Middleware(p) => p.name().to_string(),
            SystemUnderTest::ScalarDb => "ScalarDB".to_string(),
            SystemUnderTest::ScalarDbPlus => "ScalarDB+".to_string(),
            SystemUnderTest::DistDb => "YugabyteDB".to_string(),
        }
    }

    /// The standard comparison set of Fig. 5 (DM systems only).
    pub fn overall_set() -> Vec<SystemUnderTest> {
        vec![
            SystemUnderTest::Middleware(Protocol::SspXa),
            SystemUnderTest::Middleware(Protocol::SspLocal),
            SystemUnderTest::ScalarDb,
            SystemUnderTest::ScalarDbPlus,
            SystemUnderTest::Middleware(Protocol::geotp()),
        ]
    }

    /// The scheduling-technique comparison set of Fig. 7/9.
    pub fn scheduling_set() -> Vec<SystemUnderTest> {
        vec![
            SystemUnderTest::Middleware(Protocol::SspXa),
            SystemUnderTest::Middleware(Protocol::Quro),
            SystemUnderTest::Middleware(Protocol::Chiller),
            SystemUnderTest::Middleware(Protocol::geotp()),
        ]
    }
}

/// How the WAN links between the middleware and each data source behave.
#[derive(Debug, Clone)]
pub enum LatencyConfig {
    /// Fixed RTT per data source (milliseconds).
    Static(Vec<u64>),
    /// Gaussian jitter: `(mean_ms, std_ms)` per data source.
    Jittered(Vec<(u64, u64)>),
    /// RTT drawn uniformly in `[base, base*max_factor]` per message.
    Random {
        /// Base RTT per data source.
        base_ms: Vec<u64>,
        /// Upper multiplication factor (the paper uses 1.5).
        max_factor: f64,
    },
    /// Piecewise-constant schedule: `per_node[i][w]` is node `i`'s RTT during
    /// window `w` of length `window`.
    Dynamic {
        /// Window length.
        window: Duration,
        /// Per-node schedules (milliseconds).
        per_node: Vec<Vec<u64>>,
    },
}

impl LatencyConfig {
    /// The paper's default deployment: 0 / 27 / 73 / 251 ms.
    pub fn paper_default() -> Self {
        LatencyConfig::Static(geotp_net::PAPER_DEFAULT_RTTS_MS.to_vec())
    }

    fn node_count(&self) -> usize {
        match self {
            LatencyConfig::Static(v) => v.len(),
            LatencyConfig::Jittered(v) => v.len(),
            LatencyConfig::Random { base_ms, .. } => base_ms.len(),
            LatencyConfig::Dynamic { per_node, .. } => per_node.len(),
        }
    }

    fn base_rtts(&self) -> Vec<u64> {
        match self {
            LatencyConfig::Static(v) => v.clone(),
            LatencyConfig::Jittered(v) => v.iter().map(|(m, _)| *m).collect(),
            LatencyConfig::Random { base_ms, .. } => base_ms.clone(),
            LatencyConfig::Dynamic { per_node, .. } => per_node
                .iter()
                .map(|s| s.first().copied().unwrap_or(0))
                .collect(),
        }
    }

    /// Install the non-static models on an already-built cluster network.
    fn apply(&self, cluster: &Cluster, dm: NodeId) {
        match self {
            LatencyConfig::Static(_) => {}
            LatencyConfig::Jittered(params) => {
                for (i, (mean, std)) in params.iter().enumerate() {
                    cluster.network().set_link(
                        dm,
                        NodeId::data_source(i as u32),
                        JitteredLatency::new(
                            Duration::from_millis(*mean),
                            Duration::from_millis(*std),
                        ),
                    );
                }
            }
            LatencyConfig::Random {
                base_ms,
                max_factor,
            } => {
                for (i, base) in base_ms.iter().enumerate() {
                    cluster.network().set_link(
                        dm,
                        NodeId::data_source(i as u32),
                        RandomLatency::new(Duration::from_millis(*base), 1.0, *max_factor),
                    );
                }
            }
            LatencyConfig::Dynamic { window, per_node } => {
                for (i, schedule) in per_node.iter().enumerate() {
                    cluster.network().set_link(
                        dm,
                        NodeId::data_source(i as u32),
                        DynamicLatency::evenly_spaced(
                            *window,
                            schedule
                                .iter()
                                .map(|ms| Duration::from_millis(*ms))
                                .collect(),
                        ),
                    );
                }
            }
        }
    }
}

/// Specification of one YCSB run.
#[derive(Clone)]
pub struct YcsbRunSpec {
    /// System under test.
    pub system: SystemUnderTest,
    /// WAN latency configuration.
    pub latency: LatencyConfig,
    /// Per-data-source dialect (defaults to MySQL everywhere).
    pub dialects: Option<Vec<Dialect>>,
    /// Workload configuration (records, skew, distributed ratio, ...).
    pub ycsb: YcsbConfig,
    /// Closed-loop terminals.
    pub terminals: usize,
    /// Warm-up excluded from measurement.
    pub warmup: Duration,
    /// Measurement window.
    pub measure: Duration,
    /// Seed.
    pub seed: u64,
    /// Data-source lock-wait timeout (the paper configures 5 s).
    pub lock_wait_timeout: Duration,
    /// Spawn the background RTT monitor (needed when latency changes online).
    pub background_monitor: bool,
}

impl YcsbRunSpec {
    /// A run over the paper's default deployment with the given system,
    /// workload and driver parameters.
    pub fn new(
        system: SystemUnderTest,
        ycsb: YcsbConfig,
        terminals: usize,
        measure: Duration,
    ) -> Self {
        Self {
            system,
            latency: LatencyConfig::paper_default(),
            dialects: None,
            ycsb,
            terminals,
            warmup: Duration::from_millis(500),
            measure,
            seed: 42,
            lock_wait_timeout: Duration::from_secs(5),
            background_monitor: false,
        }
    }
}

/// Specification of one TPC-C run.
#[derive(Clone)]
pub struct TpccRunSpec {
    /// System under test (middleware protocols, ScalarDB, ScalarDB+).
    pub system: SystemUnderTest,
    /// WAN latency configuration.
    pub latency: LatencyConfig,
    /// Workload configuration.
    pub tpcc: TpccConfig,
    /// Closed-loop terminals.
    pub terminals: usize,
    /// Warm-up excluded from measurement.
    pub warmup: Duration,
    /// Measurement window.
    pub measure: Duration,
    /// Seed.
    pub seed: u64,
}

impl TpccRunSpec {
    /// A run over the paper's default deployment.
    pub fn new(
        system: SystemUnderTest,
        tpcc: TpccConfig,
        terminals: usize,
        measure: Duration,
    ) -> Self {
        Self {
            system,
            latency: LatencyConfig::paper_default(),
            tpcc,
            terminals,
            warmup: Duration::from_millis(500),
            measure,
            seed: 42,
        }
    }
}

/// Everything a figure might need from one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// System label.
    pub label: String,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Mean latency of committed transactions.
    pub mean_latency: Duration,
    /// Mean latency of committed *centralized* transactions (Fig. 1b).
    pub mean_centralized_latency: Duration,
    /// Mean latency of committed *distributed* transactions.
    pub mean_distributed_latency: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// 99.9th-percentile latency.
    pub p999: Duration,
    /// Abort rate over attempts.
    pub abort_rate: f64,
    /// Committed transactions in the measurement window.
    pub committed: u64,
    /// `(latency, cumulative fraction)` CDF points over committed txns.
    pub cdf: Vec<(Duration, f64)>,
    /// Committed throughput per timeline window (tx/s).
    pub timeline_tps: Vec<f64>,
    /// One-way messages sent over the simulated WAN during the run.
    pub net_messages: u64,
    /// Scheduler/executor polls performed by the simulation runtime.
    pub sim_polls: u64,
    /// Hot records tracked by the hotspot footprint at the end of the run.
    pub hotspot_entries: usize,
}

fn report_to_result(report: &BenchmarkReport, measure: Duration) -> RunResult {
    RunResult {
        label: report.label.clone(),
        throughput: report.metrics.throughput(measure),
        mean_latency: report.metrics.latency().mean(),
        mean_centralized_latency: report.metrics.centralized_latency().mean(),
        mean_distributed_latency: report.metrics.distributed_latency().mean(),
        p99: report.metrics.latency().percentile(99.0),
        p999: report.metrics.latency().percentile(99.9),
        abort_rate: report.metrics.abort_rate(),
        committed: report.metrics.committed(),
        cdf: report.metrics.latency().cdf(100),
        timeline_tps: report.metrics.timeline().series_tps(),
        net_messages: 0,
        sim_polls: 0,
        hotspot_entries: 0,
    }
}

/// Build the simulator runtime for an experiment point: the coordinator and
/// data sources are declared as topology nodes (links carry the point's WAN
/// RTTs) pinned to shard 0, since every model tier shares one `Rc` object
/// graph. Worker count comes from `GEOTP_WORKERS` (default 1); extra shards
/// idle deterministically, so results and `sim_polls` are identical at any
/// worker count.
pub(crate) fn sim_runtime(seed: u64, ds_rtts_ms: &[u64]) -> Runtime {
    let mut builder = geotp_simrt::RuntimeBuilder::from_env()
        .seed(seed)
        .node("mw0")
        .assign("mw0", 0);
    for (i, rtt_ms) in ds_rtts_ms.iter().enumerate() {
        let ds = format!("ds{i}");
        builder = builder
            .link("mw0", &ds, Duration::from_millis(*rtt_ms))
            .assign(&ds, 0);
    }
    builder.build()
}

fn engine_config(lock_wait_timeout: Duration) -> EngineConfig {
    EngineConfig {
        lock_wait_timeout,
        cost: CostModel::default(),
        record_history: false,
        ..EngineConfig::default()
    }
}

fn build_cluster(
    latency: &LatencyConfig,
    dialects: &Option<Vec<Dialect>>,
    records_per_node: u64,
    protocol: Protocol,
    lock_wait_timeout: Duration,
    seed: u64,
    background_monitor: bool,
) -> Cluster {
    let rtts = latency.base_rtts();
    let mut builder = ClusterBuilder::new()
        .seed(seed)
        .records_per_node(records_per_node)
        .protocol(protocol)
        .engine_config(engine_config(lock_wait_timeout))
        .background_monitor(background_monitor);
    for (i, rtt) in rtts.iter().enumerate() {
        let dialect = dialects
            .as_ref()
            .and_then(|d| d.get(i).copied())
            .unwrap_or(Dialect::MySql);
        builder = builder.data_source(*rtt, dialect);
    }
    let cluster = builder.build();
    latency.apply(&cluster, NodeId::middleware(0));
    cluster
}

/// Run one YCSB experiment point. Builds a dedicated runtime and cluster so
/// every point starts from identical, independent state.
pub fn run_ycsb(spec: &YcsbRunSpec) -> RunResult {
    assert_eq!(
        spec.latency.node_count(),
        spec.ycsb.nodes as usize,
        "latency config and YCSB node count must agree"
    );
    let mut rt = sim_runtime(spec.seed, &spec.latency.base_rtts());
    let driver = DriverConfig {
        terminals: spec.terminals,
        warmup: spec.warmup,
        measure: spec.measure,
        seed: spec.seed,
    };
    let generator = Rc::new(YcsbGenerator::new(spec.ycsb));
    let mut result = match spec.system {
        SystemUnderTest::Middleware(protocol) => rt.block_on(async {
            let cluster = build_cluster(
                &spec.latency,
                &spec.dialects,
                spec.ycsb.records_per_node,
                protocol,
                spec.lock_wait_timeout,
                spec.seed,
                spec.background_monitor,
            );
            generator.load(cluster.data_sources());
            let report = run_benchmark(
                Rc::clone(cluster.middleware()),
                WorkloadMix::Ycsb(Rc::clone(&generator)),
                driver,
            )
            .await;
            let mut result = report_to_result(&report, spec.measure);
            result.net_messages = cluster.network().total_messages();
            result.hotspot_entries = cluster.middleware().scheduler().footprint().borrow().len();
            result
        }),
        SystemUnderTest::ScalarDb | SystemUnderTest::ScalarDbPlus => rt.block_on(async {
            let cluster = build_cluster(
                &spec.latency,
                &spec.dialects,
                spec.ycsb.records_per_node,
                Protocol::SspXa,
                spec.lock_wait_timeout,
                spec.seed,
                spec.background_monitor,
            );
            let config = ScalarDbConfig::new(NodeId::middleware(0));
            let scalardb = if matches!(spec.system, SystemUnderTest::ScalarDbPlus) {
                ScalarDbCluster::new_plus(
                    config,
                    Rc::clone(cluster.network()),
                    cluster.data_sources(),
                    spec.ycsb.partitioner(),
                )
            } else {
                ScalarDbCluster::new(
                    config,
                    Rc::clone(cluster.network()),
                    cluster.data_sources(),
                    spec.ycsb.partitioner(),
                )
            };
            generator.load(cluster.data_sources());
            let report = run_benchmark(
                ScalarDbService(scalardb),
                WorkloadMix::Ycsb(Rc::clone(&generator)),
                driver,
            )
            .await;
            let mut result = report_to_result(&report, spec.measure);
            result.net_messages = cluster.network().total_messages();
            result
        }),
        SystemUnderTest::DistDb => rt.block_on(async {
            let cluster = build_cluster(
                &spec.latency,
                &spec.dialects,
                spec.ycsb.records_per_node,
                Protocol::SspXa,
                spec.lock_wait_timeout,
                spec.seed,
                spec.background_monitor,
            );
            let mut config = DistDbConfig::new(NodeId::middleware(0), spec.ycsb.nodes);
            config.engine = engine_config(spec.lock_wait_timeout);
            let db = DistDb::new(
                config,
                Rc::clone(cluster.network()),
                spec.ycsb.partitioner(),
            );
            for node in 0..spec.ycsb.nodes as u64 {
                for row in 0..spec.ycsb.records_per_node {
                    db.load(
                        GlobalKey::new(USERTABLE, node * spec.ycsb.records_per_node + row),
                        Row::int(10_000),
                    );
                }
            }
            let report = run_benchmark(
                DistDbService(db),
                WorkloadMix::Ycsb(Rc::clone(&generator)),
                driver,
            )
            .await;
            let mut result = report_to_result(&report, spec.measure);
            result.net_messages = cluster.network().total_messages();
            result
        }),
    };
    result.sim_polls = rt.metrics().polls;
    result
}

/// Run one TPC-C experiment point.
pub fn run_tpcc(spec: &TpccRunSpec) -> RunResult {
    let mut rt = sim_runtime(spec.seed, &spec.latency.base_rtts());
    let driver = DriverConfig {
        terminals: spec.terminals,
        warmup: spec.warmup,
        measure: spec.measure,
        seed: spec.seed,
    };
    let generator = Rc::new(TpccGenerator::new(spec.tpcc.clone()));
    let protocol = match spec.system {
        SystemUnderTest::Middleware(p) => p,
        _ => Protocol::SspXa,
    };
    let mut result = rt.block_on(async {
        let cluster = build_cluster(
            &spec.latency,
            &None,
            1_000,
            protocol,
            Duration::from_secs(5),
            spec.seed,
            false,
        );
        generator.load(cluster.data_sources());
        let report = match spec.system {
            SystemUnderTest::ScalarDb | SystemUnderTest::ScalarDbPlus => {
                let config = ScalarDbConfig::new(NodeId::middleware(0));
                let scalardb = if matches!(spec.system, SystemUnderTest::ScalarDbPlus) {
                    ScalarDbCluster::new_plus(
                        config,
                        Rc::clone(cluster.network()),
                        cluster.data_sources(),
                        spec.tpcc.partitioner(),
                    )
                } else {
                    ScalarDbCluster::new(
                        config,
                        Rc::clone(cluster.network()),
                        cluster.data_sources(),
                        spec.tpcc.partitioner(),
                    )
                };
                run_benchmark(
                    ScalarDbService(scalardb),
                    WorkloadMix::Tpcc(Rc::clone(&generator)),
                    driver,
                )
                .await
            }
            _ => {
                // Middleware systems need the warehouse partitioner instead of
                // the default range partitioner.
                let mut cfg = geotp_middleware::MiddlewareConfig::new(
                    NodeId::middleware(0),
                    protocol,
                    spec.tpcc.partitioner(),
                );
                cfg.analysis_cost = Duration::from_millis(1);
                let mw = geotp_middleware::Middleware::connect(
                    cfg,
                    Rc::clone(cluster.network()),
                    cluster.data_sources(),
                    None,
                );
                run_benchmark(mw, WorkloadMix::Tpcc(Rc::clone(&generator)), driver).await
            }
        };
        let mut result = report_to_result(&report, spec.measure);
        result.net_messages = cluster.network().total_messages();
        result
    });
    result.sim_polls = rt.metrics().polls;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_workloads::Contention;

    fn quick_ycsb(system: SystemUnderTest) -> RunResult {
        let ycsb = YcsbConfig::new(2, 500)
            .with_contention(Contention::Medium)
            .with_distributed_ratio(0.2);
        let mut spec = YcsbRunSpec::new(system, ycsb, 4, Duration::from_secs(2));
        spec.latency = LatencyConfig::Static(vec![10, 100]);
        run_ycsb(&spec)
    }

    #[test]
    fn ycsb_runner_produces_throughput_for_every_system() {
        for system in [
            SystemUnderTest::Middleware(Protocol::geotp()),
            SystemUnderTest::Middleware(Protocol::SspXa),
            SystemUnderTest::ScalarDb,
            SystemUnderTest::DistDb,
        ] {
            let result = quick_ycsb(system);
            assert!(result.committed > 0, "{} committed nothing", system.name());
            assert!(result.throughput > 0.0);
            assert!(result.mean_latency > Duration::ZERO);
            assert!(result.p99 >= result.mean_latency / 2);
        }
    }

    #[test]
    fn geotp_beats_ssp_in_the_runner_too() {
        let geotp = quick_ycsb(SystemUnderTest::Middleware(Protocol::geotp()));
        let ssp = quick_ycsb(SystemUnderTest::Middleware(Protocol::SspXa));
        assert!(
            geotp.throughput > ssp.throughput,
            "GeoTP {:.1} vs SSP {:.1}",
            geotp.throughput,
            ssp.throughput
        );
    }

    #[test]
    fn tpcc_runner_commits_transactions() {
        let mut tpcc = TpccConfig::new(2, 2);
        tpcc.items = 100;
        tpcc.customers_per_district = 30;
        let mut spec = TpccRunSpec::new(
            SystemUnderTest::Middleware(Protocol::geotp()),
            tpcc,
            4,
            Duration::from_secs(2),
        );
        spec.latency = LatencyConfig::Static(vec![10, 100]);
        let result = run_tpcc(&spec);
        assert!(result.committed > 0);
        assert!(result.throughput > 0.0);
    }

    #[test]
    fn run_results_are_deterministic() {
        let a = quick_ycsb(SystemUnderTest::Middleware(Protocol::geotp()));
        let b = quick_ycsb(SystemUnderTest::Middleware(Protocol::geotp()));
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.mean_latency, b.mean_latency);
    }
}
