//! Plain-text table formatting for experiment output.

use std::fmt;

/// A result table: a title, column headers and rows of cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (e.g. "Fig. 7 — YCSB medium contention, throughput").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Append a row from anything displayable.
    pub fn row<D: fmt::Display>(&mut self, cells: &[D]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Find a cell by row predicate and column header (test helper).
    pub fn cell(&self, row_match: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.rows
            .iter()
            .find(|r| r.first().map(|c| c.as_str()) == Some(row_match))
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compute column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        writeln!(f, "\n=== {} ===", self.title)?;
        let mut header_line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            header_line.push_str(&format!("{h:<w$}  "));
        }
        writeln!(f, "{}", header_line.trim_end())?;
        writeln!(f, "{}", "-".repeat(header_line.trim_end().len()))?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:<w$}  "));
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Format a throughput value.
pub fn tput(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a latency in milliseconds.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Format a ratio as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_with_alignment() {
        let mut t = Table::new("Demo", &["system", "tput (txn/s)", "p99 (ms)"]);
        t.row(&["GeoTP", "123.4", "88.0"]);
        t.row(&["SSP", "17.9", "410.2"]);
        let rendered = t.to_string();
        assert!(rendered.contains("=== Demo ==="));
        assert!(rendered.contains("GeoTP"));
        assert!(rendered.lines().count() >= 5);
        assert_eq!(t.cell("SSP", "p99 (ms)"), Some("410.2"));
        assert_eq!(t.cell("SSP", "nope"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(tput(12.345), "12.3");
        assert_eq!(ms(Duration::from_micros(1500)), "1.5");
        assert_eq!(pct(0.321), "32.1%");
    }
}
