//! # geotp-experiments — per-figure experiment harness
//!
//! One function per table/figure of the paper's evaluation (§VII). Every
//! experiment builds a fresh simulated cluster, drives it with the workload
//! and parameters the paper describes, and returns a [`report::Table`] whose
//! rows mirror the series the paper plots. The bench targets in
//! `crates/bench/benches/` simply call these functions and print the tables,
//! so `cargo bench` regenerates the whole evaluation.
//!
//! Scale is controlled by [`scale::Scale`]: the default `Quick` preset keeps
//! every experiment in the seconds range; set `GEOTP_FULL=1` to run the
//! paper-scale sweeps.

pub mod cluster_drills;
pub mod failure_drills;
pub mod figs_ablation;
pub mod figs_distributed;
pub mod figs_motivation;
pub mod figs_network;
pub mod figs_overall;
pub mod golden;
pub mod overload;
pub mod profile_drills;
pub mod report;
pub mod runner;
pub mod scale;
pub mod scaleout;

pub use report::Table;
pub use runner::{RunResult, SystemUnderTest, TpccRunSpec, YcsbRunSpec};
pub use scale::Scale;

/// An experiment entry: `(identifier, runner)`.
pub type ExperimentEntry = (&'static str, fn(Scale) -> Vec<Table>);

/// Every experiment in paper order: `(identifier, runner)`.
/// Useful for "run everything" binaries.
pub fn all_experiments() -> Vec<ExperimentEntry> {
    vec![
        ("fig01_motivation", figs_motivation::fig01_motivation),
        ("fig05_scalability", figs_overall::fig05_scalability),
        ("fig06_breakdown", figs_motivation::fig06_breakdown),
        (
            "fig06_trace_breakdown",
            figs_motivation::fig06_trace_breakdown,
        ),
        (
            "fig07_dist_ratio_ycsb",
            figs_distributed::fig07_dist_ratio_ycsb,
        ),
        ("fig08_latency_cdf", figs_distributed::fig08_latency_cdf),
        (
            "fig09_dist_ratio_tpcc",
            figs_distributed::fig09_dist_ratio_tpcc,
        ),
        ("fig10_latency_config", figs_network::fig10_latency_config),
        ("fig11_random_dynamic", figs_network::fig11_random_dynamic),
        ("fig12_ablation", figs_ablation::fig12_ablation),
        ("fig13_yugabyte", figs_overall::fig13_yugabyte),
        ("fig14_txn_length", figs_ablation::fig14_txn_length),
        ("fig15_multi_dm", figs_overall::fig15_multi_dm),
        ("tab01_heterogeneous", figs_overall::tab01_heterogeneous),
        ("failure_drills", failure_drills::failure_drills),
        ("cluster_drills", cluster_drills::cluster_drills),
        ("profile_drills", profile_drills::profile_drills),
        ("scaleout", scaleout::scaleout),
        ("overload", overload::overload),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_registry_is_complete() {
        let names: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 19);
        assert!(names.contains(&"profile_drills"));
        assert!(names.contains(&"fig06_trace_breakdown"));
        assert!(names.contains(&"fig12_ablation"));
        assert!(names.contains(&"tab01_heterogeneous"));
        assert!(names.contains(&"failure_drills"));
        assert!(names.contains(&"cluster_drills"));
        assert!(names.contains(&"scaleout"));
        assert!(names.contains(&"overload"));
    }
}
