//! Fig. 5 (overall scalability), Fig. 13 (vs the distributed database),
//! Fig. 15 (multi-region middlewares) and Table I (heterogeneous deployments).

use std::rc::Rc;
use std::time::Duration;

use geotp::{ClusterBuilder, Dialect, Protocol};
use geotp_net::PAPER_DM2_RTTS_MS;
use geotp_storage::{CostModel, EngineConfig};
use geotp_workloads::driver::run_benchmark;
use geotp_workloads::{
    Contention, DriverConfig, TpccConfig, WorkloadMix, YcsbConfig, YcsbGenerator,
};

use crate::report::{ms, tput, Table};
use crate::runner::{run_tpcc, run_ycsb, SystemUnderTest, TpccRunSpec, YcsbRunSpec};
use crate::scale::Scale;

/// Fig. 5: throughput vs number of client terminals over YCSB (a) and TPC-C
/// (b) for the five database-middleware systems.
pub fn fig05_scalability(scale: Scale) -> Vec<Table> {
    let systems = SystemUnderTest::overall_set();
    let mut headers: Vec<String> = vec!["terminals".to_string()];
    headers.extend(systems.iter().map(|s| format!("{} (txn/s)", s.name())));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut ycsb_table = Table::new("Fig. 5a — YCSB throughput vs terminals", &header_refs);
    for terminals in scale.terminal_sweep() {
        let mut row = vec![terminals.to_string()];
        for system in &systems {
            let ycsb = YcsbConfig::new(4, scale.records_per_node())
                .with_contention(Contention::Medium)
                .with_distributed_ratio(0.2);
            let mut spec = YcsbRunSpec::new(*system, ycsb, terminals, scale.measure());
            spec.warmup = scale.warmup();
            row.push(tput(run_ycsb(&spec).throughput));
        }
        ycsb_table.push_row(row);
    }

    let mut tpcc_table = Table::new("Fig. 5b — TPC-C throughput vs terminals", &header_refs);
    for terminals in scale.terminal_sweep() {
        let mut row = vec![terminals.to_string()];
        for system in &systems {
            let tpcc = TpccConfig::new(4, scale.warehouses_per_node());
            let mut spec = TpccRunSpec::new(*system, tpcc, terminals, scale.measure());
            spec.warmup = scale.warmup();
            row.push(tput(run_tpcc(&spec).throughput));
        }
        tpcc_table.push_row(row);
    }
    vec![ycsb_table, tpcc_table]
}

/// Fig. 13: GeoTP vs SSP vs the YugabyteDB-like distributed database at the
/// three contention levels (throughput and average latency).
pub fn fig13_yugabyte(scale: Scale) -> Vec<Table> {
    let systems = [
        SystemUnderTest::Middleware(Protocol::SspXa),
        SystemUnderTest::Middleware(Protocol::geotp()),
        SystemUnderTest::DistDb,
    ];
    let mut throughput = Table::new(
        "Fig. 13a — throughput vs contention (YCSB)",
        &["contention", "SSP", "GeoTP", "YugabyteDB"],
    );
    let mut latency = Table::new(
        "Fig. 13b — average latency (ms) vs contention (YCSB)",
        &["contention", "SSP", "GeoTP", "YugabyteDB"],
    );
    for contention in [Contention::Low, Contention::Medium, Contention::High] {
        let mut tput_row = vec![contention.name().to_string()];
        let mut lat_row = vec![contention.name().to_string()];
        for system in systems {
            let ycsb = YcsbConfig::new(4, scale.records_per_node())
                .with_contention(contention)
                .with_distributed_ratio(0.2);
            let mut spec = YcsbRunSpec::new(system, ycsb, scale.terminals(), scale.measure());
            spec.warmup = scale.warmup();
            let result = run_ycsb(&spec);
            tput_row.push(tput(result.throughput));
            lat_row.push(ms(result.mean_latency));
        }
        throughput.push_row(tput_row);
        latency.push_row(lat_row);
    }
    vec![throughput, latency]
}

/// Fig. 15: a single middleware in Beijing vs two middlewares, one per region,
/// each co-located with its clients (the second uses the mirrored RTT vector).
pub fn fig15_multi_dm(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "Fig. 15 — multi-region middleware deployment (YCSB, GeoTP)",
        &["deployment", "throughput (txn/s)"],
    );
    for multi in [false, true] {
        let mut rt = crate::runner::sim_runtime(42, &geotp_net::PAPER_DEFAULT_RTTS_MS);
        let throughput = rt.block_on(async {
            let mut builder = ClusterBuilder::new()
                .paper_default_sources()
                .records_per_node(scale.records_per_node())
                .protocol(Protocol::geotp())
                .engine_config(EngineConfig {
                    lock_wait_timeout: Duration::from_secs(5),
                    cost: CostModel::default(),
                    record_history: false,
                    ..EngineConfig::default()
                });
            if multi {
                builder = builder.extra_middleware(PAPER_DM2_RTTS_MS.to_vec());
            }
            let cluster = builder.build();
            let ycsb = YcsbConfig::new(4, scale.records_per_node())
                .with_contention(Contention::Medium)
                .with_distributed_ratio(0.2);
            let generator = Rc::new(YcsbGenerator::new(ycsb));
            generator.load(cluster.data_sources());

            let driver = DriverConfig {
                terminals: scale.terminals() / if multi { 2 } else { 1 },
                warmup: scale.warmup(),
                measure: scale.measure(),
                seed: 42,
            };
            if multi {
                // Each middleware serves its own region's clients concurrently.
                let a = geotp_simrt::spawn(run_benchmark(
                    Rc::clone(&cluster.middlewares()[0]),
                    WorkloadMix::Ycsb(Rc::clone(&generator)),
                    driver,
                ));
                let b = geotp_simrt::spawn(run_benchmark(
                    Rc::clone(&cluster.middlewares()[1]),
                    WorkloadMix::Ycsb(Rc::clone(&generator)),
                    DriverConfig { seed: 43, ..driver },
                ));
                let (ra, rb) = (a.await, b.await);
                ra.throughput() + rb.throughput()
            } else {
                run_benchmark(
                    Rc::clone(cluster.middleware()),
                    WorkloadMix::Ycsb(generator),
                    driver,
                )
                .await
                .throughput()
            }
        });
        table.push_row(vec![
            if multi {
                "Multi-middleware".into()
            } else {
                "Single-middleware".into()
            },
            tput(throughput),
        ]);
    }
    vec![table]
}

/// Table I: heterogeneous deployments (MySQL-only, mixed, PostgreSQL-only) at
/// 25% and 75% distributed transactions, SSP vs GeoTP.
pub fn tab01_heterogeneous(scale: Scale) -> Vec<Table> {
    let scenarios: [(&str, Vec<Dialect>); 3] = [
        ("S1 (MySQL x4)", vec![Dialect::MySql; 4]),
        (
            "S2 (PG/MySQL mixed)",
            vec![
                Dialect::Postgres,
                Dialect::MySql,
                Dialect::Postgres,
                Dialect::MySql,
            ],
        ),
        ("S3 (PostgreSQL x4)", vec![Dialect::Postgres; 4]),
    ];
    let mut table = Table::new(
        "Table I — heterogeneous deployments over YCSB",
        &[
            "scenario",
            "system",
            "dr=25% tput",
            "dr=25% avg lat (ms)",
            "dr=75% tput",
            "dr=75% avg lat (ms)",
        ],
    );
    for (name, dialects) in &scenarios {
        for system in [
            SystemUnderTest::Middleware(Protocol::SspXa),
            SystemUnderTest::Middleware(Protocol::geotp()),
        ] {
            let mut cells = vec![name.to_string(), system.name()];
            for dr in [0.25, 0.75] {
                let ycsb = YcsbConfig::new(4, scale.records_per_node())
                    .with_contention(Contention::Medium)
                    .with_distributed_ratio(dr);
                let mut spec = YcsbRunSpec::new(system, ycsb, scale.terminals(), scale.measure());
                spec.warmup = scale.warmup();
                spec.dialects = Some(dialects.clone());
                let result = run_ycsb(&spec);
                cells.push(tput(result.throughput));
                cells.push(ms(result.mean_latency));
            }
            table.push_row(cells);
        }
    }
    vec![table]
}
