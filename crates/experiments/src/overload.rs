//! Overload: graceful degradation vs collapse on a saturated coordinator.
//!
//! The scale-out table shows what a 600 txn/s offered load does to a single
//! 32-worker coordinator: the backlog queues without bound and p99 explodes
//! into the seconds. This experiment drives exactly that saturated
//! deployment twice — once with the legacy unbounded admission (every
//! arrival waits however long the FIFO queue takes) and once with bounded
//! admission (queue of 64, 250 ms queue-time deadline, explicit sheds) —
//! and shows the robustness trade: shedding converts unbounded queueing
//! delay into explicit `Overloaded` rejections, keeping the p99 of the
//! transactions that *are* served bounded instead of collapsing.

use std::rc::Rc;
use std::time::Duration;

use geotp::cluster::{
    build_tier, run_open_loop, AdmissionPolicy, ClusterConfig, CoordinatorCluster, OpenLoopConfig,
    TierLayout,
};
use geotp::{ClientOp, GlobalKey, Partitioner, Protocol, TableId};
use geotp_middleware::TransactionSpec;
use geotp_storage::{CostModel, EngineConfig, Row};
use rand::Rng;

use crate::report::{ms, tput, Table};
use crate::scale::Scale;

const ROWS_PER_NODE: u64 = 1_000;
const DS_RTTS_MS: [u64; 3] = [10, 60, 120];
/// Worker capacity of the single coordinator (same as the scale-out table).
const WORKERS: usize = 32;
/// Offered load — roughly 3× what 32 workers can complete at these RTTs.
const ARRIVALS_PER_SEC: u64 = 600;

/// How often the metrics registry is snapshotted into the timeline during
/// the run (virtual time). The sampler only reads the registry, so the
/// simulated schedule and the golden tables are untouched by sampling.
const TIMELINE_SAMPLE_EVERY: Duration = Duration::from_millis(500);

struct OverloadRow {
    report: geotp::OpenLoopReport,
    shed: u64,
    /// Metrics-timeline CSV for this run (sampled every
    /// [`TIMELINE_SAMPLE_EVERY`]), golden-gated next to the table.
    timeline_csv: String,
}

fn drive(admission: AdmissionPolicy, scale: Scale) -> OverloadRow {
    let previous = geotp_telemetry::uninstall();
    let telemetry = geotp_telemetry::install();
    let mut rt = crate::runner::sim_runtime(42, &DS_RTTS_MS);
    let mut row = rt.block_on(async {
        let (net, sources) = build_tier(&TierLayout {
            seed: 42,
            coordinators: 1,
            ds_rtts_ms: DS_RTTS_MS.to_vec(),
            control_rtt_ms: 2,
            engine: EngineConfig {
                lock_wait_timeout: Duration::from_secs(2),
                cost: CostModel::default(),
                record_history: false,
                ..EngineConfig::default()
            },
            agent_lan_rtt: Duration::from_micros(500),
        });
        let nodes = DS_RTTS_MS.len() as u32;
        for ds in &sources {
            for row in 0..ROWS_PER_NODE {
                let global = ds.index() as u64 * ROWS_PER_NODE + row;
                ds.load(
                    GlobalKey::new(TableId(0), global).storage_key(),
                    Row::int(1_000),
                );
            }
        }
        let mut config = ClusterConfig::new(
            1,
            Protocol::geotp(),
            Partitioner::Range {
                rows_per_node: ROWS_PER_NODE,
                nodes,
            },
        );
        config.max_inflight = WORKERS;
        config.admission = admission;
        let cluster = CoordinatorCluster::build(config, net, &sources);

        // Periodic registry snapshots while the load runs. Sampling only
        // reads the registry — no randomness, no cluster state — so it
        // cannot move an event in the simulated run.
        let done = Rc::new(std::cell::Cell::new(false));
        let sampler = {
            let done = Rc::clone(&done);
            let telemetry = Rc::clone(&telemetry);
            geotp_simrt::spawn(async move {
                while !done.get() {
                    geotp_simrt::sleep(TIMELINE_SAMPLE_EVERY).await;
                    telemetry.metrics.snapshot_to_timeline();
                }
            })
        };

        let total_rows = ROWS_PER_NODE * nodes as u64;
        let report = run_open_loop(
            &cluster,
            move |rng| {
                let src = rng.gen_range(0..total_rows);
                let dst = rng.gen_range(0..total_rows);
                TransactionSpec::single_round(vec![
                    ClientOp::add(GlobalKey::new(TableId(0), src), -1),
                    ClientOp::add(GlobalKey::new(TableId(0), dst), 1),
                ])
            },
            OpenLoopConfig {
                arrivals_per_sec: ARRIVALS_PER_SEC,
                sessions: 512,
                warmup: scale.warmup(),
                measure: scale.measure(),
                seed: 42,
            },
        )
        .await;
        done.set(true);
        sampler.await;
        OverloadRow {
            report,
            shed: cluster.shed_count(),
            timeline_csv: String::new(),
        }
    });
    geotp_telemetry::uninstall();
    if let Some(previous) = previous {
        geotp_telemetry::install_collector(previous);
    }
    row.timeline_csv = geotp_telemetry::metrics_timeline_csv(&telemetry.metrics.timeline());
    row
}

/// The overload table: one saturated coordinator under the same offered
/// load, with load shedding off (legacy unbounded queueing) and on (bounded
/// queue + queue-time deadline).
pub fn overload(scale: Scale) -> Vec<Table> {
    overload_with_timelines(scale).0
}

/// [`overload`], also returning each policy's metrics-timeline CSV
/// (`("off" | "on", csv)`) — the registry sampled every
/// [`TIMELINE_SAMPLE_EVERY`] of virtual time, golden-gated next to the
/// table so the *shape over time* of the collapse (queue depth ramps,
/// latency histograms fattening) is pinned, not just the end-of-run
/// aggregates.
pub fn overload_with_timelines(scale: Scale) -> (Vec<Table>, Vec<(&'static str, String)>) {
    let mut table = Table::new(
        "Overload — graceful degradation vs collapse (1 coordinator, 32 workers, \
         600 arrivals/s; shedding = queue 64, 250 ms queue deadline)",
        &[
            "shedding",
            "offered (txn/s)",
            "committed (txn/s)",
            "shed",
            "mean latency (ms)",
            "p99 latency (ms)",
        ],
    );
    let policies = [
        ("off", AdmissionPolicy::default()),
        (
            "on",
            AdmissionPolicy::bounded(64, Duration::from_millis(250)),
        ),
    ];
    let mut timelines = Vec::new();
    for (label, admission) in policies {
        let row = drive(admission, scale);
        table.push_row(vec![
            label.to_string(),
            tput(row.report.offered as f64 / scale.measure().as_secs_f64()),
            tput(row.report.throughput),
            row.shed.to_string(),
            ms(row.report.mean_latency),
            ms(row.report.p99_latency),
        ]);
        timelines.push((label, row.timeline_csv));
    }
    (vec![table], timelines)
}

/// The acceptance shape, asserted on already-materialized tables so the
/// sweep runs once per test pass: without shedding the saturated tier's p99
/// collapses into unbounded queueing delay; with shedding the served-
/// transaction p99 stays bounded (well under a second) and the overflow is
/// explicitly shed. Called by the golden gate (`crate::golden`) on the same
/// tables it diffs.
#[cfg(test)]
pub(crate) fn assert_shedding_bounds_the_tail(tables: &[Table]) {
    let table = &tables[0];
    assert_eq!(table.len(), 2);
    let p99_off: f64 = table.rows[0][5].parse().unwrap();
    let p99_on: f64 = table.rows[1][5].parse().unwrap();
    let shed_off: u64 = table.rows[0][3].parse().unwrap();
    let shed_on: u64 = table.rows[1][3].parse().unwrap();
    assert_eq!(shed_off, 0, "unbounded admission never sheds");
    assert!(shed_on > 0, "bounded admission must shed under 3× overload");
    assert!(
        p99_on < 1_000.0,
        "with shedding, served p99 stays bounded: {p99_on} ms"
    );
    assert!(
        p99_off > 2.0 * p99_on,
        "without shedding the tail collapses: off={p99_off} ms vs on={p99_on} ms"
    );
}
