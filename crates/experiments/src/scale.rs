//! Experiment scale presets.

use std::time::Duration;

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-figure scale used by default (`cargo bench`, CI, tests).
    Quick,
    /// Paper-scale sweeps (`GEOTP_FULL=1 cargo bench`).
    Full,
}

impl Scale {
    /// Resolve the scale from the `GEOTP_FULL` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("GEOTP_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Records per data node for YCSB (paper: 1 million).
    pub fn records_per_node(&self) -> u64 {
        match self {
            Scale::Quick => 2_000,
            Scale::Full => 100_000,
        }
    }

    /// Number of closed-loop terminals (paper default: 64).
    pub fn terminals(&self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 64,
        }
    }

    /// Measurement window per data point.
    pub fn measure(&self) -> Duration {
        match self {
            Scale::Quick => Duration::from_secs(4),
            Scale::Full => Duration::from_secs(20),
        }
    }

    /// Warm-up excluded from measurement.
    pub fn warmup(&self) -> Duration {
        match self {
            Scale::Quick => Duration::from_millis(500),
            Scale::Full => Duration::from_secs(2),
        }
    }

    /// Warehouses per data node for TPC-C (paper default: 16).
    pub fn warehouses_per_node(&self) -> u32 {
        match self {
            Scale::Quick => 2,
            Scale::Full => 16,
        }
    }

    /// Sweep points for the distributed-transaction-ratio experiments.
    pub fn dist_ratios(&self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![0.2, 0.6, 1.0],
            Scale::Full => vec![0.2, 0.4, 0.6, 0.8, 1.0],
        }
    }

    /// Terminal counts for the scalability experiment (Fig. 5).
    pub fn terminal_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![8, 32, 96],
            Scale::Full => vec![8, 50, 150, 250, 350],
        }
    }

    /// Skew factors for the ablation study (Fig. 12).
    pub fn skew_sweep(&self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![0.3, 0.9, 1.5],
            Scale::Full => vec![0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7],
        }
    }

    /// Number of seeds for the random-latency experiment (Fig. 11a; paper: 20).
    pub fn random_latency_seeds(&self) -> u64 {
        match self {
            Scale::Quick => 3,
            Scale::Full => 20,
        }
    }

    /// Duration of the dynamic-latency timeline (Fig. 11b; paper: 320 s with a
    /// 40 s re-draw interval).
    pub fn dynamic_latency_duration(&self) -> Duration {
        match self {
            Scale::Quick => Duration::from_secs(80),
            Scale::Full => Duration::from_secs(320),
        }
    }

    /// Interval at which the dynamic-latency experiment re-draws latencies.
    pub fn dynamic_latency_window(&self) -> Duration {
        match self {
            Scale::Quick => Duration::from_secs(10),
            Scale::Full => Duration::from_secs(40),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full_everywhere() {
        let (q, f) = (Scale::Quick, Scale::Full);
        assert!(q.records_per_node() < f.records_per_node());
        assert!(q.terminals() < f.terminals());
        assert!(q.measure() < f.measure());
        assert!(q.dist_ratios().len() <= f.dist_ratios().len());
        assert!(q.terminal_sweep().len() <= f.terminal_sweep().len());
        assert!(q.skew_sweep().len() <= f.skew_sweep().len());
    }

    #[test]
    fn from_env_defaults_to_quick() {
        std::env::remove_var("GEOTP_FULL");
        assert_eq!(Scale::from_env(), Scale::Quick);
    }
}
