//! Sweep-wide trace profiler: where does committed-transaction latency go,
//! per chaos preset?
//!
//! Every chaos preset is run traced across the seed sweep (3 seeds at
//! `Quick`, 32 at `Full`); for each committed transaction (a gtrid with a
//! `CommitDispatch` span) the per-txn [`critical_path`] attributes every
//! microsecond of root latency to exactly one [`SpanKind`]. Aggregated over
//! the whole sweep this yields a *phase-dominance* profile per preset: the
//! share of total critical-path time each phase blocks, plus the p50/p99 of
//! per-transaction totals (nearest-rank over the sweep's committed
//! population). A scheduling or protocol regression that shifts time
//! between phases — more `VoteWait`, less `AgentExec` — moves these tables
//! even when throughput stays flat, so they are golden-gated like every
//! other experiment, and exported as a CSV artifact for offline plotting.

use geotp::chaos::{traced, Scenario};
use geotp_telemetry::{critical_path, CriticalPath, SpanKind, SPAN_KINDS};

use crate::report::Table;
use crate::scale::Scale;

/// Seeds per preset at each scale (mirrors the failure-drill sweep).
fn seeds(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 3,
        Scale::Full => 32,
    }
}

/// One preset's aggregated profile across the sweep.
struct PresetProfile {
    name: &'static str,
    /// Critical-path attribution summed over every committed txn of every
    /// seed.
    agg: CriticalPath,
    /// Per-committed-txn total latencies (micros), sweep-wide.
    totals: Vec<u64>,
}

impl PresetProfile {
    /// Nearest-rank percentile over the per-txn totals.
    fn percentile(&self, p: f64) -> u64 {
        let mut sorted = self.totals.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Percentage of aggregate critical-path time attributed to `kind`.
    fn share(&self, kind: SpanKind) -> f64 {
        if self.agg.total_micros == 0 {
            0.0
        } else {
            self.agg.micros(kind) as f64 * 100.0 / self.agg.total_micros as f64
        }
    }

    /// The phase blocking the most aggregate time (ties break on taxonomy
    /// order via [`CriticalPath::rows`]).
    fn dominant(&self) -> Option<(SpanKind, f64)> {
        let (kind, _micros) = *self.agg.rows().first()?;
        Some((kind, self.share(kind)))
    }
}

fn profile(scale: Scale, scenario: Scenario) -> PresetProfile {
    let mut agg = CriticalPath::default();
    let mut totals = Vec::new();
    for seed in 1..=seeds(scale) {
        let (_report, telemetry) = traced(|| scenario.run(seed));
        let spans = telemetry.tracer.spans();
        // Committed = the trace shows a commit dispatch for the gtrid; the
        // span record is the profiler's single source of truth.
        let mut gtrids: Vec<u64> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::CommitDispatch)
            .map(|s| s.id.gtrid)
            .collect();
        gtrids.sort_unstable();
        gtrids.dedup();
        for gtrid in gtrids {
            if let Some(path) = critical_path(&spans, gtrid) {
                agg.merge(&path);
                totals.push(path.total_micros);
            }
        }
    }
    PresetProfile {
        name: scenario.name(),
        agg,
        totals,
    }
}

fn dominance_table(scale: Scale, profiles: &[PresetProfile]) -> Table {
    let mut table = Table::new(
        format!(
            "Phase dominance — committed-txn critical paths, chaos presets x {} seed(s)",
            seeds(scale)
        ),
        &[
            "scenario",
            "committed txns",
            "p50 us",
            "p99 us",
            "dominant phase",
            "dominant share",
        ],
    );
    for p in profiles {
        let (kind, share) = p
            .dominant()
            .expect("a preset where nothing commits profiles nothing");
        table.push_row(vec![
            p.name.to_string(),
            p.agg.txns.to_string(),
            p.percentile(50.0).to_string(),
            p.percentile(99.0).to_string(),
            kind.label().to_string(),
            format!("{share:.1}%"),
        ]);
    }
    table
}

fn share_table(scale: Scale, profiles: &[PresetProfile]) -> Table {
    let mut columns = vec!["scenario"];
    columns.extend(SPAN_KINDS.iter().map(|k| k.label()));
    let mut table = Table::new(
        format!(
            "Critical-path share per span kind (% of sweep total) — {} seed(s)",
            seeds(scale)
        ),
        &columns,
    );
    for p in profiles {
        let mut row = vec![p.name.to_string()];
        row.extend(SPAN_KINDS.iter().map(|k| format!("{:.1}", p.share(*k))));
        table.push_row(row);
    }
    table
}

fn csv(profiles: &[PresetProfile]) -> String {
    let mut out = String::from("scenario,txns,p50_us,p99_us,kind,micros,share_pct\n");
    for p in profiles {
        let (txns, p50, p99) = (p.agg.txns, p.percentile(50.0), p.percentile(99.0));
        for kind in SPAN_KINDS {
            out.push_str(&format!(
                "{},{txns},{p50},{p99},{},{},{:.3}\n",
                p.name,
                kind.label(),
                p.agg.micros(kind),
                p.share(kind)
            ));
        }
    }
    out
}

/// Run the traced sweep over every preset; returns the two dominance tables
/// plus the per-preset critical-path CSV (one row per preset × span kind).
pub fn profile_drills_with_csv(scale: Scale) -> (Vec<Table>, String) {
    let profiles: Vec<PresetProfile> = Scenario::all()
        .into_iter()
        .map(|scenario| profile(scale, scenario))
        .collect();
    let tables = vec![
        dominance_table(scale, &profiles),
        share_table(scale, &profiles),
    ];
    let csv = csv(&profiles);
    (tables, csv)
}

/// The registry face: tables only.
pub fn profile_drills(scale: Scale) -> Vec<Table> {
    profile_drills_with_csv(scale).0
}

/// Structural gate shared with the golden test: every preset profiled, no
/// degenerate population, and the attribution really is a partition of
/// latency (shares sum to ~100%).
#[cfg(test)]
pub(crate) fn assert_profiles_are_nondegenerate(tables: &[Table]) {
    use geotp::chaos::Scenario;
    assert_eq!(tables.len(), 2);
    let dominance = &tables[0];
    assert_eq!(dominance.len(), Scenario::all().len());
    for scenario in Scenario::all() {
        let txns: u64 = dominance
            .cell(scenario.name(), "committed txns")
            .expect("preset row")
            .parse()
            .expect("numeric txn count");
        assert!(
            txns > 0,
            "{}: profiling nothing proves nothing",
            scenario.name()
        );
        let p99: u64 = dominance
            .cell(scenario.name(), "p99 us")
            .unwrap()
            .parse()
            .unwrap();
        let p50: u64 = dominance
            .cell(scenario.name(), "p50 us")
            .unwrap()
            .parse()
            .unwrap();
        assert!(p99 >= p50, "{}: p99 < p50", scenario.name());
        let share_sum: f64 = SPAN_KINDS
            .iter()
            .map(|k| {
                tables[1]
                    .cell(scenario.name(), k.label())
                    .unwrap()
                    .parse::<f64>()
                    .unwrap()
            })
            .sum();
        assert!(
            (share_sum - 100.0).abs() < 1.0,
            "{}: shares sum to {share_sum}",
            scenario.name()
        );
    }
}
