//! Fig. 12 (ablation of O1/O2/O3 across skew factors) and Fig. 14
//! (transaction length and interactive round count).

use geotp::Protocol;
use geotp_workloads::{Contention, YcsbConfig};

use crate::report::{ms, pct, tput, Table};
use crate::runner::{run_ycsb, SystemUnderTest, YcsbRunSpec};
use crate::scale::Scale;

/// Fig. 12: SSP vs GeoTP(O1) vs GeoTP(O1–O2) vs GeoTP(O1–O3) with 50%
/// distributed transactions across skew factors; throughput, p99 latency and
/// abort rate.
pub fn fig12_ablation(scale: Scale) -> Vec<Table> {
    let systems = [
        ("SSP", Protocol::SspXa),
        ("GeoTP(O1)", Protocol::geotp_o1()),
        ("GeoTP(O1-O2)", Protocol::geotp_o1_o2()),
        ("GeoTP(O1-O3)", Protocol::geotp()),
    ];
    let mut headers: Vec<String> = vec!["skew".to_string()];
    headers.extend(systems.iter().map(|(n, _)| n.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut throughput = Table::new("Fig. 12 — throughput (txn/s) vs skew factor", &header_refs);
    let mut p99 = Table::new("Fig. 12 — p99 latency (ms) vs skew factor", &header_refs);
    let mut aborts = Table::new("Fig. 12 — abort rate vs skew factor", &header_refs);

    for skew in scale.skew_sweep() {
        let mut tput_row = vec![format!("{skew:.1}")];
        let mut p99_row = vec![format!("{skew:.1}")];
        let mut abort_row = vec![format!("{skew:.1}")];
        for (_, protocol) in &systems {
            let mut ycsb = YcsbConfig::new(4, scale.records_per_node()).with_distributed_ratio(0.5);
            ycsb.theta = skew;
            let mut spec = YcsbRunSpec::new(
                SystemUnderTest::Middleware(*protocol),
                ycsb,
                scale.terminals(),
                scale.measure(),
            );
            spec.warmup = scale.warmup();
            let result = run_ycsb(&spec);
            tput_row.push(tput(result.throughput));
            p99_row.push(ms(result.p99));
            abort_row.push(pct(result.abort_rate));
        }
        throughput.push_row(tput_row);
        p99.push_row(p99_row);
        aborts.push_row(abort_row);
    }
    vec![throughput, p99, aborts]
}

/// Fig. 14: (a) throughput vs transaction length at medium contention;
/// (b)/(c) throughput vs number of interactive rounds at low and medium
/// contention, SSP vs GeoTP.
pub fn fig14_txn_length(scale: Scale) -> Vec<Table> {
    let lengths: Vec<usize> = match scale {
        Scale::Quick => vec![5, 15, 25],
        Scale::Full => vec![5, 10, 15, 20, 25],
    };
    let mut length_table = Table::new(
        "Fig. 14a — throughput vs transaction length (medium contention)",
        &["length", "SSP (txn/s)", "GeoTP (txn/s)"],
    );
    for length in &lengths {
        let mut row = vec![length.to_string()];
        for protocol in [Protocol::SspXa, Protocol::geotp()] {
            let mut ycsb = YcsbConfig::new(4, scale.records_per_node())
                .with_contention(Contention::Medium)
                .with_distributed_ratio(0.2);
            ycsb.ops_per_txn = *length;
            let mut spec = YcsbRunSpec::new(
                SystemUnderTest::Middleware(protocol),
                ycsb,
                scale.terminals(),
                scale.measure(),
            );
            spec.warmup = scale.warmup();
            row.push(tput(run_ycsb(&spec).throughput));
        }
        length_table.push_row(row);
    }

    let rounds: Vec<usize> = match scale {
        Scale::Quick => vec![1, 3, 6],
        Scale::Full => vec![1, 2, 3, 4, 5, 6],
    };
    let mut tables = vec![length_table];
    for contention in [Contention::Low, Contention::Medium] {
        let mut round_table = Table::new(
            format!(
                "Fig. 14{} — throughput vs interaction rounds ({} contention)",
                if contention == Contention::Low {
                    "b"
                } else {
                    "c"
                },
                contention.name()
            ),
            &["rounds", "SSP (txn/s)", "GeoTP (txn/s)"],
        );
        for round_count in &rounds {
            let mut row = vec![round_count.to_string()];
            for protocol in [Protocol::SspXa, Protocol::geotp()] {
                let mut ycsb = YcsbConfig::new(4, scale.records_per_node())
                    .with_contention(contention)
                    .with_distributed_ratio(0.2);
                ycsb.ops_per_txn = 6.max(*round_count);
                ycsb.rounds = *round_count;
                let mut spec = YcsbRunSpec::new(
                    SystemUnderTest::Middleware(protocol),
                    ycsb,
                    scale.terminals(),
                    scale.measure(),
                );
                spec.warmup = scale.warmup();
                row.push(tput(run_ycsb(&spec).throughput));
            }
            round_table.push_row(row);
        }
        tables.push(round_table);
    }
    tables
}
