//! Fig. 10 (latency mean/variance sweeps) and Fig. 11 (random and dynamic
//! network latency).

use geotp::Protocol;
use geotp_workloads::{Contention, YcsbConfig};

use crate::report::{tput, Table};
use crate::runner::{run_ycsb, LatencyConfig, SystemUnderTest, YcsbRunSpec};
use crate::scale::Scale;

fn ycsb_default(scale: Scale, dr: f64) -> YcsbConfig {
    YcsbConfig::new(4, scale.records_per_node())
        .with_contention(Contention::Medium)
        .with_distributed_ratio(dr)
}

/// Fig. 10: (a) fix the latency spread and sweep the mean; (b) fix the mean
/// and sweep the spread. Reports SSP and GeoTP throughput plus the
/// improvement factor.
pub fn fig10_latency_config(scale: Scale) -> Vec<Table> {
    let means: Vec<u64> = match scale {
        Scale::Quick => vec![20, 60],
        Scale::Full => vec![20, 40, 60, 80],
    };
    let mut fixed_std = Table::new(
        "Fig. 10a — fixed spread (±10 ms), sweeping the mean RTT",
        &[
            "mean_rtt_ms",
            "SSP (txn/s)",
            "GeoTP (txn/s)",
            "improvement (x)",
        ],
    );
    for mean in &means {
        let rtts = vec![0, mean.saturating_sub(10), *mean, mean + 10];
        let row = compare_row(scale, LatencyConfig::Static(rtts), &mean.to_string());
        fixed_std.push_row(row);
    }

    let spreads: Vec<u64> = match scale {
        Scale::Quick => vec![0, 40],
        Scale::Full => vec![0, 20, 40, 60],
    };
    let mut fixed_mean = Table::new(
        "Fig. 10b — fixed mean (60 ms), sweeping the spread",
        &[
            "spread_ms",
            "SSP (txn/s)",
            "GeoTP (txn/s)",
            "improvement (x)",
        ],
    );
    for spread in &spreads {
        let rtts = vec![0, 60 - spread.min(&60), 60, 60 + spread];
        let row = compare_row(scale, LatencyConfig::Static(rtts), &spread.to_string());
        fixed_mean.push_row(row);
    }
    vec![fixed_std, fixed_mean]
}

fn compare_row(scale: Scale, latency: LatencyConfig, label: &str) -> Vec<String> {
    let mut throughputs = Vec::new();
    for protocol in [Protocol::SspXa, Protocol::geotp()] {
        let mut spec = YcsbRunSpec::new(
            SystemUnderTest::Middleware(protocol),
            ycsb_default(scale, 0.2),
            scale.terminals(),
            scale.measure(),
        );
        spec.warmup = scale.warmup();
        spec.latency = latency.clone();
        throughputs.push(run_ycsb(&spec).throughput);
    }
    let improvement = if throughputs[0] > 0.0 {
        throughputs[1] / throughputs[0]
    } else {
        f64::INFINITY
    };
    vec![
        label.to_string(),
        tput(throughputs[0]),
        tput(throughputs[1]),
        format!("{improvement:.2}"),
    ]
}

/// Fig. 11: (a) random per-message latency fluctuation (up to 1.5x) across
/// several seeds; (b) a dynamic network whose latencies are re-drawn every
/// window over a long run, reported as a throughput timeline.
pub fn fig11_random_dynamic(scale: Scale) -> Vec<Table> {
    // ---- (a) random latency, several seeds, sweep of distributed ratio ----
    let mut random = Table::new(
        "Fig. 11a — random latency (1.0–1.5x), mean over seeds [min..max]",
        &["dist_ratio", "SSP (txn/s)", "GeoTP (txn/s)"],
    );
    for dr in scale.dist_ratios() {
        let mut cells = vec![format!("{dr:.1}")];
        for protocol in [Protocol::SspXa, Protocol::geotp()] {
            let mut samples = Vec::new();
            for seed in 0..scale.random_latency_seeds() {
                let mut spec = YcsbRunSpec::new(
                    SystemUnderTest::Middleware(protocol),
                    ycsb_default(scale, dr),
                    scale.terminals(),
                    scale.measure(),
                );
                spec.warmup = scale.warmup();
                spec.seed = 100 + seed;
                spec.latency = LatencyConfig::Random {
                    base_ms: geotp_net::PAPER_DEFAULT_RTTS_MS.to_vec(),
                    max_factor: 1.5,
                };
                samples.push(run_ycsb(&spec).throughput);
            }
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
            let max = samples.iter().copied().fold(0.0f64, f64::max);
            cells.push(format!("{mean:.1} [{min:.1}..{max:.1}]"));
        }
        random.push_row(cells);
    }

    // ---- (b) dynamic latency timeline ----
    let window = scale.dynamic_latency_window();
    let duration = scale.dynamic_latency_duration();
    let windows = (duration.as_secs() / window.as_secs()).max(1) as usize;
    // Deterministic pseudo-random schedule per node, re-drawn every window.
    let schedule_for = |node: usize| -> Vec<u64> {
        let base = geotp_net::PAPER_DEFAULT_RTTS_MS[node];
        (0..windows)
            .map(|w| {
                if base == 0 {
                    0
                } else {
                    // Alternate between shrinking and growing the latency.
                    let factor = [1.0, 1.5, 0.7, 1.2][(w + node) % 4];
                    (base as f64 * factor) as u64
                }
            })
            .collect()
    };
    let mut dynamic = Table::new(
        "Fig. 11b — throughput timeline under a dynamic network (tx/s per second)",
        &["window_start_s", "SSP", "GeoTP"],
    );
    let mut series = Vec::new();
    for protocol in [Protocol::SspXa, Protocol::geotp()] {
        let mut spec = YcsbRunSpec::new(
            SystemUnderTest::Middleware(protocol),
            ycsb_default(scale, 0.2),
            scale.terminals(),
            duration,
        );
        spec.warmup = std::time::Duration::ZERO;
        spec.background_monitor = true;
        spec.latency = LatencyConfig::Dynamic {
            window,
            per_node: (0..4).map(schedule_for).collect(),
        };
        series.push(run_ycsb(&spec).timeline_tps);
    }
    // Aggregate the per-second timeline into the re-draw windows.
    let per_window = window.as_secs() as usize;
    for w in 0..windows {
        let avg = |s: &Vec<f64>| {
            let slice: Vec<f64> = s
                .iter()
                .skip(w * per_window)
                .take(per_window)
                .copied()
                .collect();
            if slice.is_empty() {
                0.0
            } else {
                slice.iter().sum::<f64>() / slice.len() as f64
            }
        };
        dynamic.push_row(vec![
            (w as u64 * window.as_secs()).to_string(),
            tput(avg(&series[0])),
            tput(avg(&series[1])),
        ]);
    }
    vec![random, dynamic]
}
