//! Fig. 7 (YCSB, varying distributed-transaction ratio), Fig. 8 (latency
//! CDFs) and Fig. 9 (TPC-C, varying distributed-transaction ratio).

use geotp::Protocol;
use geotp_workloads::{Contention, TpccConfig, TpccTransaction, YcsbConfig};

use crate::report::{ms, pct, tput, Table};
use crate::runner::{run_tpcc, run_ycsb, SystemUnderTest, TpccRunSpec, YcsbRunSpec};
use crate::scale::Scale;

/// Fig. 7: throughput and average latency as the fraction of distributed
/// transactions grows, at the three contention levels, for SSP, QURO, Chiller
/// and GeoTP.
pub fn fig07_dist_ratio_ycsb(scale: Scale) -> Vec<Table> {
    let systems = SystemUnderTest::scheduling_set();
    let mut tables = Vec::new();
    for contention in [Contention::Low, Contention::Medium, Contention::High] {
        let mut headers: Vec<String> = vec!["dist_ratio".to_string()];
        for s in &systems {
            headers.push(format!("{} tput", s.name()));
            headers.push(format!("{} lat (ms)", s.name()));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(
            format!("Fig. 7 — YCSB {} contention", contention.name()),
            &header_refs,
        );
        for dr in scale.dist_ratios() {
            let mut row = vec![format!("{dr:.1}")];
            for system in &systems {
                let ycsb = YcsbConfig::new(4, scale.records_per_node())
                    .with_contention(contention)
                    .with_distributed_ratio(dr);
                let mut spec = YcsbRunSpec::new(*system, ycsb, scale.terminals(), scale.measure());
                spec.warmup = scale.warmup();
                let result = run_ycsb(&spec);
                row.push(tput(result.throughput));
                row.push(ms(result.mean_latency));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}

/// Fig. 8: latency distribution (percentile summary of the CDF) with 60%
/// distributed transactions, for SSP, SSP(local) and GeoTP at each contention
/// level.
pub fn fig08_latency_cdf(scale: Scale) -> Vec<Table> {
    let systems = [
        SystemUnderTest::Middleware(Protocol::SspXa),
        SystemUnderTest::Middleware(Protocol::SspLocal),
        SystemUnderTest::Middleware(Protocol::geotp()),
    ];
    let mut tables = Vec::new();
    for contention in [Contention::Low, Contention::Medium, Contention::High] {
        let mut table = Table::new(
            format!(
                "Fig. 8 — latency CDF summary, {} contention, 60% distributed",
                contention.name()
            ),
            &[
                "system",
                "p50 (ms)",
                "p90 (ms)",
                "p95 (ms)",
                "p99 (ms)",
                "p99.9 (ms)",
                "abort rate",
            ],
        );
        for system in systems {
            let ycsb = YcsbConfig::new(4, scale.records_per_node())
                .with_contention(contention)
                .with_distributed_ratio(0.6);
            let mut spec = YcsbRunSpec::new(system, ycsb, scale.terminals(), scale.measure());
            spec.warmup = scale.warmup();
            let result = run_ycsb(&spec);
            let at = |frac: f64| {
                result
                    .cdf
                    .iter()
                    .find(|(_, f)| *f >= frac)
                    .map(|(d, _)| *d)
                    .unwrap_or(result.p999)
            };
            table.push_row(vec![
                result.label.clone(),
                ms(at(0.50)),
                ms(at(0.90)),
                ms(at(0.95)),
                ms(result.p99),
                ms(result.p999),
                pct(result.abort_rate),
            ]);
        }
        tables.push(table);
    }
    tables
}

/// Fig. 9: TPC-C Payment (a) and NewOrder (b) throughput and latency as the
/// distributed-transaction ratio grows.
pub fn fig09_dist_ratio_tpcc(scale: Scale) -> Vec<Table> {
    let systems = SystemUnderTest::scheduling_set();
    let mut tables = Vec::new();
    for profile in [TpccTransaction::Payment, TpccTransaction::NewOrder] {
        let mut headers: Vec<String> = vec!["dist_ratio".to_string()];
        for s in &systems {
            headers.push(format!("{} tput", s.name()));
            headers.push(format!("{} lat (ms)", s.name()));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(format!("Fig. 9 — TPC-C {}", profile.name()), &header_refs);
        for dr in scale.dist_ratios() {
            let mut row = vec![format!("{dr:.1}")];
            for system in &systems {
                let tpcc = TpccConfig::new(4, scale.warehouses_per_node())
                    .with_only(profile)
                    .with_distributed_ratio(dr);
                let mut spec = TpccRunSpec::new(*system, tpcc, scale.terminals(), scale.measure());
                spec.warmup = scale.warmup();
                let result = run_tpcc(&spec);
                row.push(tput(result.throughput));
                row.push(ms(result.mean_latency));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}
