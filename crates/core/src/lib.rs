//! # geotp — latency-aware geo-distributed transaction processing
//!
//! This is the public facade of the GeoTP reproduction
//! ("GeoTP: Latency-aware Geo-Distributed Transaction Processing in Database
//! Middlewares", ICDE 2025). It re-exports the component crates and provides
//! [`ClusterBuilder`], a one-stop way to assemble a simulated geo-distributed
//! deployment: a WAN latency matrix, data sources with their geo-agents, and
//! one or more middleware instances running any of the evaluated protocols
//! (GeoTP, SSP, SSP(local), QURO, Chiller).
//!
//! ```
//! use geotp::prelude::*;
//! use std::time::Duration;
//!
//! let mut rt = geotp::runtime();
//! rt.block_on(async {
//!     // Two data sources: one local (10 ms RTT), one remote (100 ms RTT).
//!     let cluster = ClusterBuilder::new()
//!         .data_source(10, Dialect::Postgres)
//!         .data_source(100, Dialect::MySql)
//!         .records_per_node(1_000)
//!         .protocol(Protocol::geotp())
//!         .build();
//!     cluster.load_uniform(1_000, 10_000);
//!
//!     // Connect a client session and transfer 100 units between accounts
//!     // on different continents, one statement round at a time. The
//!     // `/*+ last */` round (`execute_last`) triggers GeoTP's
//!     // decentralized prepare as soon as it finishes.
//!     let mut session = cluster.connect(1);
//!     let mut txn = session.begin().await.unwrap();
//!     txn.execute(&[ClientOp::add(GlobalKey::new(geotp::USERTABLE, 1), -100)])
//!         .await
//!         .unwrap();
//!     txn.execute_last(&[ClientOp::add(GlobalKey::new(geotp::USERTABLE, 1_001), 100)])
//!         .await
//!         .unwrap();
//!     let outcome = txn.commit().await;
//!     assert!(outcome.committed);
//!     // Decentralized prepare + latency-aware scheduling: two WAN round
//!     // trips (~200 ms) instead of the three (~300 ms) a classic XA
//!     // middleware needs.
//!     assert!(outcome.latency < Duration::from_millis(220));
//!
//!     // Whole scripts still replay through the same live path.
//!     let spec = TransactionSpec::single_round(vec![
//!         ClientOp::add(GlobalKey::new(geotp::USERTABLE, 1), -100),
//!         ClientOp::add(GlobalKey::new(geotp::USERTABLE, 1_001), 100),
//!     ]);
//!     assert!(session.run_spec(&spec).await.committed);
//! });
//! ```

use std::rc::Rc;
use std::time::Duration;

pub use geotp_chaos as chaos;
pub use geotp_cluster as cluster;
pub use geotp_datasource as datasource;
pub use geotp_distdb as distdb;
pub use geotp_middleware as middleware;
pub use geotp_net as net;
pub use geotp_scalardb as scalardb;
pub use geotp_simrt as simrt;
pub use geotp_storage as storage;
pub use geotp_telemetry as telemetry;
pub use geotp_workloads as workloads;

pub use geotp_chaos::{
    shrink_schedule, shrink_workload, ChaosConfig, ChaosReport, ChaosWorkload, ClusterChaosConfig,
    ClusterScenario, DrillWorkload, FaultEvent, FaultSchedule, FlashCrowdConfig,
    InteractiveTransferWorkload, InvariantReport, Scenario, ShrinkReport, TpccChaosWorkload,
    TransferWorkload, WorkloadShrinkReport,
};
pub use geotp_cluster::{
    run_open_loop, AdmissionPolicy, ClusterConfig, ClusterSessionService, CoordinatorCluster,
    CoordinatorLoad, MembershipConfig, MembershipTable, OpenLoopConfig, OpenLoopReport,
    SessionReaperConfig, SessionRouter, TierLayout,
};
pub use geotp_datasource::{DataSource, DataSourceConfig, Dialect, DsConnection};
pub use geotp_middleware::{
    ClientOp, GlobalKey, Middleware, MiddlewareConfig, MiddlewareSessionService, Partitioner,
    Protocol, RetriedOutcome, RetryPolicy, RoundResult, Session, SessionService, TransactionSpec,
    Txn, TxnError, TxnOutcome,
};
pub use geotp_net::{LatencyModel, Network, NetworkBuilder, NodeId, StaticLatency};
pub use geotp_simrt::Runtime;
pub use geotp_storage::{EngineConfig, Row, TableId};
pub use geotp_workloads::ycsb::USERTABLE;
pub use geotp_workloads::{run_session_benchmark, SessionDriverConfig};

/// Commonly used items for building and driving a cluster.
pub mod prelude {
    pub use crate::{Cluster, ClusterBuilder};
    pub use geotp_datasource::Dialect;
    pub use geotp_middleware::{
        ClientOp, GlobalKey, Middleware, Partitioner, Protocol, RoundResult, Session,
        SessionService, TransactionSpec, Txn, TxnError, TxnOutcome,
    };
    pub use geotp_net::NodeId;
    pub use geotp_storage::Row;
    pub use geotp_workloads::driver::{run_benchmark, run_session_benchmark};
    pub use geotp_workloads::{
        Contention, DriverConfig, SessionDriverConfig, TpccConfig, TpccGenerator, WorkloadMix,
        YcsbConfig, YcsbGenerator,
    };
}

/// Create a fresh simulated-time runtime (convenience re-export).
pub fn runtime() -> Runtime {
    Runtime::new()
}

struct DataSourceSpec {
    rtt_ms: u64,
    dialect: Dialect,
}

/// Builds a complete simulated geo-distributed deployment.
pub struct ClusterBuilder {
    seed: u64,
    sources: Vec<DataSourceSpec>,
    protocol: Protocol,
    records_per_node: u64,
    engine: EngineConfig,
    analysis_cost: Duration,
    log_flush_cost: Duration,
    agent_lan_rtt: Duration,
    partitioner: Option<Partitioner>,
    background_monitor: bool,
    extra_middlewares: Vec<Vec<u64>>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// Start building a cluster.
    pub fn new() -> Self {
        Self {
            seed: 42,
            sources: Vec::new(),
            protocol: Protocol::geotp(),
            records_per_node: 1_000,
            engine: EngineConfig::default(),
            analysis_cost: Duration::from_millis(1),
            log_flush_cost: Duration::from_micros(500),
            agent_lan_rtt: Duration::from_micros(500),
            partitioner: None,
            background_monitor: false,
            extra_middlewares: Vec::new(),
        }
    }

    /// Seed for all randomized behaviour (network jitter, admission lottery).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Add a data source with the given RTT (in milliseconds) from the
    /// (first) middleware and the given SQL dialect.
    pub fn data_source(mut self, rtt_ms: u64, dialect: Dialect) -> Self {
        self.sources.push(DataSourceSpec { rtt_ms, dialect });
        self
    }

    /// Add the paper's default deployment: four data sources at
    /// 0 / 27 / 73 / 251 ms RTT, all MySQL.
    pub fn paper_default_sources(mut self) -> Self {
        for rtt in geotp_net::PAPER_DEFAULT_RTTS_MS {
            self = self.data_source(rtt, Dialect::MySql);
        }
        self
    }

    /// Select the commit protocol / optimization set.
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Records per data node used by the default range partitioner and by
    /// [`Cluster::load_uniform`].
    pub fn records_per_node(mut self, records: u64) -> Self {
        self.records_per_node = records;
        self
    }

    /// Storage-engine configuration applied to every data source.
    pub fn engine_config(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Middleware analysis cost per transaction (parse/route/schedule).
    pub fn analysis_cost(mut self, cost: Duration) -> Self {
        self.analysis_cost = cost;
        self
    }

    /// Commit-log flush cost.
    pub fn log_flush_cost(mut self, cost: Duration) -> Self {
        self.log_flush_cost = cost;
        self
    }

    /// LAN RTT between each geo-agent and its co-located database.
    pub fn agent_lan_rtt(mut self, rtt: Duration) -> Self {
        self.agent_lan_rtt = rtt;
        self
    }

    /// Override the partitioner (defaults to range partitioning with
    /// `records_per_node` rows per data source).
    pub fn partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = Some(partitioner);
        self
    }

    /// Spawn the background RTT-monitor ping tasks (needed for the dynamic
    /// network experiments; off by default to keep unit tests quiet).
    pub fn background_monitor(mut self, enabled: bool) -> Self {
        self.background_monitor = enabled;
        self
    }

    /// Add an additional middleware (multi-region deployment, Fig. 15) with
    /// its own RTT vector towards the same data sources.
    pub fn extra_middleware(mut self, rtts_ms: Vec<u64>) -> Self {
        self.extra_middlewares.push(rtts_ms);
        self
    }

    /// Assemble the cluster.
    pub fn build(self) -> Cluster {
        assert!(
            !self.sources.is_empty(),
            "a cluster needs at least one data source"
        );
        let n = self.sources.len() as u32;
        let dm0 = NodeId::middleware(0);

        // Wire the latency matrix: DM↔DS links as configured, DS↔DS links as
        // the maximum of the two endpoints' DM RTTs (geo-agents of distant
        // regions are roughly as far from each other as from the middleware).
        let mut net_builder =
            NetworkBuilder::new(self.seed).default_lan_rtt(Duration::from_micros(500));
        for (i, spec) in self.sources.iter().enumerate() {
            net_builder = net_builder.static_link(
                dm0,
                NodeId::data_source(i as u32),
                Duration::from_millis(spec.rtt_ms),
            );
        }
        for i in 0..self.sources.len() {
            for j in (i + 1)..self.sources.len() {
                let rtt = self.sources[i].rtt_ms.max(self.sources[j].rtt_ms);
                net_builder = net_builder.static_link(
                    NodeId::data_source(i as u32),
                    NodeId::data_source(j as u32),
                    Duration::from_millis(rtt),
                );
            }
        }
        for (m, rtts) in self.extra_middlewares.iter().enumerate() {
            let dm = NodeId::middleware(m as u32 + 1);
            for (i, rtt) in rtts.iter().enumerate() {
                net_builder = net_builder.static_link(
                    dm,
                    NodeId::data_source(i as u32),
                    Duration::from_millis(*rtt),
                );
            }
        }
        let net = net_builder.build();

        // Data sources + geo-agents.
        let mut sources = Vec::new();
        for (i, spec) in self.sources.iter().enumerate() {
            let mut cfg = DataSourceConfig::new(NodeId::data_source(i as u32));
            cfg.dialect = spec.dialect;
            cfg.engine = self.engine;
            cfg.agent_lan_rtt = self.agent_lan_rtt;
            sources.push(DataSource::new(cfg, Rc::clone(&net)));
        }
        for a in &sources {
            for b in &sources {
                if a.index() != b.index() {
                    a.register_peer(b);
                }
            }
        }

        let partitioner = self.partitioner.unwrap_or(Partitioner::Range {
            rows_per_node: self.records_per_node,
            nodes: n,
        });

        // Middlewares.
        let mut middlewares = Vec::new();
        for m in 0..=self.extra_middlewares.len() {
            let node = NodeId::middleware(m as u32);
            let mut cfg = MiddlewareConfig::new(node, self.protocol, partitioner);
            cfg.analysis_cost = self.analysis_cost;
            cfg.log_flush_cost = self.log_flush_cost;
            cfg.background_monitor = self.background_monitor;
            cfg.scheduler.seed = self.seed.wrapping_add(m as u64);
            middlewares.push(Middleware::connect(cfg, Rc::clone(&net), &sources, None));
        }

        Cluster {
            net,
            sources,
            middlewares,
            partitioner,
            analysis_cost: self.analysis_cost,
        }
    }
}

/// A fully wired simulated deployment.
pub struct Cluster {
    net: Rc<Network>,
    sources: Vec<Rc<DataSource>>,
    middlewares: Vec<Rc<Middleware>>,
    partitioner: Partitioner,
    analysis_cost: Duration,
}

impl Cluster {
    /// The simulated network.
    pub fn network(&self) -> &Rc<Network> {
        &self.net
    }

    /// The data sources, indexed by their data-source id.
    pub fn data_sources(&self) -> &[Rc<DataSource>] {
        &self.sources
    }

    /// The primary middleware.
    pub fn middleware(&self) -> &Rc<Middleware> {
        &self.middlewares[0]
    }

    /// Connect a client session to the primary middleware (the session-first
    /// front door; co-located client, so statement rounds pay no extra hops).
    pub fn connect(&self, session_id: u64) -> Session {
        SessionService::connect(&self.middlewares[0], session_id)
    }

    /// Connect a client session placed at `client`: every statement round
    /// pays the client↔middleware round trip, which lands in
    /// [`geotp_middleware::LatencyBreakdown::client_rtt`].
    pub fn connect_from(&self, client: NodeId, session_id: u64) -> Session {
        self.middlewares[0]
            .session_service_from(client)
            .connect(session_id)
    }

    /// All middlewares (more than one in multi-region deployments).
    pub fn middlewares(&self) -> &[Rc<Middleware>] {
        &self.middlewares
    }

    /// The partitioner used by the middlewares.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// The middleware analysis cost configured at build time.
    pub fn analysis_cost(&self) -> Duration {
        self.analysis_cost
    }

    /// Populate the cluster with `records_per_node × nodes` rows of the YCSB
    /// usertable, each holding the integer `initial_value`.
    ///
    /// Every key is placed on the data source `self.partitioner` routes it
    /// to, so lookups through the same partitioner (the middleware's router,
    /// [`Cluster::sum_records`]) always find the loaded rows. The previous
    /// implementation computed a per-node base offset of
    /// `records_per_node.max(configured)`, which diverged from the range
    /// partitioner's routing whenever the argument exceeded the configured
    /// `records_per_node` — rows were loaded onto nodes that would never be
    /// asked for them.
    pub fn load_uniform(&self, records_per_node: u64, initial_value: i64) {
        let total = records_per_node * self.sources.len() as u64;
        for row in 0..total {
            let key = GlobalKey::new(USERTABLE, row);
            let ds = self.partitioner.route(key) as usize;
            self.sources[ds].load(key.storage_key(), Row::int(initial_value));
        }
    }

    /// Sum a set of records across the cluster (verification helper: a set of
    /// balance-transfer transactions must conserve this sum).
    pub fn sum_records(&self, keys: impl IntoIterator<Item = GlobalKey>) -> i64 {
        keys.into_iter()
            .map(|k| {
                let ds = self.partitioner.route(k) as usize;
                self.sources[ds]
                    .engine()
                    .peek(k.storage_key())
                    .and_then(|r| r.int_value())
                    .unwrap_or(0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_paper_default_deployment() {
        let mut rt = runtime();
        rt.block_on(async {
            let cluster = ClusterBuilder::new()
                .paper_default_sources()
                .records_per_node(100)
                .protocol(Protocol::geotp())
                .build();
            assert_eq!(cluster.data_sources().len(), 4);
            assert_eq!(
                cluster
                    .network()
                    .nominal_rtt(NodeId::middleware(0), NodeId::data_source(3)),
                Duration::from_millis(251)
            );
            assert_eq!(
                cluster
                    .network()
                    .nominal_rtt(NodeId::data_source(1), NodeId::data_source(3)),
                Duration::from_millis(251),
                "inter-data-source latency follows the farther endpoint"
            );
        });
    }

    #[test]
    fn load_and_transfer_preserves_total_balance() {
        let mut rt = runtime();
        rt.block_on(async {
            let cluster = ClusterBuilder::new()
                .data_source(10, Dialect::Postgres)
                .data_source(100, Dialect::MySql)
                .records_per_node(500)
                .protocol(Protocol::geotp())
                .build();
            cluster.load_uniform(500, 1_000);
            let keys = [GlobalKey::new(USERTABLE, 3), GlobalKey::new(USERTABLE, 503)];
            let before = cluster.sum_records(keys);
            let spec = TransactionSpec::single_round(vec![
                ClientOp::add(keys[0], -250),
                ClientOp::add(keys[1], 250),
            ]);
            assert!(cluster.middleware().run_transaction(&spec).await.committed);
            assert_eq!(cluster.sum_records(keys), before);
        });
    }

    #[test]
    fn load_uniform_routes_through_the_partitioner() {
        let mut rt = runtime();
        rt.block_on(async {
            // Regression test: loading *more* rows per node than the
            // configured `records_per_node` used to compute key bases from
            // `max(configured, requested)`, placing rows on nodes the range
            // partitioner would never route a lookup to.
            let cluster = ClusterBuilder::new()
                .data_source(10, Dialect::MySql)
                .data_source(100, Dialect::MySql)
                .records_per_node(100)
                .build();
            cluster.load_uniform(250, 7);
            let partitioner = cluster.partitioner();
            for row in 0..500u64 {
                let key = GlobalKey::new(USERTABLE, row);
                let ds = partitioner.route(key) as usize;
                assert_eq!(
                    cluster.data_sources()[ds]
                        .engine()
                        .peek(key.storage_key())
                        .and_then(|r| r.int_value()),
                    Some(7),
                    "row {row} must live on the node the partitioner routes it to"
                );
            }
            // And the sum helper (which reads through the partitioner) sees
            // every loaded row.
            assert_eq!(
                cluster.sum_records((0..500).map(|r| GlobalKey::new(USERTABLE, r))),
                500 * 7
            );
        });
    }

    #[test]
    fn load_uniform_respects_custom_partitioners() {
        let mut rt = runtime();
        rt.block_on(async {
            let cluster = ClusterBuilder::new()
                .data_source(10, Dialect::MySql)
                .data_source(100, Dialect::MySql)
                .records_per_node(100)
                .partitioner(Partitioner::Hash { nodes: 2 })
                .build();
            cluster.load_uniform(100, 1);
            assert_eq!(
                cluster.sum_records((0..200).map(|r| GlobalKey::new(USERTABLE, r))),
                200
            );
            // Hash partitioning interleaves: each node holds every other row.
            assert_eq!(cluster.data_sources()[0].engine().record_count(), 100);
            assert_eq!(cluster.data_sources()[1].engine().record_count(), 100);
        });
    }

    #[test]
    fn multi_middleware_deployment_has_independent_coordinators() {
        let mut rt = runtime();
        rt.block_on(async {
            let cluster = ClusterBuilder::new()
                .paper_default_sources()
                .records_per_node(100)
                .extra_middleware(geotp_net::PAPER_DM2_RTTS_MS.to_vec())
                .build();
            cluster.load_uniform(100, 0);
            assert_eq!(cluster.middlewares().len(), 2);
            assert_eq!(
                cluster
                    .network()
                    .nominal_rtt(NodeId::middleware(1), NodeId::data_source(0)),
                Duration::from_millis(251)
            );
            // Both middlewares can commit transactions against the same data.
            let spec =
                TransactionSpec::single_round(vec![ClientOp::add(GlobalKey::new(USERTABLE, 1), 1)]);
            for mw in cluster.middlewares() {
                assert!(mw.run_transaction(&spec).await.committed);
            }
            assert_eq!(
                cluster.sum_records([GlobalKey::new(USERTABLE, 1)]),
                2,
                "updates from both middlewares applied"
            );
        });
    }
}
