//! Data partitioning: mapping global keys to data sources.
//!
//! The paper's YCSB deployment partitions the `usertable` with one million
//! records per data node (range partitioning); TPC-C partitions by warehouse.
//! The router tells the middleware's rewriter which data source owns each key
//! so a client transaction can be split into per-data-source subtransactions.

use crate::ops::{ClientOp, GlobalKey};

/// Partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Range partitioning: rows `[i*rows_per_node, (i+1)*rows_per_node)` live
    /// on data source `i` (YCSB's layout).
    Range {
        /// Rows per data source.
        rows_per_node: u64,
        /// Number of data sources.
        nodes: u32,
    },
    /// Hash partitioning: `row % nodes`.
    Hash {
        /// Number of data sources.
        nodes: u32,
    },
    /// Partition by a warehouse id encoded in the upper 32 bits of the row key
    /// (TPC-C's layout; see `geotp-workloads::tpcc` for the encoding).
    ByWarehouse {
        /// Warehouses hosted per data source.
        warehouses_per_node: u32,
        /// Number of data sources.
        nodes: u32,
    },
}

impl Partitioner {
    /// Number of data sources this partitioner spreads data over.
    pub fn nodes(&self) -> u32 {
        match self {
            Partitioner::Range { nodes, .. }
            | Partitioner::Hash { nodes }
            | Partitioner::ByWarehouse { nodes, .. } => *nodes,
        }
    }

    /// The data-source index owning `key`.
    pub fn route(&self, key: GlobalKey) -> u32 {
        match self {
            Partitioner::Range {
                rows_per_node,
                nodes,
            } => ((key.row / rows_per_node) as u32).min(nodes.saturating_sub(1)),
            Partitioner::Hash { nodes } => (key.row % *nodes as u64) as u32,
            Partitioner::ByWarehouse {
                warehouses_per_node,
                nodes,
            } => {
                let warehouse = (key.row >> 32) as u32;
                // Warehouse ids are 1-based in TPC-C.
                let idx = warehouse.saturating_sub(1) / warehouses_per_node;
                idx.min(nodes.saturating_sub(1))
            }
        }
    }

    /// Split a batch of operations into per-data-source groups, preserving
    /// operation order within each group. Returns `(ds_index, ops)` pairs
    /// sorted by data-source index.
    pub fn split<'a>(&self, ops: &'a [ClientOp]) -> Vec<(u32, Vec<&'a ClientOp>)> {
        let mut groups: Vec<(u32, Vec<&ClientOp>)> = Vec::new();
        for op in ops {
            let ds = self.route(op.key());
            match groups.iter_mut().find(|(idx, _)| *idx == ds) {
                Some((_, list)) => list.push(op),
                None => groups.push((ds, vec![op])),
            }
        }
        groups.sort_by_key(|(idx, _)| *idx);
        groups
    }

    /// The distinct data sources a set of keys touches.
    pub fn involved_nodes(&self, keys: &[GlobalKey]) -> Vec<u32> {
        let mut nodes = Vec::new();
        self.involved_nodes_into(keys, &mut nodes);
        nodes
    }

    /// Collect the distinct data sources touched by `keys` into a reusable
    /// buffer (cleared first).
    pub fn involved_nodes_into(&self, keys: &[GlobalKey], buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(keys.iter().map(|k| self.route(*k)));
        buf.sort_unstable();
        buf.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_storage::TableId;

    fn gk(row: u64) -> GlobalKey {
        GlobalKey::new(TableId(0), row)
    }

    #[test]
    fn range_routing_matches_ycsb_layout() {
        let p = Partitioner::Range {
            rows_per_node: 1_000_000,
            nodes: 4,
        };
        assert_eq!(p.route(gk(0)), 0);
        assert_eq!(p.route(gk(999_999)), 0);
        assert_eq!(p.route(gk(1_000_000)), 1);
        assert_eq!(p.route(gk(3_999_999)), 3);
        // Out-of-range rows clamp to the last node.
        assert_eq!(p.route(gk(10_000_000)), 3);
        assert_eq!(p.nodes(), 4);
    }

    #[test]
    fn hash_routing() {
        let p = Partitioner::Hash { nodes: 3 };
        assert_eq!(p.route(gk(0)), 0);
        assert_eq!(p.route(gk(4)), 1);
        assert_eq!(p.route(gk(5)), 2);
    }

    #[test]
    fn warehouse_routing_uses_upper_bits() {
        let p = Partitioner::ByWarehouse {
            warehouses_per_node: 16,
            nodes: 4,
        };
        let wh_key = |w: u64, rest: u64| gk((w << 32) | rest);
        assert_eq!(p.route(wh_key(1, 5)), 0);
        assert_eq!(p.route(wh_key(16, 0)), 0);
        assert_eq!(p.route(wh_key(17, 0)), 1);
        assert_eq!(p.route(wh_key(64, 123)), 3);
    }

    #[test]
    fn split_groups_by_data_source_preserving_order() {
        let p = Partitioner::Range {
            rows_per_node: 10,
            nodes: 2,
        };
        let ops = vec![
            ClientOp::add(gk(1), 1),
            ClientOp::add(gk(11), 2),
            ClientOp::Read(gk(2)),
            ClientOp::Read(gk(12)),
        ];
        let groups = p.split(&ops);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 0);
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[0].1[0].key(), gk(1));
        assert_eq!(groups[0].1[1].key(), gk(2));
        assert_eq!(groups[1].0, 1);
        assert_eq!(groups[1].1[0].key(), gk(11));
    }

    #[test]
    fn involved_nodes_deduplicates() {
        let p = Partitioner::Hash { nodes: 4 };
        let nodes = p.involved_nodes(&[gk(0), gk(4), gk(1), gk(9)]);
        assert_eq!(nodes, vec![0, 1]);
    }
}
