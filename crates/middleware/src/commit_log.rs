//! The middleware's commit/abort decision log.
//!
//! Algorithm 1 flushes a commit/abort record before dispatching the decision
//! so that a crashed middleware can finish in-doubt transactions after a
//! restart (§V-A). The log is the only durable state of the otherwise
//! stateless middleware; in the simulation it is an in-memory structure that
//! survives a simulated middleware crash (it models a local disk or a
//! replicated log service).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use geotp_simrt::sleep;

/// The durable decision for a global transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// All participants voted yes; the transaction commits.
    Commit,
    /// The transaction aborts.
    Abort,
}

/// A flush was rejected because the writer's epoch is below the log's fence
/// (the coordinator was declared dead and a peer sealed its log before
/// adopting the in-doubt branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fenced {
    /// The epoch the rejected writer presented.
    pub writer_epoch: u64,
    /// The minimum epoch the log currently accepts.
    pub min_epoch: u64,
}

/// The durable commit/abort log.
pub struct CommitLog {
    entries: RefCell<HashMap<u64, Decision>>,
    flush_cost: Duration,
    flushes: RefCell<u64>,
    /// Writers below this epoch are rejected. The fence is the linchpin of
    /// peer takeover: a surviving coordinator seals the dead peer's log
    /// *before* reading its decisions, so a split-brained peer cannot slip a
    /// new decision in after the survivor has already resolved the in-doubt
    /// branches (the BookKeeper "fence the ledger, then read it" discipline).
    min_epoch: Cell<u64>,
}

impl CommitLog {
    /// Create a log whose flush costs `flush_cost` of virtual time.
    pub fn new(flush_cost: Duration) -> Rc<Self> {
        Rc::new(Self {
            entries: RefCell::new(HashMap::new()),
            flush_cost,
            flushes: RefCell::new(0),
            min_epoch: Cell::new(0),
        })
    }

    /// Record and flush the decision for `gtrid`. The await models the fsync
    /// (or quorum write) the paper's `FlushLog` performs.
    ///
    /// This is the single-coordinator path: it writes unconditionally (epoch
    /// `u64::MAX`, above any fence). Cluster deployments go through
    /// [`CommitLog::try_flush_decision`] so a fenced coordinator cannot decide.
    pub async fn flush_decision(&self, gtrid: u64, decision: Decision) {
        self.try_flush_decision(gtrid, decision, u64::MAX)
            .await
            .expect("u64::MAX is above any fence");
    }

    /// Epoch-checked flush: rejected (without writing or paying the flush
    /// cost) when `epoch` is below the log's fence.
    pub async fn try_flush_decision(
        &self,
        gtrid: u64,
        decision: Decision,
        epoch: u64,
    ) -> Result<(), Fenced> {
        let min_epoch = self.min_epoch.get();
        if epoch < min_epoch {
            return Err(Fenced {
                writer_epoch: epoch,
                min_epoch,
            });
        }
        self.entries.borrow_mut().insert(gtrid, decision);
        *self.flushes.borrow_mut() += 1;
        if !self.flush_cost.is_zero() {
            sleep(self.flush_cost).await;
        }
        Ok(())
    }

    /// Seal the log against writers below `min_epoch`. Raising only — a
    /// second fence at a lower epoch cannot reopen the log.
    pub fn fence(&self, min_epoch: u64) {
        if min_epoch > self.min_epoch.get() {
            self.min_epoch.set(min_epoch);
        }
    }

    /// The minimum writer epoch the log currently accepts.
    pub fn min_epoch(&self) -> u64 {
        self.min_epoch.get()
    }

    /// Look up the durable decision for a transaction, if any.
    pub fn decision(&self, gtrid: u64) -> Option<Decision> {
        self.entries.borrow().get(&gtrid).copied()
    }

    /// Number of decisions recorded.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of flush operations performed.
    pub fn flush_count(&self) -> u64 {
        *self.flushes.borrow()
    }

    /// Drop entries for completed transactions (checkpointing); retains the
    /// given set of still-in-flight transactions.
    pub fn truncate_except(&self, keep: &[u64]) {
        self.entries.borrow_mut().retain(|g, _| keep.contains(g));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_simrt::Runtime;

    #[test]
    fn decisions_are_durable_and_flushes_counted() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let log = CommitLog::new(Duration::from_millis(1));
            assert!(log.is_empty());
            log.flush_decision(1, Decision::Commit).await;
            log.flush_decision(2, Decision::Abort).await;
            assert_eq!(log.decision(1), Some(Decision::Commit));
            assert_eq!(log.decision(2), Some(Decision::Abort));
            assert_eq!(log.decision(3), None);
            assert_eq!(log.len(), 2);
            assert_eq!(log.flush_count(), 2);
        });
        // Two 1ms flushes => 2ms of virtual time.
        assert_eq!(rt.now_micros(), 2_000);
    }

    #[test]
    fn fenced_writers_cannot_flush() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let log = CommitLog::new(Duration::from_millis(1));
            log.try_flush_decision(1, Decision::Commit, 3)
                .await
                .unwrap();
            log.fence(4);
            assert_eq!(log.min_epoch(), 4);
            // The old epoch is sealed out; nothing is written, nothing flushed.
            let err = log.try_flush_decision(2, Decision::Commit, 3).await;
            assert_eq!(
                err,
                Err(Fenced {
                    writer_epoch: 3,
                    min_epoch: 4
                })
            );
            assert_eq!(log.decision(2), None);
            assert_eq!(log.flush_count(), 1);
            // A successor at the fencing epoch writes fine.
            log.try_flush_decision(2, Decision::Abort, 4).await.unwrap();
            assert_eq!(log.decision(2), Some(Decision::Abort));
            // Fences only ratchet upward.
            log.fence(2);
            assert_eq!(log.min_epoch(), 4);
            // The legacy unfenced path is unaffected (single-coordinator).
            log.flush_decision(3, Decision::Commit).await;
            assert_eq!(log.decision(3), Some(Decision::Commit));
        });
    }

    #[test]
    fn truncate_keeps_only_in_flight_entries() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let log = CommitLog::new(Duration::ZERO);
            for g in 0..10 {
                log.flush_decision(g, Decision::Commit).await;
            }
            log.truncate_except(&[7, 9]);
            assert_eq!(log.len(), 2);
            assert_eq!(log.decision(7), Some(Decision::Commit));
            assert_eq!(log.decision(0), None);
        });
    }
}
