//! Routing of asynchronous geo-agent notifications to waiting coordinators.
//!
//! Geo-agents push [`AgentNotification`]s (prepare votes, rollback
//! confirmations) to the middleware over a single mailbox; the hub dispatches
//! them to the per-transaction state the coordinator is awaiting on.

use geotp_simrt::hash::FxHashMap;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use geotp_datasource::{AgentNotification, PrepareVote};
use geotp_simrt::spawn;
use geotp_simrt::sync::{mpsc, Notify};

/// Per-transaction notification state.
#[derive(Default)]
struct TxnState {
    votes: HashMap<u32, PrepareVote>,
    rollbacked: Vec<u32>,
    notify: Rc<Notify>,
}

/// The notification hub. One per middleware instance.
pub struct NotifyHub {
    txns: Rc<RefCell<FxHashMap<u64, TxnState>>>,
    sender: mpsc::Sender<AgentNotification>,
}

impl NotifyHub {
    /// Create the hub and spawn its dispatcher task. The returned sender is
    /// what gets registered with every geo-agent.
    pub fn start() -> Rc<Self> {
        let (tx, mut rx) = mpsc::unbounded::<AgentNotification>();
        let txns: Rc<RefCell<FxHashMap<u64, TxnState>>> =
            Rc::new(RefCell::new(FxHashMap::default()));
        let txns_bg = Rc::clone(&txns);
        spawn(async move {
            while let Some(notification) = rx.recv().await {
                let gtrid = notification.xid().gtrid;
                let mut map = txns_bg.borrow_mut();
                // Notifications for transactions that have already completed
                // (e.g. a late Idle vote for a committed centralized
                // transaction) are dropped rather than resurrecting state.
                let Some(state) = map.get_mut(&gtrid) else {
                    continue;
                };
                match notification {
                    AgentNotification::PrepareResult { xid, vote } => {
                        state.votes.insert(xid.bqual, vote);
                    }
                    AgentNotification::Rollbacked { xid } => {
                        if !state.rollbacked.contains(&xid.bqual) {
                            state.rollbacked.push(xid.bqual);
                        }
                    }
                }
                let notify = Rc::clone(&state.notify);
                drop(map);
                notify.notify_waiters();
            }
        });
        Rc::new(Self { txns, sender: tx })
    }

    /// The mailbox sender to register with geo-agents.
    pub fn sender(&self) -> mpsc::Sender<AgentNotification> {
        self.sender.clone()
    }

    /// Register a transaction before dispatching its branches, so that early
    /// notifications are not lost.
    pub fn register(&self, gtrid: u64) {
        self.txns.borrow_mut().entry(gtrid).or_default();
    }

    /// Remove a transaction's state once it has completed.
    pub fn unregister(&self, gtrid: u64) {
        self.txns.borrow_mut().remove(&gtrid);
    }

    /// Record a vote locally (used when the vote arrives synchronously, e.g.
    /// from an explicit prepare round trip).
    pub fn record_vote(&self, gtrid: u64, branch: u32, vote: PrepareVote) {
        let notify = {
            let mut map = self.txns.borrow_mut();
            let state = map.entry(gtrid).or_default();
            state.votes.insert(branch, vote);
            Rc::clone(&state.notify)
        };
        notify.notify_waiters();
    }

    /// Current votes for a transaction.
    pub fn votes(&self, gtrid: u64) -> HashMap<u32, PrepareVote> {
        self.txns
            .borrow()
            .get(&gtrid)
            .map(|s| s.votes.clone())
            .unwrap_or_default()
    }

    /// Branches that have confirmed rollback for a transaction.
    pub fn rollbacked(&self, gtrid: u64) -> Vec<u32> {
        self.txns
            .borrow()
            .get(&gtrid)
            .map(|s| s.rollbacked.clone())
            .unwrap_or_default()
    }

    /// Wait until all `branches` have reported a prepare vote (or a rollback,
    /// which counts as an implicit no-vote). Returns the votes.
    pub async fn wait_for_votes(&self, gtrid: u64, branches: &[u32]) -> HashMap<u32, PrepareVote> {
        loop {
            let (done, notify) = {
                let map = self.txns.borrow();
                let Some(state) = map.get(&gtrid) else {
                    return HashMap::new();
                };
                let done = branches
                    .iter()
                    .all(|b| state.votes.contains_key(b) || state.rollbacked.contains(b));
                (done, Rc::clone(&state.notify))
            };
            if done {
                let map = self.txns.borrow();
                let state = map.get(&gtrid).expect("state present");
                let mut votes = state.votes.clone();
                for b in &state.rollbacked {
                    votes.entry(*b).or_insert(PrepareVote::RollbackOnly);
                }
                return votes;
            }
            notify.notified().await;
        }
    }

    /// Wait until all `branches` have confirmed rollback (the early-abort
    /// path: the middleware "awaits the abort results from data sources").
    pub async fn wait_for_rollbacks(&self, gtrid: u64, branches: &[u32]) {
        loop {
            let (done, notify) = {
                let map = self.txns.borrow();
                let Some(state) = map.get(&gtrid) else {
                    return;
                };
                let done = branches.iter().all(|b| state.rollbacked.contains(b));
                (done, Rc::clone(&state.notify))
            };
            if done {
                return;
            }
            notify.notified().await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_simrt::{sleep, Runtime};
    use geotp_storage::Xid;
    use std::time::Duration;

    #[test]
    fn votes_are_routed_to_waiters() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let hub = NotifyHub::start();
            hub.register(5);
            let sender = hub.sender();
            spawn(async move {
                sleep(Duration::from_millis(10)).await;
                sender
                    .send(AgentNotification::PrepareResult {
                        xid: Xid::new(5, 0),
                        vote: PrepareVote::Prepared,
                    })
                    .unwrap();
                sleep(Duration::from_millis(10)).await;
                sender
                    .send(AgentNotification::PrepareResult {
                        xid: Xid::new(5, 1),
                        vote: PrepareVote::Failure,
                    })
                    .unwrap();
            });
            let votes = hub.wait_for_votes(5, &[0, 1]).await;
            assert_eq!(votes.get(&0), Some(&PrepareVote::Prepared));
            assert_eq!(votes.get(&1), Some(&PrepareVote::Failure));
            hub.unregister(5);
            assert!(hub.votes(5).is_empty());
        });
    }

    #[test]
    fn rollback_counts_as_implicit_vote() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let hub = NotifyHub::start();
            hub.register(9);
            let sender = hub.sender();
            spawn(async move {
                sleep(Duration::from_millis(1)).await;
                sender
                    .send(AgentNotification::Rollbacked {
                        xid: Xid::new(9, 2),
                    })
                    .unwrap();
            });
            let votes = hub.wait_for_votes(9, &[2]).await;
            assert_eq!(votes.get(&2), Some(&PrepareVote::RollbackOnly));
            assert_eq!(hub.rollbacked(9), vec![2]);
        });
    }

    #[test]
    fn wait_for_rollbacks_completes_when_all_confirm() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let hub = NotifyHub::start();
            hub.register(3);
            let sender = hub.sender();
            spawn(async move {
                for branch in [0u32, 1] {
                    sleep(Duration::from_millis(5)).await;
                    sender
                        .send(AgentNotification::Rollbacked {
                            xid: Xid::new(3, branch),
                        })
                        .unwrap();
                }
            });
            hub.wait_for_rollbacks(3, &[0, 1]).await;
            assert_eq!(hub.rollbacked(3).len(), 2);
        });
    }

    #[test]
    fn synchronous_votes_can_be_recorded_directly() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let hub = NotifyHub::start();
            hub.register(1);
            hub.record_vote(1, 0, PrepareVote::Prepared);
            let votes = hub.wait_for_votes(1, &[0]).await;
            assert_eq!(votes.get(&0), Some(&PrepareVote::Prepared));
        });
    }
}
