//! The transaction manager / coordinator of the middleware layer.
//!
//! One [`Middleware`] instance plays the role the paper assigns to the
//! enhanced ShardingSphere proxy: it parses and routes client transactions,
//! coordinates the XA protocol across the geo-distributed data sources, runs
//! the geo-scheduler, and recovers in-doubt transactions after failures.
//!
//! The same coordinator implements every protocol the paper evaluates, chosen
//! by [`Protocol`]:
//!
//! | Protocol        | prepare                    | scheduling                 |
//! |-----------------|----------------------------|----------------------------|
//! | `SspXa`         | explicit WAN prepare round | none                       |
//! | `SspLocal`      | none (1PC, no atomicity)   | none                       |
//! | `Quro`          | explicit WAN prepare round | writes reordered last      |
//! | `Chiller`       | merged into execution      | remote-first sequencing    |
//! | `GeoTp{..}`     | decentralized (geo-agent)  | O2 latency-aware, O3 heuristics |

use geotp_simrt::hash::FxHashMap;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use geotp_datasource::{
    DataSource, DsConnection, DsOperation, PrepareVote, StatementOutcome, StatementRequest,
};
use geotp_net::{LatencyMonitor, MonitorConfig, Network, NodeId};
use geotp_simrt::{join_all, now, sleep, spawn, SimInstant};
use geotp_storage::Xid;
use geotp_telemetry::{SpanKind, TraceNode};

use crate::commit_log::{CommitLog, Decision};
use crate::metrics::{AbortReason, LatencyBreakdown, MiddlewareStats, TxnOutcome};
use crate::notify_hub::NotifyHub;
use crate::ops::{ClientOp, GlobalKey, TransactionSpec};
use crate::parser::{Catalog, SqlParser, TxnControl};
use crate::router::Partitioner;
use crate::scheduler::{AdmissionDecision, BranchPlan, GeoScheduler, Schedule, SchedulerConfig};
use crate::session::TxnError;

/// The server-side state of one live (interactively driven) transaction —
/// what the session front door's [`crate::session::Txn`] handle points at.
/// Involvement, peer lists and the latency breakdown grow round by round.
pub struct LiveTxn {
    gtrid: u64,
    session: u64,
    started: SimInstant,
    breakdown: LatencyBreakdown,
    scratch: TxnScratch,
    distributed: bool,
    annotated: bool,
    /// True until the transaction issues anything besides a plain read; a
    /// still-read-only transaction qualifies for the snapshot-read commit
    /// fast path ([`MiddlewareConfig::snapshot_reads`]).
    read_only: bool,
    rounds: usize,
    concluded: bool,
    #[cfg(feature = "history")]
    history: crate::metrics::TxnHistory,
}

impl LiveTxn {
    /// The global transaction id.
    pub fn gtrid(&self) -> u64 {
        self.gtrid
    }

    /// Whether the transaction has concluded (committed, rolled back,
    /// aborted or abandoned).
    pub fn concluded(&self) -> bool {
        self.concluded
    }

    /// Move the transaction's latency origin back to `connected` (the
    /// instant the client issued `begin`, before the client→middleware hop).
    pub(crate) fn backdate(&mut self, connected: SimInstant) {
        self.started = connected;
    }

    /// Account one client↔middleware hop.
    pub(crate) fn note_client_rtt(&mut self, hop: Duration) {
        self.breakdown.client_rtt += hop;
    }

    /// Account client think time (already slept by the session layer).
    pub(crate) fn note_think(&mut self, thought: Duration) {
        self.breakdown.think_time += thought;
    }

    /// Account admission-queue wait (already elapsed at an outer layer before
    /// `begin` reached this coordinator): the latency origin moves back so
    /// the end-to-end latency covers the queue, and the wait lands in
    /// [`LatencyBreakdown::queue_time`].
    pub(crate) fn note_queue_time(&mut self, queued: Duration) {
        self.breakdown.queue_time += queued;
        self.started = self.started - queued;
    }
}

/// The commit protocol / optimization set the coordinator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Apache ShardingSphere baseline: classic XA with explicit prepare and
    /// commit WAN round trips.
    SspXa,
    /// ShardingSphere "local" mode: one-phase commit on every branch, no
    /// atomicity guarantee (the paper's peak-performance reference).
    SspLocal,
    /// QURO: write operations are reordered to the end of the execution phase
    /// to delay exclusive lock acquisition; commit is classic XA.
    Quro,
    /// Chiller: the prepare phase is merged into execution and the lowest-RTT
    /// ("inner region") subtransaction runs after the others complete.
    Chiller,
    /// GeoTP. O1 (decentralized prepare + early abort) is always on;
    /// `latency_scheduling` enables O2 and `advanced` enables O3.
    GeoTp {
        /// O2: latency-aware postponing of subtransactions.
        latency_scheduling: bool,
        /// O3: hotspot forecasting and late transaction scheduling.
        advanced: bool,
    },
}

impl Protocol {
    /// GeoTP with every optimization enabled (O1–O3).
    pub fn geotp() -> Self {
        Protocol::GeoTp {
            latency_scheduling: true,
            advanced: true,
        }
    }

    /// GeoTP with only the decentralized prepare (O1).
    pub fn geotp_o1() -> Self {
        Protocol::GeoTp {
            latency_scheduling: false,
            advanced: false,
        }
    }

    /// GeoTP with decentralized prepare and latency-aware scheduling (O1–O2).
    pub fn geotp_o1_o2() -> Self {
        Protocol::GeoTp {
            latency_scheduling: true,
            advanced: false,
        }
    }

    /// Whether branches prepare themselves at the geo-agent (O1 / Chiller).
    pub fn decentralized_prepare(&self) -> bool {
        matches!(self, Protocol::GeoTp { .. } | Protocol::Chiller)
    }

    /// Whether geo-agents proactively abort sibling branches on failure.
    pub fn early_abort(&self) -> bool {
        matches!(self, Protocol::GeoTp { .. })
    }

    /// Whether the geo-scheduler postpones subtransactions (O2).
    pub fn latency_scheduling(&self) -> bool {
        matches!(
            self,
            Protocol::GeoTp {
                latency_scheduling: true,
                ..
            }
        )
    }

    /// Whether the high-contention heuristics are enabled (O3).
    pub fn advanced(&self) -> bool {
        matches!(self, Protocol::GeoTp { advanced: true, .. })
    }

    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::SspXa => "SSP",
            Protocol::SspLocal => "SSP(local)",
            Protocol::Quro => "QURO",
            Protocol::Chiller => "Chiller",
            Protocol::GeoTp {
                latency_scheduling: false,
                advanced: false,
            } => "GeoTP(O1)",
            Protocol::GeoTp {
                latency_scheduling: true,
                advanced: false,
            } => "GeoTP(O1-O2)",
            Protocol::GeoTp { .. } => "GeoTP",
        }
    }
}

/// Middleware configuration.
#[derive(Debug, Clone)]
pub struct MiddlewareConfig {
    /// The middleware's node identity.
    pub node: NodeId,
    /// Commit protocol / optimization set.
    pub protocol: Protocol,
    /// Data partitioning scheme.
    pub partitioner: Partitioner,
    /// RTT monitor configuration.
    pub monitor: MonitorConfig,
    /// Whether to spawn the background ping tasks (disable in unit tests that
    /// want a perfectly quiet network).
    pub background_monitor: bool,
    /// Base scheduler configuration (retries, backoff, hotspot, seed). The
    /// O2/O3 switches are derived from [`MiddlewareConfig::protocol`].
    pub scheduler: SchedulerConfig,
    /// Virtual-time cost of parsing/routing/scheduling one transaction
    /// (the "Analysis" slice of Fig. 6c).
    pub analysis_cost: Duration,
    /// Virtual-time cost of flushing the commit/abort log.
    pub log_flush_cost: Duration,
    /// How long the coordinator waits for prepare votes / rollback
    /// confirmations before giving up on the missing participants (they
    /// crashed, or their notification was lost). Missing votes count as
    /// no-votes; missing rollback confirmations are left to recovery. In a
    /// healthy cluster votes arrive within ~1 WAN RTT, so the generous
    /// default never fires outside failure drills.
    pub decision_wait_timeout: Duration,
    /// Populate [`TxnOutcome::history`] (requires the `history` cargo
    /// feature). Off by default: even with the feature compiled in — which
    /// workspace feature unification forces on every build that links the
    /// chaos crate — workload drivers must not pay the per-transaction
    /// read/write-set allocations. The chaos harness turns this on.
    pub record_history: bool,
    /// First value of the per-coordinator transaction sequence number. A
    /// successor instance taking over after a crash must start *past* its
    /// predecessor's sequence (see [`Middleware::next_txn_seq`]) so gtrids
    /// never collide across the failover.
    pub first_txn_seq: u64,
    /// The coordinator's membership epoch. Every decision flush and every
    /// data-source command is stamped with it; once a cluster peer fences
    /// this epoch (lease expiry + takeover), the commit log and the data
    /// sources reject everything this instance tries to decide. `0` (the
    /// default) is the unfenced single-coordinator world.
    pub epoch: u64,
    /// Upper bound on distinct scripts kept in the parsed-SQL plan cache
    /// (second-chance eviction; hot scripts survive capacity pressure).
    /// `0` disables the cache.
    pub sql_cache_capacity: usize,
    /// Snapshot-read fast path: a live transaction that issued only plain
    /// reads (no writes, no `FOR UPDATE`, no `/*+ last */` annotation)
    /// commits read-only — one parallel `commit_read_only` per started
    /// branch, no prepare round, no decision flush. Only meaningful when the
    /// data sources run an MVCC isolation level; off by default.
    pub snapshot_reads: bool,
}

/// The coordinator that allocated a gtrid (see `Middleware::alloc_gtrid` and
/// [`Xid::OWNER_SHIFT`], the layout's single source of truth). Peer recovery
/// uses this to scope `XA RECOVER` results to the dead coordinator's
/// transactions.
pub const fn gtrid_owner(gtrid: u64) -> u32 {
    Xid::new(gtrid, 0).owner()
}

impl MiddlewareConfig {
    /// Reasonable defaults for the given node, protocol and partitioner.
    pub fn new(node: NodeId, protocol: Protocol, partitioner: Partitioner) -> Self {
        Self {
            node,
            protocol,
            partitioner,
            monitor: MonitorConfig::default(),
            background_monitor: false,
            scheduler: SchedulerConfig::default(),
            analysis_cost: Duration::from_micros(1000),
            log_flush_cost: Duration::from_micros(500),
            decision_wait_timeout: Duration::from_secs(30),
            record_history: false,
            first_txn_seq: 1,
            epoch: 0,
            sql_cache_capacity: SQL_CACHE_MAX,
            snapshot_reads: false,
        }
    }
}

/// Default upper bound on distinct scripts kept in the parsed-statement
/// cache (see [`MiddlewareConfig::sql_cache_capacity`]).
const SQL_CACHE_MAX: usize = 4_096;

/// A cached, fully parsed SQL script: what `run_sql` needs to skip the parser
/// on repeat executions of the same text.
pub(crate) enum SqlPlan {
    /// The script runs this transaction.
    Run(Rc<TransactionSpec>),
    /// The script ends in ROLLBACK (or contains no operations).
    Rollback,
}

/// The parsed-SQL plan cache, bounded by cheap second-chance (clock)
/// eviction. The previous policy wholesale-`clear()`ed a full cache, so a
/// workload whose distinct-script count hovered just above capacity threw
/// away its *hot* entries along with the cold ones and thrashed the parser;
/// the clock gives every entry that was hit since its last inspection one
/// more pass, so hot scripts survive capacity pressure indefinitely.
struct SqlPlanCache {
    capacity: usize,
    map: FxHashMap<Rc<str>, CachedSqlPlan>,
    /// Clock order: the front is the next eviction candidate.
    clock: std::collections::VecDeque<Rc<str>>,
}

struct CachedSqlPlan {
    plan: Rc<SqlPlan>,
    /// Set on every hit, cleared when the clock hand passes over the entry.
    referenced: bool,
}

impl SqlPlanCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: FxHashMap::default(),
            clock: std::collections::VecDeque::new(),
        }
    }

    fn get(&mut self, script: &str) -> Option<Rc<SqlPlan>> {
        let slot = self.map.get_mut(script)?;
        slot.referenced = true;
        Some(Rc::clone(&slot.plan))
    }

    fn insert(&mut self, script: &str, plan: Rc<SqlPlan>) {
        if self.capacity == 0 || self.map.contains_key(script) {
            return;
        }
        // Second chance: advance the clock hand until an unreferenced entry
        // falls out. Bounded: one full revolution clears every flag, so the
        // loop inspects at most 2×len entries.
        while self.map.len() >= self.capacity {
            let Some(key) = self.clock.pop_front() else {
                break;
            };
            match self.map.get_mut(&*key) {
                Some(slot) if slot.referenced => {
                    slot.referenced = false;
                    self.clock.push_back(key);
                }
                Some(_) => {
                    self.map.remove(&*key);
                }
                None => {}
            }
        }
        let key: Rc<str> = Rc::from(script);
        self.clock.push_back(Rc::clone(&key));
        self.map.insert(
            key,
            CachedSqlPlan {
                plan,
                referenced: false,
            },
        );
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, script: &str) -> bool {
        self.map.contains_key(script)
    }
}

/// Reusable per-transaction working memory. Each in-flight transaction pops
/// one from the middleware's pool and returns it on completion, so the
/// steady-state hot path performs no `Vec` allocations for key/routing
/// bookkeeping regardless of how many transactions have run.
#[derive(Default)]
struct TxnScratch {
    keys: Vec<GlobalKey>,
    involved: Vec<u32>,
    started_branches: Vec<u32>,
    branch_keys: Vec<GlobalKey>,
}

/// The database middleware instance.
pub struct Middleware {
    config: MiddlewareConfig,
    net: Rc<Network>,
    connections: FxHashMap<u32, DsConnection>,
    monitor: Rc<LatencyMonitor>,
    scheduler: Rc<GeoScheduler>,
    hub: Rc<NotifyHub>,
    commit_log: Rc<CommitLog>,
    next_txn: Cell<u64>,
    /// Set by [`Middleware::crash`]: the instance stops coordinating. Every
    /// in-flight transaction bails out at its next step with
    /// [`AbortReason::CoordinatorCrashed`], leaving its branches in-doubt for
    /// recovery — exactly what a real process kill does.
    crashed: Cell<bool>,
    /// One-shot fail point: crash immediately after the *next* commit-log
    /// flush (the paper's §V-A window — decision durable, not dispatched).
    crash_after_flush: Cell<bool>,
    /// Checker-validation fail point: dispatch commits *before* flushing the
    /// decision in the voted-2PC path, violating the write-ahead rule of the
    /// commit point. Leaves durably correct state as long as nothing crashes
    /// in the gap — only the trace oracle can convict it.
    dispatch_before_flush: Cell<bool>,
    stats: RefCell<MiddlewareStats>,
    catalog: RefCell<Catalog>,
    /// Parsed-statement cache for [`Middleware::run_sql`], keyed by script
    /// text, bounded by second-chance eviction.
    sql_cache: RefCell<SqlPlanCache>,
    /// Pool of reusable per-transaction buffers.
    scratch_pool: RefCell<Vec<TxnScratch>>,
    /// Per-session front-door state (the session API's server side): which
    /// sessions are connected and which transaction each has in flight.
    sessions: RefCell<FxHashMap<u64, SessionState>>,
}

/// Per-session state the coordinator keeps for the session front door.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionState {
    /// Transactions begun on this session.
    pub txns_begun: u64,
    /// The gtrid of the session's in-flight transaction, if any. Sessions are
    /// single-statement-stream entities: at most one live transaction each.
    pub live_gtrid: Option<u64>,
    /// Last instant this session connected, began or concluded a transaction.
    /// The idle-session reaper evicts sessions whose `last_active` is older
    /// than its deadline, keeping the registry memory-lean at 10^6 sessions.
    pub last_active: SimInstant,
}

impl Middleware {
    /// Connect a middleware to a set of data sources over the simulated
    /// network. `commit_log` may be shared across restarts to exercise the
    /// recovery path; pass `None` to create a fresh log.
    pub fn connect(
        config: MiddlewareConfig,
        net: Rc<Network>,
        data_sources: &[Rc<DataSource>],
        commit_log: Option<Rc<CommitLog>>,
    ) -> Rc<Self> {
        let hub = NotifyHub::start();
        let mut connections = FxHashMap::default();
        let mut targets = Vec::new();
        for ds in data_sources {
            ds.register_middleware(config.node, hub.sender());
            connections.insert(
                ds.index(),
                DsConnection::new(config.node, Rc::clone(ds), Rc::clone(&net))
                    .with_epoch(config.epoch),
            );
            targets.push(ds.node());
        }
        let monitor = if config.background_monitor {
            LatencyMonitor::start(Rc::clone(&net), config.node, &targets, config.monitor)
        } else {
            LatencyMonitor::new(&net, config.node, &targets, config.monitor)
        };
        let mut scheduler_config = config.scheduler;
        scheduler_config.latency_aware = config.protocol.latency_scheduling();
        scheduler_config.advanced = config.protocol.advanced();
        let scheduler = Rc::new(GeoScheduler::new(scheduler_config, Rc::clone(&monitor)));
        let commit_log = commit_log.unwrap_or_else(|| CommitLog::new(config.log_flush_cost));
        let first_txn_seq = config.first_txn_seq;
        let sql_cache_capacity = config.sql_cache_capacity;
        Rc::new(Self {
            config,
            net,
            connections,
            monitor,
            scheduler,
            hub,
            commit_log,
            next_txn: Cell::new(first_txn_seq),
            crashed: Cell::new(false),
            crash_after_flush: Cell::new(false),
            dispatch_before_flush: Cell::new(false),
            stats: RefCell::new(MiddlewareStats::default()),
            catalog: RefCell::new(Catalog::new()),
            sql_cache: RefCell::new(SqlPlanCache::new(sql_cache_capacity)),
            scratch_pool: RefCell::new(Vec::new()),
            sessions: RefCell::new(FxHashMap::default()),
        })
    }

    fn take_scratch(&self) -> TxnScratch {
        self.scratch_pool.borrow_mut().pop().unwrap_or_default()
    }

    fn return_scratch(&self, scratch: TxnScratch) {
        self.scratch_pool.borrow_mut().push(scratch);
    }

    /// The middleware's node identity.
    pub fn node(&self) -> NodeId {
        self.config.node
    }

    /// The protocol this middleware runs.
    pub fn protocol(&self) -> Protocol {
        self.config.protocol
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MiddlewareStats {
        *self.stats.borrow()
    }

    /// The RTT monitor.
    pub fn monitor(&self) -> &Rc<LatencyMonitor> {
        &self.monitor
    }

    /// The geo-scheduler.
    pub fn scheduler(&self) -> &Rc<GeoScheduler> {
        &self.scheduler
    }

    /// The durable commit/abort log (share it with a successor instance to
    /// exercise middleware failure recovery).
    pub fn commit_log(&self) -> &Rc<CommitLog> {
        &self.commit_log
    }

    /// Simulate a crash of this coordinator: it stops making progress on
    /// every in-flight transaction (each bails out at its next step with
    /// [`AbortReason::CoordinatorCrashed`]) and refuses new ones. The commit
    /// log survives — hand it to a successor instance and call
    /// [`Middleware::recover`] to finish the in-doubt branches.
    pub fn crash(&self) {
        self.crashed.set(true);
    }

    /// Whether this instance has crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed.get()
    }

    /// One-shot fail point: crash immediately after the next commit-log
    /// flush, i.e. with a decision durable but not yet dispatched — the
    /// paper's §V-A recovery window, hit deterministically.
    pub fn crash_after_next_flush(&self) {
        self.crash_after_flush.set(true);
    }

    /// Checker-validation fail point: from now on, voted-2PC commits are
    /// dispatched *before* their decision is flushed to the commit log. The
    /// durable end state is indistinguishable from a correct run (the flush
    /// still happens), so the state-based invariant checkers stay green —
    /// this exists to prove the trace oracle's flush-before-dispatch rule
    /// has teeth.
    pub fn fail_point_dispatch_before_flush(&self) {
        self.dispatch_before_flush.set(true);
    }

    /// The next transaction sequence number this coordinator would assign.
    /// A successor instance must be configured with
    /// [`MiddlewareConfig::first_txn_seq`] at least this value so gtrids
    /// never collide across a failover.
    pub fn next_txn_seq(&self) -> u64 {
        self.next_txn.get()
    }

    /// Flush a decision, honouring the [`Middleware::crash_after_next_flush`]
    /// fail point: the crash lands exactly between the durable flush and the
    /// decision dispatch. Returns `false` when the commit log rejected the
    /// write because this coordinator's epoch has been fenced — the caller
    /// must treat the transaction as undecided (a peer owns it now).
    async fn flush_decision(&self, gtrid: u64, decision: Decision) -> bool {
        let flushed = self
            .commit_log
            .try_flush_decision(gtrid, decision, self.config.epoch)
            .await
            .is_ok();
        // The fail point models a crash after a *successful* durable flush
        // (the §V-A window). A fence-rejected flush wrote nothing, so firing
        // on it would stage a crash without the durable decision the drill
        // exists to exercise; leave the fail point armed for a real flush.
        if flushed && self.crash_after_flush.replace(false) {
            self.crashed.set(true);
        }
        flushed
    }

    /// The simulated network this middleware is attached to.
    pub fn network(&self) -> &Rc<Network> {
        &self.net
    }

    fn alloc_gtrid(&self) -> u64 {
        let seq = self.next_txn.get();
        self.next_txn.set(seq + 1);
        ((self.config.node.index() as u64) << Xid::OWNER_SHIFT) | seq
    }

    fn conn(&self, ds: u32) -> &DsConnection {
        self.connections
            .get(&ds)
            .unwrap_or_else(|| panic!("no connection to data source {ds}"))
    }

    fn to_ds_op(op: &ClientOp) -> DsOperation {
        match op {
            ClientOp::Read(k) => DsOperation::Read {
                key: k.storage_key(),
            },
            ClientOp::ReadForUpdate(k) => DsOperation::ReadForUpdate {
                key: k.storage_key(),
            },
            ClientOp::AddInt { key, col, delta } => DsOperation::AddInt {
                key: key.storage_key(),
                col: *col,
                delta: *delta,
            },
            ClientOp::Write { key, row } => DsOperation::Write {
                key: key.storage_key(),
                row: row.clone(),
            },
            ClientOp::Insert { key, row } => DsOperation::Insert {
                key: key.storage_key(),
                row: row.clone(),
            },
            ClientOp::Delete(k) => DsOperation::Delete {
                key: k.storage_key(),
            },
        }
    }

    /// Execute a SQL script (BEGIN ... COMMIT) as a single transaction.
    /// Statements between BEGIN and COMMIT become one interactive round each;
    /// the `/*+ last */` annotation is honoured.
    ///
    /// Parses are cached by script text: workload drivers issue the same
    /// handful of script templates millions of times, so repeat executions
    /// skip the parser entirely and reuse the prepared [`TransactionSpec`].
    pub async fn run_sql(
        self: &Rc<Self>,
        script: &str,
    ) -> Result<TxnOutcome, crate::parser::ParseError> {
        match &*self.sql_plan(script)? {
            SqlPlan::Rollback => Ok(TxnOutcome::aborted(
                AbortReason::ClientRollback,
                Duration::ZERO,
                false,
            )),
            SqlPlan::Run(spec) => Ok(self.run_transaction(spec).await),
        }
    }

    /// Look the script's plan up in the bounded cache, parsing on a miss.
    pub(crate) fn sql_plan(&self, script: &str) -> Result<Rc<SqlPlan>, crate::parser::ParseError> {
        if let Some(plan) = self.sql_cache.borrow_mut().get(script) {
            return Ok(plan);
        }
        let plan = Rc::new(self.parse_sql_plan(script)?);
        self.sql_cache.borrow_mut().insert(script, Rc::clone(&plan));
        Ok(plan)
    }

    /// The script's plan in the session front door's vocabulary.
    pub(crate) fn sql_script(
        &self,
        script: &str,
    ) -> Result<crate::session::SqlScript, crate::parser::ParseError> {
        Ok(match &*self.sql_plan(script)? {
            SqlPlan::Rollback => crate::session::SqlScript::Rollback,
            SqlPlan::Run(spec) => crate::session::SqlScript::Run(Rc::clone(spec)),
        })
    }

    /// Parse a single SQL statement against the middleware's catalog (the
    /// session front door's per-statement path).
    pub(crate) fn parse_statement(
        &self,
        statement: &str,
    ) -> Result<crate::parser::ParsedStatement, crate::parser::ParseError> {
        let mut catalog = self.catalog.borrow_mut();
        let mut parser = SqlParser::new();
        std::mem::swap(parser.catalog_mut(), &mut catalog);
        let parsed = parser.parse_statement(statement);
        std::mem::swap(parser.catalog_mut(), &mut catalog);
        parsed
    }

    /// Number of scripts currently in the parsed-SQL plan cache.
    pub fn sql_cache_len(&self) -> usize {
        self.sql_cache.borrow().len()
    }

    /// Whether the script's parsed plan is currently cached (diagnostics and
    /// eviction-policy tests).
    pub fn sql_cache_contains(&self, script: &str) -> bool {
        self.sql_cache.borrow().contains(script)
    }

    /// Parse a SQL script into its executable plan (the slow path behind the
    /// statement cache).
    fn parse_sql_plan(&self, script: &str) -> Result<SqlPlan, crate::parser::ParseError> {
        let statements = {
            let mut catalog = self.catalog.borrow_mut();
            let mut parser = SqlParser::new();
            std::mem::swap(parser.catalog_mut(), &mut catalog);
            let parsed = parser.parse_script(script);
            std::mem::swap(parser.catalog_mut(), &mut catalog);
            parsed?
        };
        let mut rounds: Vec<Vec<ClientOp>> = Vec::new();
        let mut annotate_last = false;
        let mut rollback = false;
        for stmt in statements {
            if let Some(ctrl) = stmt.control {
                match ctrl {
                    TxnControl::Begin => {}
                    TxnControl::Commit => break,
                    TxnControl::Rollback => {
                        rollback = true;
                        break;
                    }
                }
                continue;
            }
            if let Some(op) = stmt.op {
                rounds.push(vec![op]);
                if stmt.is_last {
                    annotate_last = true;
                }
            }
        }
        if rollback || rounds.is_empty() {
            return Ok(SqlPlan::Rollback);
        }
        let mut spec = TransactionSpec::multi_round(rounds);
        spec.annotate_last = annotate_last || spec.rounds.len() == 1;
        Ok(SqlPlan::Run(Rc::new(spec)))
    }

    /// Bookkeeping common to every transaction exit path.
    #[cfg_attr(not(feature = "history"), allow(unused_mut, unused_variables))]
    fn finish_txn(
        &self,
        gtrid: u64,
        advanced: bool,
        keys: &[GlobalKey],
        spec: &TransactionSpec,
        mut outcome: TxnOutcome,
    ) -> TxnOutcome {
        self.hub.unregister(gtrid);
        if advanced {
            self.scheduler
                .footprint()
                .borrow_mut()
                .on_txn_finish(keys, outcome.committed);
        }
        #[cfg(feature = "history")]
        if self.config.record_history && outcome.gtrid != 0 {
            outcome.history = crate::metrics::TxnHistory::from_spec(spec);
        }
        self.stats.borrow_mut().record(&outcome);
        self.trace_txn_exit(gtrid, &outcome);
        outcome
    }

    /// Telemetry hook shared by every transaction exit path: close whatever
    /// spans are still open for this transaction on this coordinator (the
    /// root `Txn` span on the happy path; a dangling `Round` too on crash and
    /// abandon paths) and mirror the outcome into the metrics registry.
    fn trace_txn_exit(&self, gtrid: u64, outcome: &TxnOutcome) {
        if !geotp_telemetry::enabled() {
            return;
        }
        let idx = self.config.node.index();
        geotp_telemetry::span_end_all(gtrid, TraceNode::middleware(idx));
        if outcome.committed {
            geotp_telemetry::counter_add("mw.committed", "", idx, 1);
        } else if let Some(reason) = outcome.abort_reason {
            geotp_telemetry::counter_add("mw.aborts", reason.label(), idx, 1);
        }
    }

    /// Run one client transaction end to end and return its outcome.
    pub async fn run_transaction(self: &Rc<Self>, spec: &TransactionSpec) -> TxnOutcome {
        let started = now();
        let mut breakdown = LatencyBreakdown::default();
        if self.crashed.get() {
            // A crashed coordinator accepts nothing; the client's connection
            // is refused before any state is created.
            return TxnOutcome::aborted(AbortReason::CoordinatorCrashed, Duration::ZERO, false);
        }

        // ------------------------------------------------------------------
        // Analysis: parse, route, plan (Fig. 6c "Analysis").
        // ------------------------------------------------------------------
        sleep(self.config.analysis_cost).await;
        breakdown.analysis = self.config.analysis_cost;

        // Key/routing bookkeeping lives in pooled buffers: the steady-state
        // transaction path reuses the vectors of earlier transactions.
        let mut scratch = self.take_scratch();
        spec.collect_keys_into(&mut scratch.keys);
        self.config
            .partitioner
            .involved_nodes_into(&scratch.keys, &mut scratch.involved);
        scratch.started_branches.clear();
        let distributed = scratch.involved.len() > 1;
        let gtrid = self.alloc_gtrid();
        self.hub.register(gtrid);
        // Trace root + the analysis slice (backdated: the gtrid only exists
        // now, after the analysis already ran).
        let dm = TraceNode::middleware(self.config.node.index());
        geotp_telemetry::span_root_at(gtrid, dm, SpanKind::Txn, spec.rounds.len() as u64, started);
        geotp_telemetry::span_leaf_closed(gtrid, dm, SpanKind::Analysis, 0, started);
        let advanced = self.config.protocol.advanced();
        if advanced {
            self.scheduler
                .footprint()
                .borrow_mut()
                .on_access_start(&scratch.keys);
        }

        // ------------------------------------------------------------------
        // Execution phase: dispatch each round to the involved data sources.
        // ------------------------------------------------------------------
        let exec_started = now();
        let mut rows = Vec::new();

        for (round_idx, round_ops) in spec.rounds.iter().enumerate() {
            let round_span =
                geotp_telemetry::span_scoped(gtrid, dm, SpanKind::Round, round_idx as u64);
            // Per-branch operation groups borrow from the spec — nothing is
            // cloned for routing.
            let mut groups = self.config.partitioner.split(round_ops);

            // QURO: delay exclusive-lock acquisition by moving writes last.
            if matches!(self.config.protocol, Protocol::Quro) {
                for (_, ops) in groups.iter_mut() {
                    ops.sort_by_key(|op| op.is_write());
                }
            }

            // Build the scheduling plan for this round.
            let plans: Vec<BranchPlan> = groups
                .iter()
                .map(|(ds, ops)| BranchPlan {
                    ds_index: *ds,
                    keys: ops.iter().map(|op| op.key()).collect(),
                })
                .collect();

            let schedule = if matches!(self.config.protocol, Protocol::GeoTp { .. }) {
                if advanced && round_idx == 0 {
                    match self.scheduler.schedule_with_admission(&plans) {
                        AdmissionDecision::Admit(s) => s,
                        AdmissionDecision::Reject { attempts } => {
                            // Late transaction scheduling kept this transaction
                            // back; charge the backoff and abort it.
                            let backoff = self.config.scheduler.retry_backoff * attempts;
                            sleep(backoff).await;
                            let mut outcome = TxnOutcome::aborted(
                                AbortReason::AdmissionRejected,
                                now().duration_since(started),
                                distributed,
                            );
                            outcome.gtrid = gtrid;
                            let outcome =
                                self.finish_txn(gtrid, advanced, &scratch.keys, spec, outcome);
                            self.return_scratch(scratch);
                            return outcome;
                        }
                    }
                } else {
                    self.scheduler.schedule(&plans)
                }
            } else {
                Schedule {
                    postpone: vec![Duration::ZERO; plans.len()],
                    horizon: Duration::ZERO,
                }
            };
            self.stats.borrow_mut().total_postpone_micros += schedule
                .postpone
                .iter()
                .map(|d| d.as_micros() as u64)
                .sum::<u64>();

            // Assemble the per-branch requests.
            let decentralized = self.config.protocol.decentralized_prepare() && spec.annotate_last;
            let mut requests = Vec::with_capacity(groups.len());
            for (ds, ops) in &groups {
                let later_rounds_touch_ds = spec.rounds[round_idx + 1..].iter().any(|round| {
                    round
                        .iter()
                        .any(|op| self.config.partitioner.route(op.key()) == *ds)
                });
                let is_last = decentralized && !later_rounds_touch_ds;
                requests.push(StatementRequest {
                    xid: Xid::new(gtrid, *ds),
                    begin: !scratch.started_branches.contains(ds),
                    ops: ops.iter().map(|op| Self::to_ds_op(op)).collect(),
                    is_last,
                    decentralized_prepare: decentralized,
                    early_abort: self.config.protocol.early_abort() && distributed,
                    peers: if distributed {
                        scratch
                            .involved
                            .iter()
                            .copied()
                            .filter(|p| p != ds)
                            .collect()
                    } else {
                        Vec::new()
                    },
                    trace_parent: round_span,
                });
            }
            for (ds, _) in &groups {
                if !scratch.started_branches.contains(ds) {
                    scratch.started_branches.push(*ds);
                }
            }

            // Dispatch.
            let mut responses = match self.config.protocol {
                Protocol::Chiller if groups.len() > 1 => {
                    self.dispatch_chiller(&groups, requests).await
                }
                _ => self.dispatch_parallel(&groups, requests, &schedule).await,
            };

            // The coordinator may have been crashed while this round was in
            // flight: stop dead. No rollbacks are dispatched — a crashed
            // process sends nothing; the branches are cleaned up by the data
            // sources' disconnect handling and by failure recovery.
            if self.crashed.get() {
                let mut outcome = TxnOutcome::aborted(
                    AbortReason::CoordinatorCrashed,
                    now().duration_since(started),
                    distributed,
                );
                outcome.gtrid = gtrid;
                let outcome = self.finish_txn(gtrid, advanced, &scratch.keys, spec, outcome);
                self.return_scratch(scratch);
                return outcome;
            }

            // Feedback + failure handling.
            let mut failed = false;
            for ((_ds, ops), response) in groups.iter().zip(&responses) {
                if advanced {
                    scratch.branch_keys.clear();
                    scratch.branch_keys.extend(ops.iter().map(|op| op.key()));
                    self.scheduler
                        .footprint()
                        .borrow_mut()
                        .on_subtxn_feedback(&scratch.branch_keys, response.local_execution_latency);
                }
                if !response.outcome.is_ok() {
                    failed = true;
                }
            }
            if !failed {
                // Move the result rows out of the responses (no clones).
                for response in &mut responses {
                    if let StatementOutcome::Ok { rows: r } = &mut response.outcome {
                        rows.append(r);
                    }
                }
            }

            if failed {
                geotp_telemetry::span_end(round_span);
                breakdown.execution = now().duration_since(exec_started);
                let failed_here: Vec<u32> = groups
                    .iter()
                    .zip(&responses)
                    .filter(|(_, r)| !r.outcome.is_ok())
                    .map(|((ds, _), _)| *ds)
                    .collect();
                let abort_span = geotp_telemetry::span_leaf(
                    gtrid,
                    dm,
                    SpanKind::RollbackDispatch,
                    scratch.started_branches.len() as u64,
                );
                self.abort_started_branches(gtrid, &scratch.started_branches, &failed_here)
                    .await;
                geotp_telemetry::span_end(abort_span);
                let outcome = TxnOutcome {
                    gtrid,
                    committed: false,
                    abort_reason: Some(AbortReason::ExecutionFailed),
                    latency: now().duration_since(started),
                    breakdown,
                    distributed,
                    ..TxnOutcome::default()
                };
                let outcome = self.finish_txn(gtrid, advanced, &scratch.keys, spec, outcome);
                self.return_scratch(scratch);
                return outcome;
            }
            geotp_telemetry::span_end(round_span);
        }
        breakdown.execution = now().duration_since(exec_started);

        // ------------------------------------------------------------------
        // Commit phase.
        // ------------------------------------------------------------------
        let commit_outcome = self
            .commit_phase(
                gtrid,
                &scratch.involved,
                distributed,
                spec.annotate_last,
                &mut breakdown,
            )
            .await;

        let outcome = TxnOutcome {
            gtrid,
            committed: commit_outcome.is_ok(),
            abort_reason: commit_outcome.err(),
            latency: now().duration_since(started),
            breakdown,
            distributed,
            rows,
            ..TxnOutcome::default()
        };
        let outcome = self.finish_txn(gtrid, advanced, &scratch.keys, spec, outcome);
        self.return_scratch(scratch);
        outcome
    }

    /// Dispatch every branch of a round concurrently, honouring the
    /// scheduler's postpone amounts.
    async fn dispatch_parallel(
        &self,
        groups: &[(u32, Vec<&ClientOp>)],
        requests: Vec<StatementRequest>,
        schedule: &Schedule,
    ) -> Vec<geotp_datasource::StatementResponse> {
        // Fast path: centralized transactions (the overwhelming majority at
        // the paper's 20% distributed ratio) have exactly one branch — await
        // it directly instead of paying `join_all`'s boxing and re-polling.
        if let [(ds, _)] = groups {
            let request = requests.into_iter().next().expect("one request per group");
            let postpone = schedule.postpone.first().copied().unwrap_or(Duration::ZERO);
            if !postpone.is_zero() {
                sleep(postpone).await;
            }
            return vec![self.conn(*ds).execute(request).await];
        }
        let mut futures = Vec::new();
        for (idx, ((ds, _), request)) in groups.iter().zip(requests).enumerate() {
            let conn = self.conn(*ds).clone();
            let postpone = schedule
                .postpone
                .get(idx)
                .copied()
                .unwrap_or(Duration::ZERO);
            futures.push(async move {
                if !postpone.is_zero() {
                    sleep(postpone).await;
                }
                conn.execute(request).await
            });
        }
        join_all(futures).await
    }

    /// Chiller's sequencing: the cross-region (higher RTT) branches execute
    /// first and concurrently; the intra-region (lowest RTT) branch executes
    /// only after they finish, shrinking its lock span.
    async fn dispatch_chiller(
        &self,
        groups: &[(u32, Vec<&ClientOp>)],
        requests: Vec<StatementRequest>,
    ) -> Vec<geotp_datasource::StatementResponse> {
        // Find the branch with the smallest RTT ("inner region").
        let mut min_idx = 0;
        let mut min_rtt = Duration::MAX;
        for (idx, (ds, _)) in groups.iter().enumerate() {
            let rtt = self.monitor.rtt(NodeId::data_source(*ds));
            if rtt < min_rtt {
                min_rtt = rtt;
                min_idx = idx;
            }
        }
        let mut outer = Vec::new();
        let mut inner = None;
        for (idx, ((ds, _), request)) in groups.iter().zip(requests).enumerate() {
            let conn = self.conn(*ds).clone();
            if idx == min_idx {
                inner = Some((idx, conn, request));
            } else {
                outer.push((idx, conn, request));
            }
        }
        let mut responses: Vec<Option<geotp_datasource::StatementResponse>> =
            (0..groups.len()).map(|_| None).collect();
        let outer_results = join_all(
            outer
                .into_iter()
                .map(|(idx, conn, request)| async move { (idx, conn.execute(request).await) })
                .collect(),
        )
        .await;
        for (idx, resp) in outer_results {
            responses[idx] = Some(resp);
        }
        let (idx, conn, request) = inner.expect("chiller dispatch requires at least one branch");
        responses[idx] = Some(conn.execute(request).await);
        responses.into_iter().map(|r| r.expect("filled")).collect()
    }

    /// Abort path after an execution failure. `failed_here` names the
    /// branches whose own statement failed — those have already been rolled
    /// back by their geo-agent.
    async fn abort_started_branches(&self, gtrid: u64, started: &[u32], failed_here: &[u32]) {
        if self.config.protocol.early_abort() {
            // The failing geo-agent has notified its peers directly; the
            // middleware only waits for the rollback confirmations. Bounded
            // wait: a crashed peer (or a lost confirmation) must not park
            // this transaction forever.
            let waiting: Vec<u32> = started.to_vec();
            if !waiting.is_empty()
                && geotp_simrt::timeout(
                    self.config.decision_wait_timeout,
                    self.hub.wait_for_rollbacks(gtrid, &waiting),
                )
                .await
                .is_err()
            {
                self.stats.borrow_mut().decision_wait_timeouts += 1;
                // Give up on the notifications and roll the stragglers back
                // explicitly, like a real XA coordinator. Without this, a
                // branch whose sibling died *at XA START* (a crashed
                // participant sends no early aborts) is abandoned ACTIVE on a
                // healthy data source: locks held forever, uncommitted writes
                // visible to `peek`, invisible to `XA RECOVER` — the TPC-C
                // chaos drills caught exactly that via the district order-id
                // consistency condition. Rolling back an already-rolled-back
                // branch is a no-op on the data source, so this is safe to
                // over-apply.
                let confirmed = self.hub.rollbacked(gtrid);
                let stragglers: Vec<u32> = waiting
                    .iter()
                    .copied()
                    .filter(|ds| !confirmed.contains(ds) && !failed_here.contains(ds))
                    .collect();
                join_all(
                    stragglers
                        .iter()
                        .map(|ds| {
                            let conn = self.conn(*ds).clone();
                            let xid = Xid::new(gtrid, *ds);
                            async move {
                                let _ = conn.rollback(xid).await;
                            }
                        })
                        .collect(),
                )
                .await;
            }
            return;
        }
        // Classic path: the middleware dispatches rollbacks itself.
        let mut futures = Vec::new();
        for ds in started {
            if failed_here.contains(ds) {
                continue;
            }
            let conn = self.conn(*ds).clone();
            let xid = Xid::new(gtrid, *ds);
            futures.push(async move {
                let _ = conn.rollback(xid).await;
            });
        }
        join_all(futures).await;
    }

    /// Commit phase, per protocol. Returns `Ok(())` on commit or the abort
    /// reason.
    async fn commit_phase(
        &self,
        gtrid: u64,
        involved: &[u32],
        distributed: bool,
        annotated: bool,
        breakdown: &mut LatencyBreakdown,
    ) -> Result<(), AbortReason> {
        let dm = TraceNode::middleware(self.config.node.index());
        // Centralized transaction: a single one-phase commit round trip.
        if !distributed {
            let ds = involved[0];
            let flush_started = now();
            let flush_span = geotp_telemetry::span_leaf(gtrid, dm, SpanKind::LogFlush, 0);
            let flushed = self.flush_decision(gtrid, Decision::Commit).await;
            geotp_telemetry::span_end(flush_span);
            breakdown.log_flush = now().duration_since(flush_started);
            if !flushed {
                return Err(AbortReason::CoordinatorFenced);
            }
            if self.crashed.get() {
                // Crashed before dispatching the one-phase commit: the branch
                // never prepared, so the data source's disconnect handling
                // rolls it back. The client sees no outcome.
                return Err(AbortReason::CoordinatorCrashed);
            }
            let commit_started = now();
            let commit_span = geotp_telemetry::span_leaf(gtrid, dm, SpanKind::CommitDispatch, 1);
            let result = self.conn(ds).commit(Xid::new(gtrid, ds), true).await;
            geotp_telemetry::span_end(commit_span);
            breakdown.commit = now().duration_since(commit_started);
            return match result {
                Ok(()) => Ok(()),
                Err(_) => Err(AbortReason::PrepareFailed),
            };
        }

        let protocol = self.config.protocol;
        match protocol {
            Protocol::GeoTp { .. } | Protocol::Chiller if annotated => {
                self.stats.borrow_mut().decentralized_prepares += 1;
                // Wait for the asynchronous prepare votes pushed by the
                // geo-agents (no extra WAN round trip). The wait is bounded:
                // a crashed participant (or a lost vote notification) must
                // not park the coordinator forever — after the decision-wait
                // timeout the missing votes count as no-votes and the
                // transaction aborts, exactly like a real XA coordinator
                // giving up on a dead participant.
                let wait_started = now();
                let wait_span = geotp_telemetry::span_leaf(
                    gtrid,
                    dm,
                    SpanKind::VoteWait,
                    involved.len() as u64,
                );
                let votes = match geotp_simrt::timeout(
                    self.config.decision_wait_timeout,
                    self.hub.wait_for_votes(gtrid, involved),
                )
                .await
                {
                    Ok(votes) => votes,
                    Err(_elapsed) => {
                        self.stats.borrow_mut().decision_wait_timeouts += 1;
                        let mut votes = self.hub.votes(gtrid);
                        for b in self.hub.rollbacked(gtrid) {
                            votes.entry(b).or_insert(PrepareVote::RollbackOnly);
                        }
                        votes
                    }
                };
                geotp_telemetry::span_end(wait_span);
                breakdown.prepare_wait = now().duration_since(wait_started);
                let all_yes = involved
                    .iter()
                    .all(|ds| votes.get(ds).map(|v| v.is_yes()).unwrap_or(false));
                self.decide_and_dispatch(gtrid, involved, all_yes, &votes, breakdown)
                    .await
            }
            Protocol::SspLocal => {
                // One-phase commit everywhere, no vote collection.
                let flush_started = now();
                let flush_span = geotp_telemetry::span_leaf(gtrid, dm, SpanKind::LogFlush, 0);
                let flushed = self.flush_decision(gtrid, Decision::Commit).await;
                geotp_telemetry::span_end(flush_span);
                breakdown.log_flush = now().duration_since(flush_started);
                if !flushed {
                    return Err(AbortReason::CoordinatorFenced);
                }
                if self.crashed.get() {
                    return Err(AbortReason::CoordinatorCrashed);
                }
                let commit_started = now();
                let commit_span = geotp_telemetry::span_leaf(
                    gtrid,
                    dm,
                    SpanKind::CommitDispatch,
                    involved.len() as u64,
                );
                let results = join_all(
                    involved
                        .iter()
                        .map(|ds| {
                            let conn = self.conn(*ds).clone();
                            let xid = Xid::new(gtrid, *ds);
                            async move { conn.commit(xid, true).await }
                        })
                        .collect(),
                )
                .await;
                geotp_telemetry::span_end(commit_span);
                breakdown.commit = now().duration_since(commit_started);
                // No atomicity guarantee: report commit if any branch made it.
                if results.iter().any(Result::is_ok) {
                    Ok(())
                } else {
                    Err(AbortReason::PrepareFailed)
                }
            }
            _ => {
                // Classic XA: explicit prepare round trip (SSP, QURO, and any
                // GeoTP transaction the client did not annotate).
                let wait_started = now();
                let prepare_span =
                    geotp_telemetry::span_leaf(gtrid, dm, SpanKind::Prepare, involved.len() as u64);
                let votes_vec = join_all(
                    involved
                        .iter()
                        .map(|ds| {
                            let conn = self.conn(*ds).clone();
                            let xid = Xid::new(gtrid, *ds);
                            async move { (xid.bqual, conn.prepare(xid).await) }
                        })
                        .collect(),
                )
                .await;
                geotp_telemetry::span_end(prepare_span);
                breakdown.prepare_wait = now().duration_since(wait_started);
                let votes: HashMap<u32, PrepareVote> = votes_vec.into_iter().collect();
                let all_yes = involved
                    .iter()
                    .all(|ds| votes.get(ds).map(|v| v.is_yes()).unwrap_or(false));
                self.decide_and_dispatch(gtrid, involved, all_yes, &votes, breakdown)
                    .await
            }
        }
    }

    /// Flush the decision and dispatch commit/rollback to every branch.
    async fn decide_and_dispatch(
        &self,
        gtrid: u64,
        involved: &[u32],
        all_yes: bool,
        votes: &HashMap<u32, PrepareVote>,
        breakdown: &mut LatencyBreakdown,
    ) -> Result<(), AbortReason> {
        let dm = TraceNode::middleware(self.config.node.index());
        let decision = if all_yes {
            Decision::Commit
        } else {
            Decision::Abort
        };
        let dispatched_early = all_yes && self.dispatch_before_flush.get();
        if dispatched_early {
            // Fail point: the commit reaches the branches before the decision
            // is durable. See [`Middleware::fail_point_dispatch_before_flush`].
            let commit_started = now();
            self.dispatch_commits(gtrid, involved, votes, dm).await;
            breakdown.commit = now().duration_since(commit_started);
        }
        let flush_started = now();
        let flush_span = geotp_telemetry::span_leaf(gtrid, dm, SpanKind::LogFlush, 0);
        let flushed = self.flush_decision(gtrid, decision).await;
        geotp_telemetry::span_end(flush_span);
        breakdown.log_flush = now().duration_since(flush_started);
        if !flushed {
            // Fenced mid-transaction: the decision never became durable, so
            // nothing may be dispatched. The prepared branches belong to the
            // adopting peer now, which resolves them from the sealed log
            // (no record ⇒ abort) — exactly the outcome we report.
            return Err(AbortReason::CoordinatorFenced);
        }
        if self.crashed.get() {
            // The §V-A window: decision durable, dispatch never happens. The
            // prepared branches stay in doubt until a successor replays the
            // commit log through `recover()`.
            return Err(AbortReason::CoordinatorCrashed);
        }

        let commit_started = now();
        if all_yes {
            if !dispatched_early {
                self.dispatch_commits(gtrid, involved, votes, dm).await;
                breakdown.commit = now().duration_since(commit_started);
            }
            Ok(())
        } else {
            // Abort: branches that already rolled back (no-vote / rollbacked)
            // need nothing; the rest are told to roll back.
            let to_rollback: Vec<u32> = involved
                .iter()
                .copied()
                .filter(|ds| votes.get(ds).map(|v| v.is_yes()).unwrap_or(false))
                .collect();
            let dispatch_span = geotp_telemetry::span_leaf(
                gtrid,
                dm,
                SpanKind::RollbackDispatch,
                to_rollback.len() as u64,
            );
            join_all(
                to_rollback
                    .iter()
                    .map(|ds| {
                        let conn = self.conn(*ds).clone();
                        let xid = Xid::new(gtrid, *ds);
                        async move {
                            let _ = conn.rollback(xid).await;
                        }
                    })
                    .collect(),
            )
            .await;
            geotp_telemetry::span_end(dispatch_span);
            breakdown.commit = now().duration_since(commit_started);
            Err(AbortReason::PrepareFailed)
        }
    }

    /// Dispatch the commit decision to every involved branch.
    ///
    /// The commit decision is durable (barring the early-dispatch fail
    /// point), so the transaction *is* committed no matter what the
    /// per-branch dispatch returned. A branch whose commit failed (its data
    /// source crashed between prepare and commit) is finished later by
    /// failure recovery — count it, but do not lie to the client about the
    /// outcome.
    async fn dispatch_commits(
        &self,
        gtrid: u64,
        involved: &[u32],
        votes: &HashMap<u32, PrepareVote>,
        dm: TraceNode,
    ) {
        let dispatch_span =
            geotp_telemetry::span_leaf(gtrid, dm, SpanKind::CommitDispatch, involved.len() as u64);
        let results = join_all(
            involved
                .iter()
                .map(|ds| {
                    let conn = self.conn(*ds).clone();
                    let xid = Xid::new(gtrid, *ds);
                    let one_phase = votes.get(ds) == Some(&PrepareVote::Idle);
                    async move { conn.commit(xid, one_phase).await }
                })
                .collect(),
        )
        .await;
        geotp_telemetry::span_end(dispatch_span);
        let deferred = results.iter().filter(|r| r.is_err()).count() as u64;
        if deferred > 0 {
            self.stats.borrow_mut().commits_deferred_to_recovery += deferred;
        }
    }

    /// Middleware failure recovery (§V-A): query every data source for
    /// prepared-but-undecided branches in *this coordinator's own gtrid
    /// space* and finish them according to the durable commit log — commit if
    /// a commit decision was flushed, abort otherwise. Returns
    /// `(committed, aborted)` branch counts.
    ///
    /// Scoped by gtrid owner: in a multi-coordinator deployment the data
    /// sources hold in-doubt branches from every coordinator, and finishing a
    /// *peer's* branch against the wrong commit log would abort transactions
    /// the peer durably committed. Adopting a dead peer's space is the
    /// explicit [`Middleware::recover_owned_by`].
    pub async fn recover(&self) -> (usize, usize) {
        self.recover_owned_by(self.config.node.index(), &Rc::clone(&self.commit_log))
            .await
    }

    /// Peer recovery: finish the in-doubt branches of coordinator `owner`'s
    /// gtrid space according to `decision_log` (the dead peer's sealed commit
    /// log). Drives this instance's own connections, so the commands carry
    /// *this* coordinator's (live) epoch and pass the data sources' fences.
    pub async fn recover_owned_by(
        &self,
        owner: u32,
        decision_log: &Rc<CommitLog>,
    ) -> (usize, usize) {
        let mut committed = 0;
        let mut aborted = 0;
        let dm = TraceNode::middleware(self.config.node.index());
        for conn in self.connections.values() {
            let prepared = conn.recover_prepared_owned_by(owner).await;
            for xid in prepared {
                // Recovery spans attach to the *original* transaction's trace
                // (keyed by its gtrid), even when this coordinator is a peer
                // adopting a dead owner's space — the trace of an in-doubt
                // transaction shows who finished it, and how.
                let rec_span =
                    geotp_telemetry::span_root(xid.gtrid, dm, SpanKind::Recovery, xid.bqual as u64);
                match decision_log.decision(xid.gtrid) {
                    Some(Decision::Commit) => {
                        if conn.commit(xid, false).await.is_ok() {
                            committed += 1;
                        }
                        geotp_telemetry::counter_add(
                            "mw.recovered",
                            "commit",
                            self.config.node.index(),
                            1,
                        );
                    }
                    Some(Decision::Abort) | None => {
                        let _ = conn.rollback(xid).await;
                        aborted += 1;
                        geotp_telemetry::counter_add(
                            "mw.recovered",
                            "abort",
                            self.config.node.index(),
                            1,
                        );
                    }
                }
                geotp_telemetry::span_end(rec_span);
            }
        }
        (committed, aborted)
    }

    // ------------------------------------------------------------------
    // Session front door: per-session registry + live transactions.
    //
    // The interactive path genuinely differs from the one-shot
    // `run_transaction` spec path: involvement, peer lists and the
    // decentralized-prepare trigger are computed *incrementally*, because an
    // interactive coordinator cannot see the future rounds of a live
    // session. Branches whose last touching round is over prepare only when
    // the client annotates a later round (or at commit, classically) — the
    // one-shot path's per-branch `is_last` oracle is exactly the knowledge a
    // real interactive middleware does not have.
    // ------------------------------------------------------------------

    /// Register a session (idempotent). Called by the session front door on
    /// `connect`; refreshes the session's idle clock, so reconnecting after a
    /// reap simply re-creates the registry entry.
    pub fn register_session(&self, session: u64) {
        let at = now();
        self.sessions
            .borrow_mut()
            .entry(session)
            .or_default()
            .last_active = at;
    }

    /// Evict every session that has no transaction in flight and has been
    /// idle for at least `idle_for`. Returns the reaped session ids (sorted,
    /// for deterministic traces). A reaped session's next `begin` fails with
    /// a clean retryable [`AbortReason::SessionExpired`]; reconnecting
    /// re-registers it.
    pub fn reap_idle_sessions(&self, idle_for: Duration) -> Vec<u64> {
        let cutoff = now();
        let mut reaped = Vec::new();
        self.sessions.borrow_mut().retain(|&id, state| {
            let idle =
                state.live_gtrid.is_none() && cutoff.duration_since(state.last_active) >= idle_for;
            if idle {
                reaped.push(id);
            }
            !idle
        });
        reaped.sort_unstable();
        reaped
    }

    /// This session's front-door state, if it ever connected.
    pub fn session_state(&self, session: u64) -> Option<SessionState> {
        self.sessions.borrow().get(&session).copied()
    }

    /// Number of sessions that have connected to this coordinator.
    pub fn active_sessions(&self) -> usize {
        self.sessions.borrow().len()
    }

    /// Number of live (in-flight) session transactions.
    pub fn live_transactions(&self) -> usize {
        self.sessions
            .borrow()
            .values()
            .filter(|s| s.live_gtrid.is_some())
            .count()
    }

    fn note_txn_begin(&self, session: u64, gtrid: u64) {
        let at = now();
        let mut sessions = self.sessions.borrow_mut();
        let state = sessions.entry(session).or_default();
        state.txns_begun += 1;
        state.live_gtrid = Some(gtrid);
        state.last_active = at;
    }

    fn note_txn_end(&self, session: u64, gtrid: u64) {
        if let Some(state) = self.sessions.borrow_mut().get_mut(&session) {
            if state.live_gtrid == Some(gtrid) {
                state.live_gtrid = None;
            }
            state.last_active = now();
        }
    }

    /// Begin a live transaction for `session`: the analysis slice is charged
    /// here (parse/route/plan happens as the statement stream arrives), a
    /// gtrid is allocated and the coordinator starts tracking the
    /// transaction. Fails with a retryable refusal on a crashed coordinator.
    pub(crate) async fn begin_live(self: &Rc<Self>, session: u64) -> Result<LiveTxn, TxnError> {
        if self.crashed.get() {
            return Err(TxnError::refused());
        }
        if !self.sessions.borrow().contains_key(&session) {
            // The idle-session reaper evicted this session: reject cleanly
            // (retryable) instead of silently resurrecting registry state.
            self.stats.borrow_mut().sessions_expired += 1;
            return Err(TxnError::session_expired());
        }
        let started = now();
        sleep(self.config.analysis_cost).await;
        let breakdown = LatencyBreakdown {
            analysis: self.config.analysis_cost,
            ..LatencyBreakdown::default()
        };
        let gtrid = self.alloc_gtrid();
        self.hub.register(gtrid);
        self.note_txn_begin(session, gtrid);
        let dm = TraceNode::middleware(self.config.node.index());
        geotp_telemetry::span_root_at(gtrid, dm, SpanKind::Txn, session, started);
        geotp_telemetry::span_leaf_closed(gtrid, dm, SpanKind::Analysis, 0, started);
        let mut scratch = self.take_scratch();
        scratch.keys.clear();
        scratch.involved.clear();
        scratch.started_branches.clear();
        Ok(LiveTxn {
            gtrid,
            session,
            started,
            breakdown,
            scratch,
            distributed: false,
            annotated: false,
            read_only: true,
            rounds: 0,
            concluded: false,
            #[cfg(feature = "history")]
            history: crate::metrics::TxnHistory::default(),
        })
    }

    /// Execute one statement round of a live transaction. `last` is the
    /// client's `/*+ last */` annotation: with a decentralized-prepare
    /// protocol it triggers the implicit prepare on every started branch —
    /// the round's participants prepare when their statement finishes, and
    /// branches whose last statement is already behind them get an empty
    /// end-of-branch trigger dispatched concurrently with the round.
    pub(crate) async fn execute_live(
        self: &Rc<Self>,
        txn: &mut LiveTxn,
        ops: &[ClientOp],
        last: bool,
    ) -> Result<Vec<geotp_storage::Row>, TxnError> {
        debug_assert!(!txn.concluded, "round on a concluded transaction");
        if self.crashed.get() {
            return Err(self.conclude_crashed(txn));
        }
        let round_started = now();
        let advanced = self.config.protocol.advanced();
        let round_idx = txn.rounds;
        txn.rounds += 1;
        let dm = TraceNode::middleware(self.config.node.index());
        let round_span =
            geotp_telemetry::span_scoped(txn.gtrid, dm, SpanKind::Round, round_idx as u64);

        // Merge this round's keys into the transaction's accumulated key set
        // and recompute the involvement (interactive transactions grow their
        // footprint one round at a time).
        let mut fresh_keys: Vec<GlobalKey> = Vec::new();
        for op in ops {
            let key = op.key();
            // Anything besides a plain read (writes, but also FOR UPDATE —
            // it takes an exclusive lock) disqualifies the transaction from
            // the read-only snapshot commit fast path.
            if !matches!(op, ClientOp::Read(_)) {
                txn.read_only = false;
            }
            if !txn.scratch.keys.contains(&key) {
                txn.scratch.keys.push(key);
                fresh_keys.push(key);
            }
            #[cfg(feature = "history")]
            if self.config.record_history {
                let set = match op {
                    ClientOp::Read(_) | ClientOp::ReadForUpdate(_) => &mut txn.history.reads,
                    _ => &mut txn.history.writes,
                };
                set.push(key);
            }
        }
        self.config
            .partitioner
            .involved_nodes_into(&txn.scratch.keys, &mut txn.scratch.involved);
        txn.distributed = txn.scratch.involved.len() > 1;
        if advanced && !fresh_keys.is_empty() {
            self.scheduler
                .footprint()
                .borrow_mut()
                .on_access_start(&fresh_keys);
        }

        let mut groups = self.config.partitioner.split(ops);
        if matches!(self.config.protocol, Protocol::Quro) {
            for (_, ops) in groups.iter_mut() {
                ops.sort_by_key(|op| op.is_write());
            }
        }
        let plans: Vec<BranchPlan> = groups
            .iter()
            .map(|(ds, ops)| BranchPlan {
                ds_index: *ds,
                keys: ops.iter().map(|op| op.key()).collect(),
            })
            .collect();
        let schedule = if matches!(self.config.protocol, Protocol::GeoTp { .. }) {
            if advanced && round_idx == 0 {
                match self.scheduler.schedule_with_admission(&plans) {
                    AdmissionDecision::Admit(schedule) => schedule,
                    AdmissionDecision::Reject { attempts } => {
                        let backoff = self.config.scheduler.retry_backoff * attempts;
                        sleep(backoff).await;
                        let mut outcome = TxnOutcome::aborted(
                            AbortReason::AdmissionRejected,
                            now().duration_since(txn.started),
                            txn.distributed,
                        );
                        outcome.gtrid = txn.gtrid;
                        let outcome = self.finish_live(txn, outcome);
                        return Err(TxnError::aborted(outcome, false));
                    }
                }
            } else {
                self.scheduler.schedule(&plans)
            }
        } else {
            Schedule {
                postpone: vec![Duration::ZERO; plans.len()],
                horizon: Duration::ZERO,
            }
        };
        self.stats.borrow_mut().total_postpone_micros += schedule
            .postpone
            .iter()
            .map(|d| d.as_micros() as u64)
            .sum::<u64>();

        let decentralized = self.config.protocol.decentralized_prepare() && last;
        let mut requests = Vec::with_capacity(groups.len());
        for (ds, ops) in &groups {
            requests.push(StatementRequest {
                xid: Xid::new(txn.gtrid, *ds),
                begin: !txn.scratch.started_branches.contains(ds),
                ops: ops.iter().map(|op| Self::to_ds_op(op)).collect(),
                is_last: decentralized,
                decentralized_prepare: decentralized,
                early_abort: self.config.protocol.early_abort() && txn.distributed,
                peers: if txn.distributed {
                    txn.scratch
                        .involved
                        .iter()
                        .copied()
                        .filter(|p| p != ds)
                        .collect()
                } else {
                    Vec::new()
                },
                trace_parent: round_span,
            });
        }
        for (ds, _) in &groups {
            if !txn.scratch.started_branches.contains(ds) {
                txn.scratch.started_branches.push(*ds);
            }
        }

        // The `/*+ last */` round triggers the decentralized prepare on every
        // started branch. Branches not participating in this round get an
        // empty end-of-branch statement, dispatched concurrently with the
        // round itself (their prepare overlaps the round's execution — the
        // interactive shape of the paper's O1).
        if decentralized {
            for ds in txn.scratch.started_branches.clone() {
                if groups.iter().any(|(g, _)| *g == ds) {
                    continue;
                }
                let conn = self.conn(ds).clone();
                let request = StatementRequest {
                    xid: Xid::new(txn.gtrid, ds),
                    begin: false,
                    ops: Vec::new(),
                    is_last: true,
                    decentralized_prepare: true,
                    early_abort: self.config.protocol.early_abort() && txn.distributed,
                    peers: txn
                        .scratch
                        .involved
                        .iter()
                        .copied()
                        .filter(|p| *p != ds)
                        .collect(),
                    trace_parent: round_span,
                };
                spawn(async move {
                    let _ = conn.execute(request).await;
                });
            }
            txn.annotated = true;
        }

        let mut responses = match self.config.protocol {
            Protocol::Chiller if groups.len() > 1 => self.dispatch_chiller(&groups, requests).await,
            _ => self.dispatch_parallel(&groups, requests, &schedule).await,
        };

        if self.crashed.get() {
            // Crashed while the round was in flight: no rollbacks are
            // dispatched (a dead process sends nothing); disconnect handling
            // and recovery clean the branches up.
            return Err(self.conclude_crashed(txn));
        }

        let mut failed_here = Vec::new();
        for ((ds, ops), response) in groups.iter().zip(&responses) {
            if advanced {
                txn.scratch.branch_keys.clear();
                txn.scratch
                    .branch_keys
                    .extend(ops.iter().map(|op| op.key()));
                self.scheduler
                    .footprint()
                    .borrow_mut()
                    .on_subtxn_feedback(&txn.scratch.branch_keys, response.local_execution_latency);
            }
            if !response.outcome.is_ok() {
                failed_here.push(*ds);
            }
        }

        if !failed_here.is_empty() {
            geotp_telemetry::span_end(round_span);
            txn.breakdown.execution += now().duration_since(round_started);
            let started_branches = txn.scratch.started_branches.clone();
            self.abort_started_branches(txn.gtrid, &started_branches, &failed_here)
                .await;
            let mut outcome = TxnOutcome::aborted(
                AbortReason::ExecutionFailed,
                now().duration_since(txn.started),
                txn.distributed,
            );
            outcome.gtrid = txn.gtrid;
            outcome.breakdown = txn.breakdown;
            let outcome = self.finish_live(txn, outcome);
            return Err(TxnError::aborted(outcome, false));
        }

        let mut rows = Vec::new();
        for response in &mut responses {
            if let StatementOutcome::Ok { rows: r } = &mut response.outcome {
                rows.append(r);
            }
        }
        geotp_telemetry::span_end(round_span);
        txn.breakdown.execution += now().duration_since(round_started);
        Ok(rows)
    }

    /// Commit a live transaction: with a decentralized-prepare protocol and
    /// an annotated last round the coordinator only waits for the pushed
    /// votes; otherwise it drives the classic explicit prepare round.
    pub(crate) async fn commit_live(self: &Rc<Self>, txn: &mut LiveTxn) -> TxnOutcome {
        debug_assert!(!txn.concluded, "commit on a concluded transaction");
        if self.crashed.get() {
            return self.conclude_crashed(txn).outcome;
        }
        if txn.scratch.involved.is_empty() {
            // An empty transaction commits trivially — nothing was decided.
            let mut outcome = TxnOutcome {
                gtrid: txn.gtrid,
                committed: true,
                latency: now().duration_since(txn.started),
                distributed: false,
                ..TxnOutcome::default()
            };
            outcome.breakdown = txn.breakdown;
            return self.finish_live(txn, outcome);
        }
        if self.config.snapshot_reads && txn.read_only && !txn.annotated {
            // Snapshot-read fast path: every branch only read, so there is no
            // decision to make durable — no prepare round, no log flush, just
            // one parallel read-only commit per started branch. No commit
            // dispatch span either: the trace oracle's flush-before-dispatch
            // rule is about decisions, and this path decides nothing.
            let commit_started = now();
            let gtrid = txn.gtrid;
            let started = txn.scratch.started_branches.clone();
            let results = join_all(
                started
                    .iter()
                    .map(|ds| {
                        let conn = self.conn(*ds).clone();
                        let xid = Xid::new(gtrid, *ds);
                        async move { conn.commit_read_only(xid).await }
                    })
                    .collect(),
            )
            .await;
            txn.breakdown.commit += now().duration_since(commit_started);
            let committed = results.iter().all(Result::is_ok);
            geotp_telemetry::counter_add("mw.readonly_commits", "", self.config.node.index(), 1);
            let outcome = TxnOutcome {
                gtrid,
                committed,
                abort_reason: (!committed).then_some(AbortReason::ExecutionFailed),
                latency: now().duration_since(txn.started),
                breakdown: txn.breakdown,
                distributed: txn.distributed,
                read_only: true,
                ..TxnOutcome::default()
            };
            return self.finish_live(txn, outcome);
        }
        let involved = txn.scratch.involved.clone();
        let commit_outcome = self
            .commit_phase(
                txn.gtrid,
                &involved,
                txn.distributed,
                txn.annotated,
                &mut txn.breakdown,
            )
            .await;
        let outcome = TxnOutcome {
            gtrid: txn.gtrid,
            committed: commit_outcome.is_ok(),
            abort_reason: commit_outcome.err(),
            latency: now().duration_since(txn.started),
            breakdown: txn.breakdown,
            distributed: txn.distributed,
            ..TxnOutcome::default()
        };
        self.finish_live(txn, outcome)
    }

    /// Roll a live transaction back at the client's request.
    pub(crate) async fn rollback_live(self: &Rc<Self>, txn: &mut LiveTxn) -> TxnOutcome {
        debug_assert!(!txn.concluded, "rollback on a concluded transaction");
        if self.crashed.get() {
            return self.conclude_crashed(txn).outcome;
        }
        let rollback_started = now();
        let started = txn.scratch.started_branches.clone();
        join_all(
            started
                .iter()
                .map(|ds| {
                    let conn = self.conn(*ds).clone();
                    let xid = Xid::new(txn.gtrid, *ds);
                    async move {
                        let _ = conn.rollback(xid).await;
                    }
                })
                .collect(),
        )
        .await;
        txn.breakdown.commit += now().duration_since(rollback_started);
        let mut outcome = TxnOutcome::aborted(
            AbortReason::ClientRollback,
            now().duration_since(txn.started),
            txn.distributed,
        );
        outcome.gtrid = txn.gtrid;
        outcome.breakdown = txn.breakdown;
        self.finish_live(txn, outcome)
    }

    /// The client's connection dropped mid-transaction: conclude the
    /// bookkeeping immediately and roll the orphaned branches back in the
    /// background (the middleware's TCP-reset handling; nobody is waiting
    /// for the result). A crashed coordinator dispatches nothing — its
    /// branches die via disconnect handling and recovery, as always.
    pub(crate) fn abandon_live(self: &Rc<Self>, mut txn: LiveTxn) {
        if txn.concluded {
            return;
        }
        let mut outcome = TxnOutcome::aborted(
            AbortReason::ClientDisconnected,
            now().duration_since(txn.started),
            txn.distributed,
        );
        outcome.gtrid = txn.gtrid;
        outcome.breakdown = txn.breakdown;
        let gtrid = txn.gtrid;
        let cleanup: Vec<(DsConnection, Xid)> = txn
            .scratch
            .started_branches
            .iter()
            .map(|ds| (self.conn(*ds).clone(), Xid::new(gtrid, *ds)))
            .collect();
        let _ = self.finish_live(&mut txn, outcome);
        if !cleanup.is_empty() && !self.crashed.get() {
            spawn(async move {
                join_all(
                    cleanup
                        .into_iter()
                        .map(|(conn, xid)| async move {
                            let _ = conn.rollback(xid).await;
                        })
                        .collect(),
                )
                .await;
            });
        }
    }

    /// Conclude a live transaction whose coordinator crashed under it.
    fn conclude_crashed(&self, txn: &mut LiveTxn) -> TxnError {
        let mut outcome = TxnOutcome::aborted(
            AbortReason::CoordinatorCrashed,
            now().duration_since(txn.started),
            txn.distributed,
        );
        outcome.gtrid = txn.gtrid;
        outcome.breakdown = txn.breakdown;
        let outcome = self.finish_live(txn, outcome);
        TxnError::aborted(outcome, true)
    }

    /// Bookkeeping common to every live-transaction exit path (the live
    /// analogue of [`Middleware::finish_txn`]).
    #[cfg_attr(not(feature = "history"), allow(unused_mut))]
    fn finish_live(&self, txn: &mut LiveTxn, mut outcome: TxnOutcome) -> TxnOutcome {
        debug_assert!(!txn.concluded);
        txn.concluded = true;
        self.hub.unregister(txn.gtrid);
        if self.config.protocol.advanced() {
            self.scheduler
                .footprint()
                .borrow_mut()
                .on_txn_finish(&txn.scratch.keys, outcome.committed);
        }
        #[cfg(feature = "history")]
        if self.config.record_history && outcome.gtrid != 0 {
            let mut history = std::mem::take(&mut txn.history);
            history.reads.sort();
            history.reads.dedup();
            history.writes.sort();
            history.writes.dedup();
            outcome.history = history;
        }
        self.stats.borrow_mut().record(&outcome);
        self.trace_txn_exit(txn.gtrid, &outcome);
        self.note_txn_end(txn.session, txn.gtrid);
        self.return_scratch(std::mem::take(&mut txn.scratch));
        outcome
    }

    /// Spawn a background task running `count` transactions from an async
    /// generator closure — a small helper for driver loops in examples.
    pub fn spawn_client<F, Fut>(
        self: &Rc<Self>,
        count: usize,
        mut make: F,
    ) -> geotp_simrt::JoinHandle<Vec<TxnOutcome>>
    where
        F: FnMut(usize) -> Fut + 'static,
        Fut: std::future::Future<Output = TransactionSpec> + 'static,
    {
        let mw = Rc::clone(self);
        spawn(async move {
            let mut outcomes = Vec::with_capacity(count);
            for i in 0..count {
                let spec = make(i).await;
                outcomes.push(mw.run_transaction(&spec).await);
            }
            outcomes
        })
    }
}
