//! Hotspot footprint: per-record statistics powering the high-contention
//! optimizations (paper §IV-C).
//!
//! For each hot record `r` the footprint maintains the four fields the paper
//! defines:
//!
//! * `w_lat(r)`  — weighted average latency of subtransactions completing
//!   operations on `r` (updated with Eq. 4),
//! * `t_cnt(r)`  — total number of transactions that have accessed `r`,
//! * `c_cnt(r)`  — number of committed transactions that accessed `r`,
//! * `a_cnt(r)`  — number of transactions currently accessing `r`.
//!
//! Records live in an [`AvlMap`] (point/range lookups in `O(log n)`) and an
//! LRU list evicts cold records so memory stays bounded.

use std::collections::VecDeque;
use std::time::Duration;

use crate::avl::{AvlHandle, AvlMap};
use crate::ops::GlobalKey;

/// Statistics for one hot record.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HotRecordStats {
    /// Weighted average completion latency attributed to this record (seconds).
    pub w_lat: f64,
    /// Total transactions that accessed the record.
    pub t_cnt: u64,
    /// Committed transactions that accessed the record.
    pub c_cnt: u64,
    /// Transactions currently accessing the record.
    pub a_cnt: u64,
    /// Monotonic touch counter used for LRU eviction.
    last_touch: u64,
}

impl HotRecordStats {
    fn new(touch: u64) -> Self {
        Self {
            w_lat: 0.0,
            t_cnt: 0,
            c_cnt: 0,
            a_cnt: 0,
            last_touch: touch,
        }
    }

    /// The success ratio `c_cnt / t_cnt`, defaulting to 1 when unknown.
    pub fn success_ratio(&self) -> f64 {
        if self.t_cnt == 0 {
            1.0
        } else {
            self.c_cnt as f64 / self.t_cnt as f64
        }
    }
}

/// Configuration of the hotspot footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotConfig {
    /// Maximum number of records tracked before LRU eviction kicks in.
    pub capacity: usize,
    /// EWMA coefficient `α` of Eq. 4 (weight of the previous estimate).
    pub alpha: f64,
    /// Scale-down factor applied to forecasts before they feed the scheduler
    /// (the paper suggests scaling predictions down when they prove
    /// inaccurate, §IV-C).
    pub forecast_scale: f64,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        Self {
            capacity: 10_000,
            alpha: 0.7,
            forecast_scale: 1.0,
        }
    }
}

/// The hotspot footprint table.
pub struct HotspotFootprint {
    config: HotspotConfig,
    records: AvlMap<GlobalKey, HotRecordStats>,
    /// LRU queue of `(key, touch, handle)` entries; stale entries are skipped
    /// on eviction. The arena handle makes eviction *validation* O(1) — a
    /// slot probe instead of the AVL lookup that used to cost ~11% inclusive
    /// at the paper-default YCSB config (one tree descent per popped entry).
    lru: VecDeque<(GlobalKey, u64, AvlHandle)>,
    touch_counter: u64,
    evictions: u64,
    /// Reusable buffer for [`HotspotFootprint::on_subtxn_feedback`].
    feedback_scratch: Vec<f64>,
}

impl HotspotFootprint {
    /// Create a footprint with the given configuration.
    pub fn new(config: HotspotConfig) -> Self {
        Self {
            config,
            records: AvlMap::new(),
            lru: VecDeque::new(),
            touch_counter: 0,
            evictions: 0,
            feedback_scratch: Vec::new(),
        }
    }

    /// Create a footprint with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(HotspotConfig::default())
    }

    /// Number of records currently tracked.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are tracked.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of LRU evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Snapshot of a record's statistics.
    pub fn stats(&self, key: GlobalKey) -> Option<HotRecordStats> {
        self.records.get(&key).copied()
    }

    /// Bump the touch clock for `key` and apply `f` to its stats entry
    /// (creating it first if needed) — one tree traversal per call.
    fn touch_with(&mut self, key: GlobalKey, f: impl FnOnce(&mut HotRecordStats)) {
        self.touch_counter += 1;
        let touch = self.touch_counter;
        let before = self.records.len();
        let (handle, entry) = self
            .records
            .get_or_insert_with_handle(key, || HotRecordStats::new(touch));
        entry.last_touch = touch;
        f(entry);
        let inserted = self.records.len() != before;
        self.lru.push_back((key, touch, handle));
        if inserted {
            self.maybe_evict();
        }
    }

    fn maybe_evict(&mut self) {
        while self.records.len() > self.config.capacity {
            let Some((candidate, touch, handle)) = self.lru.pop_front() else {
                return;
            };
            // O(1) validation through the arena handle: only evict if the
            // entry still exists (generation matches), this LRU entry is its
            // latest touch, and nothing is currently accessing it. Only a
            // *passing* validation pays the O(log n) tree removal.
            let evict = match self.records.peek_handle(handle) {
                Some((_, stats)) => stats.last_touch == touch && stats.a_cnt == 0,
                None => false,
            };
            if evict {
                self.records.remove(&candidate);
                self.evictions += 1;
            }
        }
    }

    /// Register that a transaction is about to access `keys`
    /// (increments `t_cnt` and `a_cnt`).
    pub fn on_access_start(&mut self, keys: &[GlobalKey]) {
        for key in keys {
            self.touch_with(*key, |entry| {
                entry.t_cnt += 1;
                entry.a_cnt += 1;
            });
        }
    }

    /// Feedback after one subtransaction completes: distribute its measured
    /// local execution latency across the records it accessed using the
    /// weighted-average update of Eq. 4.
    pub fn on_subtxn_feedback(&mut self, keys: &[GlobalKey], local_execution_latency: Duration) {
        if keys.is_empty() {
            return;
        }
        let lel = local_execution_latency.as_secs_f64();
        // Weight w_r = w_lat(r) / Σ w_lat(r_k); fall back to an even split when
        // no history exists yet. The per-key latencies are gathered once into
        // a reusable scratch buffer so each key costs one lookup for the sum
        // and one upsert for the update, not four tree walks.
        let mut lats = std::mem::take(&mut self.feedback_scratch);
        lats.clear();
        lats.extend(
            keys.iter()
                .map(|k| self.records.get(k).map(|s| s.w_lat).unwrap_or(0.0)),
        );
        let sum: f64 = lats.iter().sum();
        let alpha = self.config.alpha;
        for (key, w_lat) in keys.iter().zip(&lats) {
            let weight = if sum > 0.0 {
                w_lat / sum
            } else {
                1.0 / keys.len() as f64
            };
            let observed = lel * weight;
            self.touch_with(*key, |entry| {
                if entry.w_lat == 0.0 {
                    entry.w_lat = observed;
                } else {
                    entry.w_lat = alpha * entry.w_lat + (1.0 - alpha) * observed;
                }
            });
        }
        self.feedback_scratch = lats;
    }

    /// A transaction finished (committed or aborted): decrement `a_cnt` and,
    /// on commit, increment `c_cnt` for every record it accessed.
    pub fn on_txn_finish(&mut self, keys: &[GlobalKey], committed: bool) {
        for key in keys {
            if let Some(entry) = self.records.get_mut(key) {
                entry.a_cnt = entry.a_cnt.saturating_sub(1);
                if committed {
                    entry.c_cnt += 1;
                }
            }
        }
    }

    /// Eq. 5: forecast the local execution latency of a subtransaction that
    /// will access `keys` by summing the per-record weighted latencies.
    pub fn forecast_local_latency(&self, keys: &[GlobalKey]) -> Duration {
        let total: f64 = keys
            .iter()
            .map(|k| self.records.get(k).map(|s| s.w_lat).unwrap_or(0.0))
            .sum();
        Duration::from_secs_f64((total * self.config.forecast_scale).max(0.0))
    }

    /// Eq. 9: predicted probability that a transaction accessing `keys` will
    /// successfully acquire all its locks (1 − abort rate).
    pub fn success_probability(&self, keys: &[GlobalKey]) -> f64 {
        let mut p = 1.0;
        for key in keys {
            if let Some(stats) = self.records.get(key) {
                let queue = stats.a_cnt.saturating_sub(1);
                if queue > 0 {
                    p *= stats.success_ratio().powi(queue as i32);
                }
            }
        }
        p
    }

    /// Eq. 9 as stated in the paper: the predicted abort rate.
    pub fn abort_probability(&self, keys: &[GlobalKey]) -> f64 {
        1.0 - self.success_probability(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_storage::TableId;

    fn gk(row: u64) -> GlobalKey {
        GlobalKey::new(TableId(0), row)
    }

    #[test]
    fn access_lifecycle_updates_counters() {
        let mut fp = HotspotFootprint::with_defaults();
        fp.on_access_start(&[gk(1), gk(2)]);
        fp.on_access_start(&[gk(1)]);
        let s1 = fp.stats(gk(1)).unwrap();
        assert_eq!((s1.t_cnt, s1.a_cnt, s1.c_cnt), (2, 2, 0));
        fp.on_txn_finish(&[gk(1)], true);
        fp.on_txn_finish(&[gk(1), gk(2)], false);
        let s1 = fp.stats(gk(1)).unwrap();
        assert_eq!((s1.t_cnt, s1.a_cnt, s1.c_cnt), (2, 0, 1));
        let s2 = fp.stats(gk(2)).unwrap();
        assert_eq!((s2.t_cnt, s2.a_cnt, s2.c_cnt), (1, 0, 0));
    }

    #[test]
    fn feedback_builds_latency_forecast() {
        let mut fp = HotspotFootprint::with_defaults();
        let keys = [gk(1), gk(2)];
        // First observation splits evenly: 5ms each.
        fp.on_subtxn_feedback(&keys, Duration::from_millis(10));
        let forecast = fp.forecast_local_latency(&keys);
        assert_eq!(forecast, Duration::from_millis(10));
        // Repeated identical observations keep the forecast stable.
        for _ in 0..10 {
            fp.on_subtxn_feedback(&keys, Duration::from_millis(10));
        }
        let forecast = fp.forecast_local_latency(&keys);
        assert!((forecast.as_secs_f64() - 0.010).abs() < 1e-6);
        // A key with no history contributes nothing.
        assert_eq!(fp.forecast_local_latency(&[gk(99)]), Duration::ZERO);
    }

    #[test]
    fn forecast_scale_reduces_prediction() {
        let mut fp = HotspotFootprint::new(HotspotConfig {
            forecast_scale: 0.5,
            ..HotspotConfig::default()
        });
        fp.on_subtxn_feedback(&[gk(1)], Duration::from_millis(20));
        assert_eq!(
            fp.forecast_local_latency(&[gk(1)]),
            Duration::from_millis(10)
        );
    }

    #[test]
    fn abort_probability_follows_eq9() {
        let mut fp = HotspotFootprint::with_defaults();
        // Build history: 10 accesses, 5 commits on record 1.
        for _ in 0..10 {
            fp.on_access_start(&[gk(1)]);
        }
        for i in 0..10 {
            fp.on_txn_finish(&[gk(1)], i < 5);
        }
        // No one is currently accessing the record: abort probability is 0.
        assert!(fp.abort_probability(&[gk(1)]).abs() < 1e-9);

        // Three concurrent accessors: queue length for a newcomer is a_cnt-1=2.
        fp.on_access_start(&[gk(1)]);
        fp.on_access_start(&[gk(1)]);
        fp.on_access_start(&[gk(1)]);
        let stats = fp.stats(gk(1)).unwrap();
        assert_eq!(stats.a_cnt, 3);
        // success ratio is now 5/13 (t_cnt grew to 13).
        let expected_success = (5.0f64 / 13.0).powi(2);
        assert!((fp.success_probability(&[gk(1)]) - expected_success).abs() < 1e-9);
        assert!((fp.abort_probability(&[gk(1)]) - (1.0 - expected_success)).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_bounds_memory() {
        let mut fp = HotspotFootprint::new(HotspotConfig {
            capacity: 100,
            ..HotspotConfig::default()
        });
        for i in 0..1000 {
            fp.on_access_start(&[gk(i)]);
            fp.on_txn_finish(&[gk(i)], true);
        }
        assert!(fp.len() <= 100, "len {} exceeds capacity", fp.len());
        assert!(fp.evictions() >= 900);
        // The most recently touched record is still present.
        assert!(fp.stats(gk(999)).is_some());
    }

    #[test]
    fn records_in_use_are_not_evicted() {
        let mut fp = HotspotFootprint::new(HotspotConfig {
            capacity: 10,
            ..HotspotConfig::default()
        });
        fp.on_access_start(&[gk(0)]); // stays in use
        for i in 1..500 {
            fp.on_access_start(&[gk(i)]);
            fp.on_txn_finish(&[gk(i)], true);
        }
        assert!(
            fp.stats(gk(0)).is_some(),
            "in-use record must survive eviction"
        );
    }
}
