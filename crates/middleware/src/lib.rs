//! # geotp-middleware — the database middleware layer
//!
//! This crate implements the first layer of the GeoTP architecture (paper
//! §III-A): the proxy that accepts client transactions, rewrites them into
//! per-data-source subtransactions, coordinates the XA protocol and runs the
//! three GeoTP optimizations:
//!
//! * **O1 — decentralized prepare & early abort** ([`coordinator`], together
//!   with the geo-agents in `geotp-datasource`),
//! * **O2 — latency-aware scheduling** ([`scheduler`], Eq. 3),
//! * **O3 — high-contention heuristics** ([`hotspot`] + [`scheduler`],
//!   Eq. 4/5/8/9 and Algorithm 2's late transaction scheduling).
//!
//! The same coordinator also implements the baselines the paper compares
//! against (SSP, SSP(local), QURO, Chiller) as alternative [`Protocol`]s so
//! the ablation study is a pure configuration sweep.

pub mod avl;
pub mod commit_log;
pub mod coordinator;
pub mod hotspot;
pub mod metrics;
pub mod notify_hub;
pub mod ops;
pub mod parser;
pub mod router;
pub mod scheduler;
pub mod session;

pub use avl::{AvlHandle, AvlMap};
pub use commit_log::{CommitLog, Decision, Fenced};
pub use coordinator::{gtrid_owner, Middleware, MiddlewareConfig, Protocol, SessionState};
pub use hotspot::{HotRecordStats, HotspotConfig, HotspotFootprint};
pub use metrics::{
    AbortReason, LatencyBreakdown, MiddlewareStats, TxnHistory, TxnOutcome, ABORT_REASONS,
};
pub use ops::{ClientOp, GlobalKey, TransactionSpec};
pub use parser::{Catalog, ParseError, ParsedStatement, Rewriter, SqlParser, TxnControl};
pub use router::Partitioner;
pub use scheduler::{AdmissionDecision, BranchPlan, GeoScheduler, Schedule, SchedulerConfig};
pub use session::{
    MiddlewareSessionService, RetriedOutcome, RetryPolicy, RoundResult, Session, SessionLink,
    SessionService, SqlScript, Txn, TxnError, TxnHandle,
};

#[cfg(test)]
mod tests {
    //! End-to-end middleware tests on a small simulated cluster, checking the
    //! latency structure the paper's motivating example (Fig. 2 / Fig. 4)
    //! predicts for each protocol.

    use std::rc::Rc;
    use std::time::Duration;

    use geotp_datasource::{DataSource, DataSourceConfig, Dialect};
    use geotp_net::{Network, NetworkBuilder, NodeId};
    use geotp_simrt::Runtime;
    use geotp_storage::{CostModel, EngineConfig, Row, TableId};

    use super::*;

    const ROWS_PER_NODE: u64 = 1000;

    fn gk(row: u64) -> GlobalKey {
        GlobalKey::new(TableId(0), row)
    }

    /// Build a 2-data-source cluster: RTT(DS0)=10ms, RTT(DS1)=100ms, zero
    /// local execution cost so latency arithmetic is exact.
    fn cluster(protocol: Protocol) -> (Rc<Network>, Vec<Rc<DataSource>>, Rc<Middleware>) {
        let dm = NodeId::middleware(0);
        let ds0 = NodeId::data_source(0);
        let ds1 = NodeId::data_source(1);
        let net = NetworkBuilder::new(7)
            .default_lan_rtt(Duration::ZERO)
            .static_link(dm, ds0, Duration::from_millis(10))
            .static_link(dm, ds1, Duration::from_millis(100))
            .static_link(ds0, ds1, Duration::from_millis(100))
            .build();
        let mut sources = Vec::new();
        for node in [ds0, ds1] {
            let mut cfg = DataSourceConfig::new(node);
            cfg.agent_lan_rtt = Duration::ZERO;
            cfg.engine = EngineConfig {
                lock_wait_timeout: Duration::from_secs(5),
                cost: CostModel::zero(),
                record_history: false,
                ..EngineConfig::default()
            };
            cfg.dialect = if node == ds0 {
                Dialect::Postgres
            } else {
                Dialect::MySql
            };
            let ds = DataSource::new(cfg, Rc::clone(&net));
            for row in 0..ROWS_PER_NODE {
                let global = node.index() as u64 * ROWS_PER_NODE + row;
                ds.load(gk(global).storage_key(), Row::int(1000));
            }
            sources.push(ds);
        }
        for a in &sources {
            for b in &sources {
                if a.index() != b.index() {
                    a.register_peer(b);
                }
            }
        }
        let mut cfg = MiddlewareConfig::new(
            dm,
            protocol,
            Partitioner::Range {
                rows_per_node: ROWS_PER_NODE,
                nodes: 2,
            },
        );
        cfg.analysis_cost = Duration::ZERO;
        cfg.log_flush_cost = Duration::ZERO;
        let mw = Middleware::connect(cfg, Rc::clone(&net), &sources, None);
        (net, sources, mw)
    }

    fn transfer_spec() -> TransactionSpec {
        // A cross-data-source transfer: key 1 lives on DS0, key 1001 on DS1.
        TransactionSpec::single_round(vec![
            ClientOp::add(gk(1), -100),
            ClientOp::add(gk(1001), 100),
        ])
    }

    #[test]
    fn ssp_distributed_transaction_takes_three_wan_round_trips() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, sources, mw) = cluster(Protocol::SspXa);
            let outcome = mw.run_transaction(&transfer_spec()).await;
            assert!(outcome.committed);
            assert!(outcome.distributed);
            // execution (100ms) + prepare (100ms) + commit (100ms)
            assert_eq!(outcome.latency, Duration::from_millis(300));
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(1).storage_key())
                    .unwrap()
                    .int_value(),
                Some(900)
            );
            assert_eq!(
                sources[1]
                    .engine()
                    .peek(gk(1001).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1100)
            );
        });
    }

    #[test]
    fn geotp_distributed_transaction_takes_two_wan_round_trips() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, sources, mw) = cluster(Protocol::geotp());
            let outcome = mw.run_transaction(&transfer_spec()).await;
            assert!(outcome.committed);
            // Decentralized prepare removes the explicit prepare round trip:
            // execution (100ms, prepare vote arrives with it) + commit (100ms).
            assert_eq!(outcome.latency, Duration::from_millis(200));
            assert_eq!(outcome.breakdown.prepare_wait, Duration::ZERO);
            assert_eq!(sources[0].stats().decentralized_prepares, 1);
            assert_eq!(sources[1].stats().decentralized_prepares, 1);
            // Data is atomically updated.
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(1).storage_key())
                    .unwrap()
                    .int_value(),
                Some(900)
            );
            assert_eq!(
                sources[1]
                    .engine()
                    .peek(gk(1001).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1100)
            );
        });
    }

    #[test]
    fn geotp_latency_scheduling_shrinks_fast_branch_contention_span() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            // Compare the contention span on the *fast* data source (DS0).
            async fn span_for(protocol: Protocol) -> Duration {
                let (_net, sources, mw) = cluster(protocol);
                let outcome = mw.run_transaction(&transfer_spec()).await;
                assert!(outcome.committed);
                let stats = sources[0].engine().stats();
                assert_eq!(stats.contention_span_samples, 1);
                Duration::from_micros(stats.total_contention_span_micros)
            }
            let ssp_span = span_for(Protocol::SspXa).await;
            let o1_span = span_for(Protocol::geotp_o1()).await;
            let geotp_span = span_for(Protocol::geotp_o1_o2()).await;

            // SSP: the fast branch holds its lock across prepare+commit of the
            // slow branch (~2.5 WAN RTTs of the slow node ≈ 245ms).
            assert!(
                ssp_span >= Duration::from_millis(200),
                "SSP span {ssp_span:?}"
            );
            // O1 alone reduces the span to the longest RTT involved (100ms),
            // exactly as Fig. 4a describes.
            assert!(
                o1_span >= Duration::from_millis(100) && o1_span < ssp_span,
                "O1 span {o1_span:?}"
            );
            // O2 postpones the fast branch so its span collapses to ~its own
            // RTT + commit half-trip (≈ 60ms, vs 100ms RTT of the slow node).
            assert!(
                geotp_span < Duration::from_millis(70),
                "GeoTP span {geotp_span:?} should be well below the slow RTT"
            );
        });
    }

    #[test]
    fn centralized_transactions_commit_in_one_round_trip() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            for protocol in [Protocol::SspXa, Protocol::geotp(), Protocol::Chiller] {
                let (_net, _sources, mw) = cluster(protocol);
                let spec = TransactionSpec::single_round(vec![
                    ClientOp::Read(gk(5)),
                    ClientOp::add(gk(6), 10),
                ]);
                let outcome = mw.run_transaction(&spec).await;
                assert!(outcome.committed, "{}", protocol.name());
                assert!(!outcome.distributed);
                // execution (10ms) + one-phase commit (10ms)
                assert_eq!(
                    outcome.latency,
                    Duration::from_millis(20),
                    "{} centralized latency",
                    protocol.name()
                );
                assert_eq!(outcome.rows.len(), 2);
            }
        });
    }

    #[test]
    fn chiller_sequences_inner_region_after_outer() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, sources, mw) = cluster(Protocol::Chiller);
            let outcome = mw.run_transaction(&transfer_spec()).await;
            assert!(outcome.committed);
            // Outer branch (100ms RTT) executes first, then the inner branch
            // (10ms): execution ≈ 110ms, commit 100ms.
            assert_eq!(outcome.latency, Duration::from_millis(210));
            // The inner (fast) branch's lock span is tiny: it acquires locks
            // only after the outer branch finished executing.
            let span = sources[0].engine().stats().total_contention_span_micros;
            assert!(span <= 60_000, "chiller inner span {span}us");
        });
    }

    #[test]
    fn quro_reorders_writes_after_reads() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, _sources, mw) = cluster(Protocol::Quro);
            // Mixed read/write batch on one data source.
            let spec = TransactionSpec::single_round(vec![
                ClientOp::add(gk(1), 1),
                ClientOp::Read(gk(2)),
                ClientOp::add(gk(3), 1),
                ClientOp::Read(gk(4)),
            ]);
            let outcome = mw.run_transaction(&spec).await;
            assert!(outcome.committed);
            // Reads come back first because QURO moved them ahead of writes.
            assert_eq!(outcome.rows.len(), 4);
            assert_eq!(outcome.rows[0].int_value(), Some(1000));
            assert_eq!(outcome.rows[1].int_value(), Some(1000));
            // The writes' AddInt results follow.
            assert_eq!(outcome.rows[2].int_value(), Some(1001));
            assert_eq!(outcome.rows[3].int_value(), Some(1001));
        });
    }

    #[test]
    fn ssp_local_commits_without_prepare() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, _sources, mw) = cluster(Protocol::SspLocal);
            let outcome = mw.run_transaction(&transfer_spec()).await;
            assert!(outcome.committed);
            // execution (100ms) + one-phase commit (100ms): no prepare round.
            assert_eq!(outcome.latency, Duration::from_millis(200));
            assert_eq!(outcome.breakdown.prepare_wait, Duration::ZERO);
        });
    }

    #[test]
    fn lock_conflict_aborts_one_transaction_and_other_commits() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let dm = NodeId::middleware(0);
            let ds0 = NodeId::data_source(0);
            let ds1 = NodeId::data_source(1);
            let net = NetworkBuilder::new(7)
                .default_lan_rtt(Duration::ZERO)
                .static_link(dm, ds0, Duration::from_millis(10))
                .static_link(dm, ds1, Duration::from_millis(100))
                .static_link(ds0, ds1, Duration::from_millis(100))
                .build();
            let mut sources = Vec::new();
            for node in [ds0, ds1] {
                let mut cfg = DataSourceConfig::new(node);
                cfg.agent_lan_rtt = Duration::ZERO;
                cfg.engine = EngineConfig {
                    // Short lock timeout so the conflict resolves quickly.
                    lock_wait_timeout: Duration::from_millis(150),
                    cost: CostModel::zero(),
                    record_history: false,
                    ..EngineConfig::default()
                };
                let ds = DataSource::new(cfg, Rc::clone(&net));
                for row in 0..ROWS_PER_NODE {
                    let global = node.index() as u64 * ROWS_PER_NODE + row;
                    ds.load(gk(global).storage_key(), Row::int(0));
                }
                sources.push(ds);
            }
            for a in &sources {
                for b in &sources {
                    if a.index() != b.index() {
                        a.register_peer(b);
                    }
                }
            }
            let mut cfg = MiddlewareConfig::new(
                dm,
                Protocol::geotp_o1(),
                Partitioner::Range {
                    rows_per_node: ROWS_PER_NODE,
                    nodes: 2,
                },
            );
            cfg.analysis_cost = Duration::ZERO;
            cfg.log_flush_cost = Duration::ZERO;
            let mw = Middleware::connect(cfg, Rc::clone(&net), &sources, None);

            // Two concurrent distributed transactions over the same keys, in
            // opposite order, forcing a deadlock resolved by lock timeout.
            let spec_a = TransactionSpec::multi_round(vec![
                vec![ClientOp::add(gk(1), 1)],
                vec![ClientOp::add(gk(1001), 1)],
            ]);
            let spec_b = TransactionSpec::multi_round(vec![
                vec![ClientOp::add(gk(1001), 1)],
                vec![ClientOp::add(gk(1), 1)],
            ]);
            let mw_a = Rc::clone(&mw);
            let mw_b = Rc::clone(&mw);
            let a = geotp_simrt::spawn(async move { mw_a.run_transaction(&spec_a).await });
            let b = geotp_simrt::spawn(async move { mw_b.run_transaction(&spec_b).await });
            let (ra, rb) = (a.await, b.await);
            let committed = [&ra, &rb].iter().filter(|o| o.committed).count();
            assert!(
                committed <= 1,
                "at most one of the deadlocked transactions commits"
            );
            let stats = mw.stats();
            assert_eq!(stats.committed + stats.aborted, 2);
            // Atomicity: the two keys must have identical values (both updates
            // from a committed transaction applied, none from an aborted one).
            let v0 = sources[0]
                .engine()
                .peek(gk(1).storage_key())
                .unwrap()
                .int_value()
                .unwrap();
            let v1 = sources[1]
                .engine()
                .peek(gk(1001).storage_key())
                .unwrap()
                .int_value()
                .unwrap();
            assert_eq!(v0, v1, "atomicity violated: {v0} vs {v1}");
        });
    }

    #[test]
    fn run_sql_transfers_money_across_data_sources() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, sources, mw) = cluster(Protocol::geotp());
            // Table "usertable" gets TableId(0) because it is the first table
            // registered in the middleware's catalog.
            let outcome = mw
                .run_sql(
                    "BEGIN; \
                     UPDATE usertable SET bal = bal - 50 WHERE id = 1; \
                     UPDATE usertable SET bal = bal + 50 WHERE id = 1001 /*+ last */; \
                     COMMIT;",
                )
                .await
                .unwrap();
            assert!(outcome.committed);
            assert!(outcome.distributed);
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(1).storage_key())
                    .unwrap()
                    .int_value(),
                Some(950)
            );
            assert_eq!(
                sources[1]
                    .engine()
                    .peek(gk(1001).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1050)
            );
        });
    }

    #[test]
    fn middleware_recovery_completes_in_doubt_transactions() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (net, sources, mw) = cluster(Protocol::SspXa);
            // Manually drive two branches to the prepared state, as if the
            // middleware crashed right after flushing a COMMIT decision for
            // gtrid 42 and before dispatching it.
            let gtrid = 42;
            for (i, ds) in sources.iter().enumerate() {
                let xid = geotp_storage::Xid::new(gtrid, i as u32);
                let conn =
                    geotp_datasource::DsConnection::new(mw.node(), Rc::clone(ds), Rc::clone(&net));
                conn.execute(geotp_datasource::StatementRequest {
                    xid,
                    begin: true,
                    ops: vec![geotp_datasource::DsOperation::AddInt {
                        key: gk(i as u64 * ROWS_PER_NODE).storage_key(),
                        col: 0,
                        delta: 500,
                    }],
                    is_last: false,
                    decentralized_prepare: false,
                    early_abort: false,
                    peers: vec![1 - i as u32],
                    trace_parent: None,
                })
                .await;
                assert_eq!(
                    conn.prepare(xid).await,
                    geotp_datasource::PrepareVote::Prepared
                );
            }
            mw.commit_log()
                .flush_decision(gtrid, Decision::Commit)
                .await;

            // A second in-doubt transaction without a logged decision: it must
            // be aborted by recovery.
            let gtrid2 = 43;
            let xid2 = geotp_storage::Xid::new(gtrid2, 0);
            let conn0 = geotp_datasource::DsConnection::new(
                mw.node(),
                Rc::clone(&sources[0]),
                Rc::clone(&net),
            );
            conn0
                .execute(geotp_datasource::StatementRequest {
                    xid: xid2,
                    begin: true,
                    ops: vec![geotp_datasource::DsOperation::AddInt {
                        key: gk(7).storage_key(),
                        col: 0,
                        delta: 9,
                    }],
                    is_last: false,
                    decentralized_prepare: false,
                    early_abort: false,
                    peers: vec![1],
                    trace_parent: None,
                })
                .await;
            conn0.prepare(xid2).await;

            // "Restart": a new middleware instance sharing the same durable
            // commit log recovers the in-doubt branches.
            let mut cfg = MiddlewareConfig::new(
                mw.node(),
                Protocol::SspXa,
                Partitioner::Range {
                    rows_per_node: ROWS_PER_NODE,
                    nodes: 2,
                },
            );
            cfg.analysis_cost = Duration::ZERO;
            cfg.log_flush_cost = Duration::ZERO;
            let recovered = Middleware::connect(
                cfg,
                Rc::clone(&net),
                &sources,
                Some(Rc::clone(mw.commit_log())),
            );
            let (committed, aborted) = recovered.recover().await;
            assert_eq!(committed, 2, "both branches of gtrid 42 commit");
            assert_eq!(aborted, 1, "the undecided gtrid 43 branch aborts");
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(0).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1500)
            );
            assert_eq!(
                sources[1]
                    .engine()
                    .peek(gk(ROWS_PER_NODE).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1500)
            );
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(7).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1000)
            );
        });
    }

    #[test]
    fn coordinator_crash_after_flush_is_finished_by_successor() {
        // The §V-A drill, end to end through the public hooks: the
        // coordinator crashes deterministically right after flushing its
        // COMMIT decision; a successor sharing the commit log replays it.
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (net, sources, mw) = cluster(Protocol::geotp());
            mw.crash_after_next_flush();
            let outcome = mw.run_transaction(&transfer_spec()).await;
            assert!(!outcome.committed, "client saw no outcome");
            assert_eq!(outcome.abort_reason, Some(AbortReason::CoordinatorCrashed));
            assert!(mw.is_crashed());
            // New transactions are refused outright.
            let refused = mw.run_transaction(&transfer_spec()).await;
            assert_eq!(refused.abort_reason, Some(AbortReason::CoordinatorCrashed));

            // Data sources notice the disconnect: unprepared branches abort,
            // prepared ones stay in doubt.
            for ds in &sources {
                ds.coordinator_disconnected().await;
                assert_eq!(ds.recover_prepared().len(), 1);
            }

            // Successor: same node, same durable log, gtrid space advanced
            // past the predecessor's.
            let mut cfg = MiddlewareConfig::new(
                mw.node(),
                Protocol::geotp(),
                Partitioner::Range {
                    rows_per_node: ROWS_PER_NODE,
                    nodes: 2,
                },
            );
            cfg.analysis_cost = Duration::ZERO;
            cfg.log_flush_cost = Duration::ZERO;
            cfg.first_txn_seq = mw.next_txn_seq();
            let successor = Middleware::connect(
                cfg,
                Rc::clone(&net),
                &sources,
                Some(Rc::clone(mw.commit_log())),
            );
            let (committed, aborted) = successor.recover().await;
            assert_eq!((committed, aborted), (2, 0));
            // The transfer's effect landed atomically despite the crash.
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(1).storage_key())
                    .unwrap()
                    .int_value(),
                Some(900)
            );
            assert_eq!(
                sources[1]
                    .engine()
                    .peek(gk(1001).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1100)
            );
            // And the successor's own transactions use fresh gtrids.
            assert!(successor.run_transaction(&transfer_spec()).await.committed);
        });
    }

    #[test]
    fn lost_vote_notification_times_out_and_aborts() {
        // A participant's prepare vote is dropped by the (chaos) network.
        // The coordinator must not wait forever: after the decision-wait
        // timeout the missing vote counts as a no-vote, the transaction
        // aborts, and recovery cleans up the participant's dangling
        // prepared branch.
        struct DropNotifications {
            from: geotp_net::NodeId,
            to: geotp_net::NodeId,
        }
        impl geotp_net::FaultInjector for DropNotifications {
            fn blocked_until(
                &self,
                _from: geotp_net::NodeId,
                _to: geotp_net::NodeId,
                _now: geotp_simrt::SimInstant,
            ) -> Option<geotp_simrt::SimInstant> {
                None
            }
            fn unreliable_copies(
                &self,
                from: geotp_net::NodeId,
                to: geotp_net::NodeId,
                _now: geotp_simrt::SimInstant,
            ) -> u32 {
                if (from, to) == (self.from, self.to) {
                    0
                } else {
                    1
                }
            }
        }

        let mut rt = Runtime::new();
        rt.block_on(async {
            let (net, sources, _) = cluster(Protocol::geotp());
            // Rebuild the middleware with a short decision-wait timeout.
            let mut cfg = MiddlewareConfig::new(
                NodeId::middleware(0),
                Protocol::geotp(),
                Partitioner::Range {
                    rows_per_node: ROWS_PER_NODE,
                    nodes: 2,
                },
            );
            cfg.analysis_cost = Duration::ZERO;
            cfg.log_flush_cost = Duration::ZERO;
            cfg.decision_wait_timeout = Duration::from_millis(500);
            let mw = Middleware::connect(cfg, Rc::clone(&net), &sources, None);
            net.set_fault_injector(Rc::new(DropNotifications {
                from: NodeId::data_source(1),
                to: NodeId::middleware(0),
            }));

            let outcome = mw.run_transaction(&transfer_spec()).await;
            assert!(!outcome.committed);
            assert_eq!(outcome.abort_reason, Some(AbortReason::PrepareFailed));
            assert_eq!(mw.stats().decision_wait_timeouts, 1);
            // ds1's branch prepared fine — only its vote was lost — so it
            // dangles until recovery aborts it via the logged Abort decision.
            assert_eq!(sources[1].recover_prepared().len(), 1);
            let (committed, aborted) = mw.recover().await;
            assert_eq!((committed, aborted), (0, 1));
            // Atomicity held: neither key changed.
            for (ds, key) in [(0usize, 1u64), (1, 1001)] {
                assert_eq!(
                    sources[ds]
                        .engine()
                        .peek(gk(key).storage_key())
                        .unwrap()
                        .int_value(),
                    Some(1000)
                );
            }
        });
    }

    #[test]
    fn session_replay_matches_one_shot_latency_and_effects() {
        // The spec-replay adapter drives the live path; with a co-located
        // client it must cost exactly what the one-shot front door costs.
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, _sources, oneshot_mw) = cluster(Protocol::geotp());
            let oneshot = oneshot_mw.run_transaction(&transfer_spec()).await;

            let (_net2, sources2, session_mw) = cluster(Protocol::geotp());
            let mut session = session::SessionService::connect(&session_mw, 7);
            let outcome = session.run_spec(&transfer_spec()).await;
            assert!(outcome.committed);
            assert_eq!(
                outcome.latency, oneshot.latency,
                "co-located session replay is free"
            );
            assert_eq!(outcome.breakdown.prepare_wait, Duration::ZERO);
            assert_eq!(outcome.breakdown.client_rtt, Duration::ZERO);
            assert_eq!(
                sources2[0]
                    .engine()
                    .peek(gk(1).storage_key())
                    .unwrap()
                    .int_value(),
                Some(900)
            );
            let state = session_mw.session_state(7).unwrap();
            assert_eq!(state.txns_begun, 1);
            assert_eq!(state.live_gtrid, None, "the transaction concluded");
            assert_eq!(session_mw.active_sessions(), 1);
        });
    }

    #[test]
    fn interactive_multi_round_txn_commits_through_live_handles() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, sources, mw) = cluster(Protocol::geotp());
            let mut session = session::SessionService::connect(&mw, 1);
            let mut txn = session.begin().await.unwrap();
            assert!(txn.gtrid() != 0);
            assert_eq!(mw.live_transactions(), 1);
            // Round 1: debit on the fast source; the branch stays open (and
            // locked) while the client decides what to do next.
            let r1 = txn.execute(&[ClientOp::add(gk(1), -100)]).await.unwrap();
            assert_eq!(r1.rows.len(), 1);
            txn.think(Duration::from_millis(25)).await;
            // Round 2, annotated: credit on the slow source; the fast branch
            // gets its end-of-branch prepare trigger concurrently.
            let r2 = txn
                .execute_last(&[ClientOp::add(gk(1001), 100)])
                .await
                .unwrap();
            assert_eq!(r2.rows.len(), 1);
            let outcome = txn.commit().await;
            assert!(outcome.committed);
            assert!(outcome.distributed);
            assert_eq!(outcome.breakdown.think_time, Duration::from_millis(25));
            // Decentralized prepare ran on both branches — no explicit
            // prepare round trip.
            assert_eq!(sources[0].stats().decentralized_prepares, 1);
            assert_eq!(sources[1].stats().decentralized_prepares, 1);
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(1).storage_key())
                    .unwrap()
                    .int_value(),
                Some(900)
            );
            assert_eq!(
                sources[1]
                    .engine()
                    .peek(gk(1001).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1100)
            );
            assert_eq!(mw.live_transactions(), 0);
        });
    }

    #[test]
    fn per_statement_client_rtt_lands_in_the_breakdown() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let dm = NodeId::middleware(0);
            let client = NodeId::client(0);
            let ds0 = NodeId::data_source(0);
            let ds1 = NodeId::data_source(1);
            let net = NetworkBuilder::new(7)
                .default_lan_rtt(Duration::ZERO)
                .static_link(client, dm, Duration::from_millis(20))
                .static_link(dm, ds0, Duration::from_millis(10))
                .static_link(dm, ds1, Duration::from_millis(100))
                .static_link(ds0, ds1, Duration::from_millis(100))
                .build();
            let mut sources = Vec::new();
            for node in [ds0, ds1] {
                let mut cfg = DataSourceConfig::new(node);
                cfg.agent_lan_rtt = Duration::ZERO;
                cfg.engine = EngineConfig {
                    lock_wait_timeout: Duration::from_secs(5),
                    cost: CostModel::zero(),
                    record_history: false,
                    ..EngineConfig::default()
                };
                let ds = DataSource::new(cfg, Rc::clone(&net));
                for row in 0..ROWS_PER_NODE {
                    let global = node.index() as u64 * ROWS_PER_NODE + row;
                    ds.load(gk(global).storage_key(), Row::int(1000));
                }
                sources.push(ds);
            }
            for a in &sources {
                for b in &sources {
                    if a.index() != b.index() {
                        a.register_peer(b);
                    }
                }
            }
            let mut cfg = MiddlewareConfig::new(
                dm,
                Protocol::geotp(),
                Partitioner::Range {
                    rows_per_node: ROWS_PER_NODE,
                    nodes: 2,
                },
            );
            cfg.analysis_cost = Duration::ZERO;
            cfg.log_flush_cost = Duration::ZERO;
            let mw = Middleware::connect(cfg, Rc::clone(&net), &sources, None);

            let mut session = session::SessionService::connect(&mw.session_service_from(client), 3);
            let outcome = session.run_spec(&transfer_spec()).await;
            assert!(outcome.committed);
            // One 20 ms client round trip each for begin, the single round
            // and commit, on top of the middleware's 200 ms.
            assert_eq!(outcome.breakdown.client_rtt, Duration::from_millis(60));
            assert_eq!(outcome.latency, Duration::from_millis(260));
        });
    }

    #[test]
    fn abandoned_txn_is_rolled_back_and_locks_released() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, sources, mw) = cluster(Protocol::geotp());
            let mut session = session::SessionService::connect(&mw, 9);
            let mut txn = session.begin().await.unwrap();
            txn.execute(&[ClientOp::add(gk(1), -500)]).await.unwrap();
            // The client crashes mid-transaction: drop without conclusion.
            txn.abandon();
            // The middleware's connection-loss cleanup rolls the branch back.
            geotp_simrt::sleep(Duration::from_millis(50)).await;
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(1).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1000),
                "the abandoned write must be undone"
            );
            // The lock is free again: a conflicting transaction commits.
            let outcome = mw
                .run_transaction(&TransactionSpec::single_round(vec![ClientOp::add(
                    gk(1),
                    7,
                )]))
                .await;
            assert!(outcome.committed);
            let stats = mw.stats();
            assert_eq!(stats.aborted, 1, "the abandoned txn is booked as aborted");
            assert_eq!(mw.live_transactions(), 0);
        });
    }

    #[test]
    fn session_rollback_undoes_nothing_and_reports_client_rollback() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, sources, mw) = cluster(Protocol::geotp());
            let mut session = session::SessionService::connect(&mw, 4);
            let mut txn = session.begin().await.unwrap();
            txn.execute(&[ClientOp::add(gk(2), 999)]).await.unwrap();
            let outcome = txn.rollback().await;
            assert!(!outcome.committed);
            assert_eq!(outcome.abort_reason, Some(AbortReason::ClientRollback));
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(2).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1000)
            );
        });
    }

    #[test]
    fn session_sql_front_door_runs_scripts_and_statements() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, sources, mw) = cluster(Protocol::geotp());
            let mut session = session::SessionService::connect(&mw, 5);
            // Whole-script path (parsed through the shared plan cache).
            let outcome = session
                .run_sql(
                    "BEGIN; \
                     UPDATE usertable SET bal = bal - 50 WHERE id = 1; \
                     UPDATE usertable SET bal = bal + 50 WHERE id = 1001 /*+ last */; \
                     COMMIT;",
                )
                .await
                .unwrap();
            assert!(outcome.committed);
            assert!(outcome.distributed);
            // Per-statement path with the /*+ last */ annotation.
            let mut txn = session.begin().await.unwrap();
            txn.execute_sql("UPDATE usertable SET bal = bal - 1 WHERE id = 1")
                .await
                .unwrap();
            txn.execute_sql("UPDATE usertable SET bal = bal + 1 WHERE id = 1001 /*+ last */")
                .await
                .unwrap();
            let outcome = txn.commit().await;
            assert!(outcome.committed);
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(1).storage_key())
                    .unwrap()
                    .int_value(),
                Some(949)
            );
            assert_eq!(
                sources[1]
                    .engine()
                    .peek(gk(1001).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1051)
            );
        });
    }

    #[test]
    fn sql_plan_cache_keeps_hot_entries_under_capacity_pressure() {
        // Regression test for the wholesale-clear policy: a hot script must
        // survive a stream of one-shot scripts overflowing the cache.
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (net, sources, _) = cluster(Protocol::geotp());
            let mut cfg = MiddlewareConfig::new(
                NodeId::middleware(0),
                Protocol::geotp(),
                Partitioner::Range {
                    rows_per_node: ROWS_PER_NODE,
                    nodes: 2,
                },
            );
            cfg.analysis_cost = Duration::ZERO;
            cfg.log_flush_cost = Duration::ZERO;
            cfg.sql_cache_capacity = 4;
            let mw = Middleware::connect(cfg, net, &sources, None);
            let hot = "BEGIN; UPDATE usertable SET bal = bal + 1 WHERE id = 1 /*+ last */; COMMIT;";
            assert!(mw.run_sql(hot).await.unwrap().committed);
            for i in 0..16u64 {
                // Touch the hot script between fillers, as a workload would.
                assert!(mw.run_sql(hot).await.unwrap().committed);
                let filler = format!(
                    "BEGIN; UPDATE usertable SET bal = bal + 1 WHERE id = {} /*+ last */; COMMIT;",
                    100 + i
                );
                assert!(mw.run_sql(&filler).await.unwrap().committed);
            }
            assert!(mw.sql_cache_len() <= 4, "cache stays bounded");
            assert!(
                mw.sql_cache_contains(hot),
                "the hot script must survive capacity pressure (second chance)"
            );
        });
    }

    #[test]
    fn stats_accumulate_across_transactions() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, _sources, mw) = cluster(Protocol::geotp());
            for i in 0..5u64 {
                let spec = TransactionSpec::single_round(vec![
                    ClientOp::add(gk(i), 1),
                    ClientOp::add(gk(1000 + i), 1),
                ]);
                assert!(mw.run_transaction(&spec).await.committed);
            }
            let stats = mw.stats();
            assert_eq!(stats.committed, 5);
            assert_eq!(stats.distributed_committed, 5);
            assert_eq!(stats.aborted, 0);
            assert_eq!(stats.decentralized_prepares, 5);
            assert!(stats.total_postpone_micros >= 5 * 80_000);
            assert!(stats.mean_commit_latency() >= Duration::from_millis(190));
        });
    }

    /// Build the 2-source cluster with `SnapshotRead` engines and the
    /// coordinator's snapshot-read fast path enabled.
    fn snapshot_cluster() -> (Rc<Network>, Vec<Rc<DataSource>>, Rc<Middleware>) {
        let dm = NodeId::middleware(0);
        let ds0 = NodeId::data_source(0);
        let ds1 = NodeId::data_source(1);
        let net = NetworkBuilder::new(7)
            .default_lan_rtt(Duration::ZERO)
            .static_link(dm, ds0, Duration::from_millis(10))
            .static_link(dm, ds1, Duration::from_millis(100))
            .static_link(ds0, ds1, Duration::from_millis(100))
            .build();
        let mut sources = Vec::new();
        for node in [ds0, ds1] {
            let mut cfg = DataSourceConfig::new(node);
            cfg.agent_lan_rtt = Duration::ZERO;
            cfg.engine = EngineConfig {
                lock_wait_timeout: Duration::from_secs(5),
                cost: CostModel::zero(),
                record_history: false,
                isolation: geotp_storage::IsolationLevel::SnapshotRead,
                ..EngineConfig::default()
            };
            let ds = DataSource::new(cfg, Rc::clone(&net));
            for row in 0..ROWS_PER_NODE {
                let global = node.index() as u64 * ROWS_PER_NODE + row;
                ds.load(gk(global).storage_key(), Row::int(1000));
            }
            sources.push(ds);
        }
        for a in &sources {
            for b in &sources {
                if a.index() != b.index() {
                    a.register_peer(b);
                }
            }
        }
        let mut cfg = MiddlewareConfig::new(
            dm,
            Protocol::geotp(),
            Partitioner::Range {
                rows_per_node: ROWS_PER_NODE,
                nodes: 2,
            },
        );
        cfg.analysis_cost = Duration::ZERO;
        cfg.log_flush_cost = Duration::ZERO;
        cfg.snapshot_reads = true;
        let mw = Middleware::connect(cfg, Rc::clone(&net), &sources, None);
        (net, sources, mw)
    }

    #[test]
    fn snapshot_read_fast_path_commits_unannotated_read_only_txns() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, _sources, mw) = snapshot_cluster();
            // An unannotated cross-source scan: both branches only read, so
            // the coordinator must skip prepare and the WAL entirely.
            let scan = TransactionSpec::multi_round(vec![
                vec![ClientOp::Read(gk(1)), ClientOp::Read(gk(1001))],
                vec![ClientOp::Read(gk(2))],
            ])
            .without_annotation();
            let mut session = session::SessionService::connect(&mw, 11);
            let outcome = session.run_spec(&scan).await;
            assert!(outcome.committed);
            assert!(outcome.read_only, "the fast path must mark the outcome");
            assert_eq!(outcome.rows.len(), 3);
            assert!(outcome.rows.iter().all(|r| r.int_value() == Some(1000)));
            assert_eq!(
                outcome.breakdown.prepare_wait,
                Duration::ZERO,
                "read-only commits never prepare"
            );
        });
    }

    #[test]
    fn one_write_disqualifies_a_txn_from_the_read_only_fast_path() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, sources, mw) = snapshot_cluster();
            let spec = TransactionSpec::multi_round(vec![
                vec![ClientOp::Read(gk(1))],
                vec![ClientOp::add(gk(1), 5)],
                // Read-your-writes: the third round re-reads the row the
                // transaction itself just wrote.
                vec![ClientOp::Read(gk(1))],
            ])
            .without_annotation();
            let mut session = session::SessionService::connect(&mw, 12);
            let outcome = session.run_spec(&spec).await;
            assert!(outcome.committed);
            assert!(!outcome.read_only, "a write forces the full commit path");
            assert_eq!(
                outcome.rows.last().and_then(|r| r.int_value()),
                Some(1005),
                "a transaction reads its own uncommitted write"
            );
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(1).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1005)
            );
        });
    }
}
