//! Client-facing transaction model.
//!
//! Applications submit transactions to the middleware either as SQL text (see
//! [`crate::parser`]) or directly as structured operations, which is what the
//! workload generators do. A transaction is a sequence of *interactive
//! rounds*; each round is a batch of operations the client sends together
//! (the paper's YCSB transactions are a single round of 5 operations, TPC-C
//! transactions use a handful of rounds).

use geotp_storage::{Key, Row, TableId};

/// A key in the global (pre-routing) keyspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalKey {
    /// Logical table.
    pub table: TableId,
    /// Logical row id across all data sources.
    pub row: u64,
}

impl GlobalKey {
    /// Construct a global key.
    pub const fn new(table: TableId, row: u64) -> Self {
        Self { table, row }
    }

    /// The storage-level key used on whichever data source this row routes to.
    /// Routing never re-keys records, so this is the identity mapping.
    pub const fn storage_key(&self) -> Key {
        Key::new(self.table, self.row)
    }
}

/// One client-level operation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOp {
    /// Read a record (shared lock).
    Read(GlobalKey),
    /// Read a record with an exclusive lock (`SELECT ... FOR UPDATE`).
    ReadForUpdate(GlobalKey),
    /// Add `delta` to the integer in column `col` of the record.
    AddInt {
        /// Record to update.
        key: GlobalKey,
        /// Column index.
        col: usize,
        /// Amount to add.
        delta: i64,
    },
    /// Overwrite a record.
    Write {
        /// Record to write.
        key: GlobalKey,
        /// New value.
        row: Row,
    },
    /// Insert a new record.
    Insert {
        /// Record to insert.
        key: GlobalKey,
        /// Value.
        row: Row,
    },
    /// Delete a record.
    Delete(GlobalKey),
}

impl ClientOp {
    /// Convenience constructor for the common balance-style update.
    pub fn add(key: GlobalKey, delta: i64) -> Self {
        ClientOp::AddInt { key, col: 0, delta }
    }

    /// The record this operation touches.
    pub fn key(&self) -> GlobalKey {
        match self {
            ClientOp::Read(k) | ClientOp::ReadForUpdate(k) | ClientOp::Delete(k) => *k,
            ClientOp::AddInt { key, .. }
            | ClientOp::Write { key, .. }
            | ClientOp::Insert { key, .. } => *key,
        }
    }

    /// Whether the operation takes an exclusive lock.
    pub fn is_write(&self) -> bool {
        !matches!(self, ClientOp::Read(_))
    }
}

/// A complete transaction description submitted by a client.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransactionSpec {
    /// Interactive rounds, each a batch of operations sent together.
    pub rounds: Vec<Vec<ClientOp>>,
    /// Whether the client annotates the last statement (the paper's
    /// `/* last statement */` hint). When `true`, the middleware can trigger
    /// the decentralized prepare at the end of the final round.
    pub annotate_last: bool,
}

impl TransactionSpec {
    /// A single-round transaction with the last-statement annotation set,
    /// which is how the YCSB workloads are issued.
    pub fn single_round(ops: Vec<ClientOp>) -> Self {
        Self {
            rounds: vec![ops],
            annotate_last: true,
        }
    }

    /// A multi-round (interactive) transaction.
    pub fn multi_round(rounds: Vec<Vec<ClientOp>>) -> Self {
        Self {
            rounds,
            annotate_last: true,
        }
    }

    /// Disable the last-statement annotation (clients that cannot annotate
    /// fall back to the classic prepare path even under GeoTP).
    pub fn without_annotation(mut self) -> Self {
        self.annotate_last = false;
        self
    }

    /// All operations across rounds, in order.
    pub fn all_ops(&self) -> impl Iterator<Item = &ClientOp> {
        self.rounds.iter().flatten()
    }

    /// Every distinct key the transaction touches.
    pub fn keys(&self) -> Vec<GlobalKey> {
        let mut keys = Vec::new();
        self.collect_keys_into(&mut keys);
        keys
    }

    /// Collect the distinct keys into a reusable buffer (cleared first) —
    /// the allocation-free variant of [`TransactionSpec::keys`] the
    /// coordinator's hot path uses.
    pub fn collect_keys_into(&self, buf: &mut Vec<GlobalKey>) {
        buf.clear();
        buf.extend(self.all_ops().map(ClientOp::key));
        buf.sort();
        buf.dedup();
    }

    /// Total number of operations.
    pub fn op_count(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// Whether the spec contains no operations.
    pub fn is_empty(&self) -> bool {
        self.op_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gk(row: u64) -> GlobalKey {
        GlobalKey::new(TableId(0), row)
    }

    #[test]
    fn op_key_and_write_classification() {
        assert!(!ClientOp::Read(gk(1)).is_write());
        assert!(ClientOp::ReadForUpdate(gk(1)).is_write());
        assert!(ClientOp::add(gk(2), 5).is_write());
        assert_eq!(ClientOp::Delete(gk(3)).key(), gk(3));
    }

    #[test]
    fn spec_keys_are_deduplicated_and_sorted() {
        let spec = TransactionSpec::single_round(vec![
            ClientOp::add(gk(5), 1),
            ClientOp::Read(gk(2)),
            ClientOp::add(gk(5), 2),
        ]);
        assert_eq!(spec.keys(), vec![gk(2), gk(5)]);
        assert_eq!(spec.op_count(), 3);
        assert!(spec.annotate_last);
    }

    #[test]
    fn multi_round_and_annotation_toggle() {
        let spec = TransactionSpec::multi_round(vec![
            vec![ClientOp::Read(gk(1))],
            vec![ClientOp::add(gk(1), 3)],
        ])
        .without_annotation();
        assert_eq!(spec.rounds.len(), 2);
        assert!(!spec.annotate_last);
        assert!(!spec.is_empty());
    }
}
