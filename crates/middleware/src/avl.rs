//! A self-balancing AVL tree map.
//!
//! The paper (§IV-C) organises hot-record statistics in an AVL tree so that
//! point and range lookups cost `O(log n)`; we implement the same structure
//! rather than reusing `BTreeMap` so the substrate matches the paper's
//! description (and so the microbenchmarks can compare the two).
//!
//! Nodes live in an **arena** (`Vec<Node>` addressed by `u32` index) with a
//! free list, not in one `Box` per node: the hotspot footprint churns through
//! insert/evict cycles at workload rate, and an arena turns that churn from a
//! malloc/free pair per touch into two index moves while keeping the tree
//! contiguous in memory.

use std::cmp::Ordering;

/// Sentinel index for "no child".
const NIL: u32 = u32::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    height: i32,
    left: u32,
    right: u32,
    /// Bumped every time the slot is freed, so an [`AvlHandle`] minted for a
    /// previous tenant can never validate against a later one.
    generation: u32,
}

/// A stable O(1) handle to one live entry's arena slot. Rotations never move
/// nodes between slots, so the handle stays valid for the entry's whole
/// lifetime; removal bumps the slot's generation, invalidating every
/// outstanding handle. The hotspot footprint's LRU stores these so eviction
/// validation is a slot probe instead of a tree descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvlHandle {
    slot: u32,
    generation: u32,
}

/// An ordered map backed by an arena-allocated AVL tree.
pub struct AvlMap<K, V> {
    nodes: Vec<Node<K, V>>,
    /// Indices of `nodes` slots whose contents were removed and may be reused.
    /// The slot's key/value are left in place until overwritten by the next
    /// insertion (they are logically dead).
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<K: Ord, V> Default for AvlMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> AvlMap<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node_height(&self, idx: u32) -> i32 {
        if idx == NIL {
            0
        } else {
            self.nodes[idx as usize].height
        }
    }

    fn update_height(&mut self, idx: u32) {
        let h = 1 + self
            .node_height(self.nodes[idx as usize].left)
            .max(self.node_height(self.nodes[idx as usize].right));
        self.nodes[idx as usize].height = h;
    }

    fn balance_factor(&self, idx: u32) -> i32 {
        let n = &self.nodes[idx as usize];
        self.node_height(n.left) - self.node_height(n.right)
    }

    fn rotate_right(&mut self, idx: u32) -> u32 {
        let new_root = self.nodes[idx as usize].left;
        debug_assert_ne!(new_root, NIL, "rotate_right requires a left child");
        self.nodes[idx as usize].left = self.nodes[new_root as usize].right;
        self.update_height(idx);
        self.nodes[new_root as usize].right = idx;
        self.update_height(new_root);
        new_root
    }

    fn rotate_left(&mut self, idx: u32) -> u32 {
        let new_root = self.nodes[idx as usize].right;
        debug_assert_ne!(new_root, NIL, "rotate_left requires a right child");
        self.nodes[idx as usize].right = self.nodes[new_root as usize].left;
        self.update_height(idx);
        self.nodes[new_root as usize].left = idx;
        self.update_height(new_root);
        new_root
    }

    fn rebalance(&mut self, idx: u32) -> u32 {
        self.update_height(idx);
        let bf = self.balance_factor(idx);
        if bf > 1 {
            let left = self.nodes[idx as usize].left;
            if self.balance_factor(left) < 0 {
                let rotated = self.rotate_left(left);
                self.nodes[idx as usize].left = rotated;
            }
            return self.rotate_right(idx);
        }
        if bf < -1 {
            let right = self.nodes[idx as usize].right;
            if self.balance_factor(right) > 0 {
                let rotated = self.rotate_right(right);
                self.nodes[idx as usize].right = rotated;
            }
            return self.rotate_left(idx);
        }
        idx
    }

    /// Place a new node in the arena (reusing a freed slot when available).
    fn alloc_node(&mut self, key: K, value: V) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.nodes[idx as usize];
                slot.key = key;
                slot.value = value;
                slot.height = 1;
                slot.left = NIL;
                slot.right = NIL;
                // The generation was bumped when the slot was freed; the new
                // tenant keeps the bumped value.
                idx
            }
            None => {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node {
                    key,
                    value,
                    height: 1,
                    left: NIL,
                    right: NIL,
                    generation: 0,
                });
                idx
            }
        }
    }

    /// Insert a key/value pair, returning the previous value for the key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (root, replaced) = self.insert_at(self.root, key, value);
        self.root = root;
        if replaced.is_none() {
            self.len += 1;
        }
        replaced
    }

    fn insert_at(&mut self, idx: u32, key: K, value: V) -> (u32, Option<V>) {
        if idx == NIL {
            return (self.alloc_node(key, value), None);
        }
        let replaced = match key.cmp(&self.nodes[idx as usize].key) {
            Ordering::Less => {
                let (child, replaced) = self.insert_at(self.nodes[idx as usize].left, key, value);
                self.nodes[idx as usize].left = child;
                replaced
            }
            Ordering::Greater => {
                let (child, replaced) = self.insert_at(self.nodes[idx as usize].right, key, value);
                self.nodes[idx as usize].right = child;
                replaced
            }
            Ordering::Equal => {
                return (
                    idx,
                    Some(std::mem::replace(
                        &mut self.nodes[idx as usize].value,
                        value,
                    )),
                )
            }
        };
        if replaced.is_some() {
            (idx, replaced)
        } else {
            (self.rebalance(idx), replaced)
        }
    }

    /// Mutable access to the entry for `key`, inserting `make()` first when
    /// the key is absent — a single tree traversal either way (the hot-path
    /// upsert the hotspot footprint leans on).
    pub fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> &mut V {
        self.get_or_insert_with_handle(key, make).1
    }

    /// Like [`AvlMap::get_or_insert_with`], additionally returning the
    /// entry's stable [`AvlHandle`] for later O(1) re-access via
    /// [`AvlMap::peek_handle`].
    pub fn get_or_insert_with_handle(
        &mut self,
        key: K,
        make: impl FnOnce() -> V,
    ) -> (AvlHandle, &mut V) {
        let (root, found, inserted) = self.get_or_insert_at(self.root, key, make);
        self.root = root;
        if inserted {
            self.len += 1;
        }
        let node = &mut self.nodes[found as usize];
        (
            AvlHandle {
                slot: found,
                generation: node.generation,
            },
            &mut node.value,
        )
    }

    /// O(1) access to the entry `handle` was minted for: a direct arena-slot
    /// probe, no tree descent. Returns `None` when the entry has since been
    /// removed (the slot's generation moved on).
    pub fn peek_handle(&self, handle: AvlHandle) -> Option<(&K, &V)> {
        let node = self.nodes.get(handle.slot as usize)?;
        if node.generation != handle.generation {
            return None;
        }
        Some((&node.key, &node.value))
    }

    fn get_or_insert_at(&mut self, idx: u32, key: K, make: impl FnOnce() -> V) -> (u32, u32, bool) {
        if idx == NIL {
            let node = self.alloc_node(key, make());
            return (node, node, true);
        }
        let (found, inserted) = match key.cmp(&self.nodes[idx as usize].key) {
            Ordering::Less => {
                let (child, found, inserted) =
                    self.get_or_insert_at(self.nodes[idx as usize].left, key, make);
                self.nodes[idx as usize].left = child;
                (found, inserted)
            }
            Ordering::Greater => {
                let (child, found, inserted) =
                    self.get_or_insert_at(self.nodes[idx as usize].right, key, make);
                self.nodes[idx as usize].right = child;
                (found, inserted)
            }
            Ordering::Equal => return (idx, idx, false),
        };
        if inserted {
            (self.rebalance(idx), found, inserted)
        } else {
            // Nothing changed shape; skip the height/balance bookkeeping.
            (idx, found, inserted)
        }
    }

    fn find(&self, key: &K) -> u32 {
        let mut cur = self.root;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            match key.cmp(&node.key) {
                Ordering::Less => cur = node.left,
                Ordering::Greater => cur = node.right,
                Ordering::Equal => return cur,
            }
        }
        NIL
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let idx = self.find(key);
        if idx == NIL {
            None
        } else {
            Some(&self.nodes[idx as usize].value)
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = self.find(key);
        if idx == NIL {
            None
        } else {
            Some(&mut self.nodes[idx as usize].value)
        }
    }

    /// Whether the map contains `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key) != NIL
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        V: Default,
    {
        let (root, removed) = self.remove_at(self.root, key);
        self.root = root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_at(&mut self, idx: u32, key: &K) -> (u32, Option<V>)
    where
        V: Default,
    {
        if idx == NIL {
            return (NIL, None);
        }
        match key.cmp(&self.nodes[idx as usize].key) {
            Ordering::Less => {
                let (child, removed) = self.remove_at(self.nodes[idx as usize].left, key);
                self.nodes[idx as usize].left = child;
                if removed.is_some() {
                    (self.rebalance(idx), removed)
                } else {
                    (idx, removed)
                }
            }
            Ordering::Greater => {
                let (child, removed) = self.remove_at(self.nodes[idx as usize].right, key);
                self.nodes[idx as usize].right = child;
                if removed.is_some() {
                    (self.rebalance(idx), removed)
                } else {
                    (idx, removed)
                }
            }
            Ordering::Equal => {
                let value = std::mem::take(&mut self.nodes[idx as usize].value);
                let (left, right) = {
                    let n = &self.nodes[idx as usize];
                    (n.left, n.right)
                };
                let new_subtree = match (left, right) {
                    (NIL, NIL) => NIL,
                    (l, NIL) => l,
                    (NIL, r) => r,
                    (l, r) => {
                        let (new_right, successor) = self.take_min(r);
                        self.nodes[successor as usize].left = l;
                        self.nodes[successor as usize].right = new_right;
                        self.rebalance(successor)
                    }
                };
                // Invalidate outstanding handles before the slot is recycled.
                self.nodes[idx as usize].generation =
                    self.nodes[idx as usize].generation.wrapping_add(1);
                self.free.push(idx);
                (new_subtree, Some(value))
            }
        }
    }

    /// Detach the minimum node of the subtree at `idx`; returns the new
    /// subtree root and the detached node's index.
    fn take_min(&mut self, idx: u32) -> (u32, u32) {
        let left = self.nodes[idx as usize].left;
        if left == NIL {
            let right = self.nodes[idx as usize].right;
            return (right, idx);
        }
        let (new_left, min) = self.take_min(left);
        self.nodes[idx as usize].left = new_left;
        (self.rebalance(idx), min)
    }

    /// In-order iteration over `(key, value)` pairs.
    pub fn iter(&self) -> AvlIter<'_, K, V> {
        let mut iter = AvlIter {
            map: self,
            stack: Vec::new(),
        };
        iter.push_left(self.root);
        iter
    }

    /// In-order iteration over entries with keys in `[low, high]`.
    pub fn range_inclusive<'a>(&'a self, low: &K, high: &K) -> Vec<(&'a K, &'a V)> {
        let mut out = Vec::new();
        self.range_collect(self.root, low, high, &mut out);
        out
    }

    fn range_collect<'a>(&'a self, idx: u32, low: &K, high: &K, out: &mut Vec<(&'a K, &'a V)>) {
        if idx == NIL {
            return;
        }
        let node = &self.nodes[idx as usize];
        if node.key > *low {
            self.range_collect(node.left, low, high, out);
        }
        if node.key >= *low && node.key <= *high {
            out.push((&node.key, &node.value));
        }
        if node.key < *high {
            self.range_collect(node.right, low, high, out);
        }
    }

    /// Height of the tree (for balance diagnostics and tests).
    pub fn height(&self) -> i32 {
        self.node_height(self.root)
    }
}

/// In-order iterator over an [`AvlMap`].
pub struct AvlIter<'a, K, V> {
    map: &'a AvlMap<K, V>,
    stack: Vec<u32>,
}

impl<'a, K: Ord, V> AvlIter<'a, K, V> {
    fn push_left(&mut self, mut idx: u32) {
        while idx != NIL {
            self.stack.push(idx);
            idx = self.map.nodes[idx as usize].left;
        }
    }
}

impl<'a, K: Ord, V> Iterator for AvlIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.stack.pop()?;
        let node = &self.map.nodes[idx as usize];
        self.push_left(node.right);
        Some((&node.key, &node.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut map = AvlMap::new();
        assert!(map.is_empty());
        for i in 0..100 {
            assert_eq!(map.insert(i, i * 10), None);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&42), Some(&420));
        assert_eq!(map.insert(42, 0), Some(420));
        assert_eq!(map.len(), 100);
        assert_eq!(map.remove(&42), Some(0));
        assert_eq!(map.remove(&42), None);
        assert_eq!(map.len(), 99);
        assert!(!map.contains_key(&42));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut map = AvlMap::new();
        for i in [5, 1, 9, 3, 7, 2, 8, 0, 6, 4] {
            map.insert(i, ());
        }
        let keys: Vec<i32> = map.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tree_stays_balanced_under_sequential_inserts() {
        let mut map = AvlMap::new();
        for i in 0..1024 {
            map.insert(i, i);
        }
        // A balanced tree of 1024 nodes has height ~10..=14; a degenerate list
        // would be 1024.
        assert!(map.height() <= 14, "height {} too large", map.height());
    }

    #[test]
    fn range_query_returns_inclusive_bounds() {
        let mut map = AvlMap::new();
        for i in 0..50 {
            map.insert(i, i * 2);
        }
        let range: Vec<i32> = map
            .range_inclusive(&10, &15)
            .iter()
            .map(|(k, _)| **k)
            .collect();
        assert_eq!(range, vec![10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn get_or_insert_with_is_a_single_traversal_upsert() {
        let mut map = AvlMap::new();
        // Sequential inserts force rotations on nearly every step; the
        // returned reference must stay valid through them.
        for i in 0..512 {
            let v = map.get_or_insert_with(i, || i * 2);
            assert_eq!(*v, i * 2);
            *v += 1;
        }
        assert_eq!(map.len(), 512);
        assert!(map.height() <= 11, "height {}", map.height());
        // Existing keys are returned, not replaced.
        let v = map.get_or_insert_with(100, || 9_999);
        assert_eq!(*v, 201);
        assert_eq!(map.len(), 512);
        // Interleave with removals to exercise the rebalance paths.
        for i in (0..512).step_by(2) {
            assert_eq!(map.remove(&i), Some(i * 2 + 1));
        }
        assert_eq!(*map.get_or_insert_with(0, || 77), 77);
        assert_eq!(map.len(), 257);
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut map = AvlMap::new();
        for i in 0..1_000 {
            map.insert(i, i);
        }
        for i in 0..1_000 {
            map.remove(&i);
        }
        assert!(map.is_empty());
        let arena_size = map.nodes.len();
        // Refilling after a full drain must reuse freed slots, not grow.
        for i in 0..1_000 {
            map.insert(i, i);
        }
        assert_eq!(map.nodes.len(), arena_size, "freed arena slots are reused");
        assert_eq!(map.len(), 1_000);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut map = AvlMap::new();
        map.insert("a", 1);
        *map.get_mut(&"a").unwrap() += 10;
        assert_eq!(map.get(&"a"), Some(&11));
        assert_eq!(map.get_mut(&"zzz"), None);
    }

    /// Differential test against `BTreeMap` over seeded random operation
    /// streams (property-based in spirit; the offline build environment has
    /// no `proptest`, so cases come from a seeded generator instead).
    #[test]
    fn behaves_like_btreemap() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        for case in 0..16u64 {
            let mut rng = StdRng::seed_from_u64(0x5eed_0000 + case);
            let mut avl = AvlMap::new();
            let mut reference = BTreeMap::new();
            let ops = rng.gen_range(0usize..400);
            for _ in 0..ops {
                let key = rng.gen_range(0u16..500);
                let value = rng.gen::<u32>();
                match rng.gen_range(0u8..3) {
                    0 => {
                        assert_eq!(avl.insert(key, value), reference.insert(key, value));
                    }
                    1 => {
                        assert_eq!(avl.remove(&key), reference.remove(&key));
                    }
                    _ => {
                        assert_eq!(avl.get(&key), reference.get(&key));
                    }
                }
                assert_eq!(avl.len(), reference.len());
            }
            let avl_items: Vec<(u16, u32)> = avl.iter().map(|(k, v)| (*k, *v)).collect();
            let ref_items: Vec<(u16, u32)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
            assert_eq!(avl_items, ref_items, "case {case}");
            // AVL invariant: height is O(log n).
            if !avl.is_empty() {
                let bound = (1.45 * ((avl.len() + 2) as f64).log2()).ceil() as i32 + 1;
                assert!(avl.height() <= bound);
            }
        }
    }
}
