//! A self-balancing AVL tree map.
//!
//! The paper (§IV-C) organises hot-record statistics in an AVL tree so that
//! point and range lookups cost `O(log n)`; we implement the same structure
//! rather than reusing `BTreeMap` so the substrate matches the paper's
//! description (and so the microbenchmarks can compare the two).

use std::cmp::Ordering;

struct Node<K, V> {
    key: K,
    value: V,
    height: i32,
    left: Option<Box<Node<K, V>>>,
    right: Option<Box<Node<K, V>>>,
}

impl<K: Ord, V> Node<K, V> {
    fn new(key: K, value: V) -> Box<Self> {
        Box::new(Self {
            key,
            value,
            height: 1,
            left: None,
            right: None,
        })
    }
}

fn height<K, V>(node: &Option<Box<Node<K, V>>>) -> i32 {
    node.as_ref().map(|n| n.height).unwrap_or(0)
}

fn update_height<K, V>(node: &mut Box<Node<K, V>>) {
    node.height = 1 + height(&node.left).max(height(&node.right));
}

fn balance_factor<K, V>(node: &Box<Node<K, V>>) -> i32 {
    height(&node.left) - height(&node.right)
}

fn rotate_right<K, V>(mut node: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut new_root = node.left.take().expect("rotate_right requires a left child");
    node.left = new_root.right.take();
    update_height(&mut node);
    new_root.right = Some(node);
    update_height(&mut new_root);
    new_root
}

fn rotate_left<K, V>(mut node: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut new_root = node.right.take().expect("rotate_left requires a right child");
    node.right = new_root.left.take();
    update_height(&mut node);
    new_root.left = Some(node);
    update_height(&mut new_root);
    new_root
}

fn rebalance<K, V>(mut node: Box<Node<K, V>>) -> Box<Node<K, V>> {
    update_height(&mut node);
    let bf = balance_factor(&node);
    if bf > 1 {
        if balance_factor(node.left.as_ref().unwrap()) < 0 {
            node.left = Some(rotate_left(node.left.take().unwrap()));
        }
        return rotate_right(node);
    }
    if bf < -1 {
        if balance_factor(node.right.as_ref().unwrap()) > 0 {
            node.right = Some(rotate_right(node.right.take().unwrap()));
        }
        return rotate_left(node);
    }
    node
}

fn insert_node<K: Ord, V>(
    node: Option<Box<Node<K, V>>>,
    key: K,
    value: V,
) -> (Box<Node<K, V>>, Option<V>) {
    match node {
        None => (Node::new(key, value), None),
        Some(mut n) => {
            let replaced = match key.cmp(&n.key) {
                Ordering::Less => {
                    let (child, replaced) = insert_node(n.left.take(), key, value);
                    n.left = Some(child);
                    replaced
                }
                Ordering::Greater => {
                    let (child, replaced) = insert_node(n.right.take(), key, value);
                    n.right = Some(child);
                    replaced
                }
                Ordering::Equal => Some(std::mem::replace(&mut n.value, value)),
            };
            (rebalance(n), replaced)
        }
    }
}

fn take_min<K: Ord, V>(mut node: Box<Node<K, V>>) -> (Option<Box<Node<K, V>>>, Box<Node<K, V>>) {
    if node.left.is_none() {
        let right = node.right.take();
        return (right, node);
    }
    let (new_left, min) = take_min(node.left.take().unwrap());
    node.left = new_left;
    (Some(rebalance(node)), min)
}

fn remove_node<K: Ord, V>(
    node: Option<Box<Node<K, V>>>,
    key: &K,
) -> (Option<Box<Node<K, V>>>, Option<V>) {
    match node {
        None => (None, None),
        Some(mut n) => match key.cmp(&n.key) {
            Ordering::Less => {
                let (child, removed) = remove_node(n.left.take(), key);
                n.left = child;
                (Some(rebalance(n)), removed)
            }
            Ordering::Greater => {
                let (child, removed) = remove_node(n.right.take(), key);
                n.right = child;
                (Some(rebalance(n)), removed)
            }
            Ordering::Equal => {
                let value = n.value;
                match (n.left.take(), n.right.take()) {
                    (None, None) => (None, Some(value)),
                    (Some(l), None) => (Some(l), Some(value)),
                    (None, Some(r)) => (Some(r), Some(value)),
                    (Some(l), Some(r)) => {
                        let (new_right, mut successor) = take_min(r);
                        successor.left = Some(l);
                        successor.right = new_right;
                        (Some(rebalance(successor)), Some(value))
                    }
                }
            }
        },
    }
}

/// An ordered map backed by an AVL tree.
pub struct AvlMap<K, V> {
    root: Option<Box<Node<K, V>>>,
    len: usize,
}

impl<K: Ord, V> Default for AvlMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> AvlMap<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        Self { root: None, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a key/value pair, returning the previous value for the key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (root, replaced) = insert_node(self.root.take(), key, value);
        self.root = Some(root);
        if replaced.is_none() {
            self.len += 1;
        }
        replaced
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root.as_deref();
        while let Some(node) = cur {
            match key.cmp(&node.key) {
                Ordering::Less => cur = node.left.as_deref(),
                Ordering::Greater => cur = node.right.as_deref(),
                Ordering::Equal => return Some(&node.value),
            }
        }
        None
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut cur = self.root.as_deref_mut();
        while let Some(node) = cur {
            match key.cmp(&node.key) {
                Ordering::Less => cur = node.left.as_deref_mut(),
                Ordering::Greater => cur = node.right.as_deref_mut(),
                Ordering::Equal => return Some(&mut node.value),
            }
        }
        None
    }

    /// Whether the map contains `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (root, removed) = remove_node(self.root.take(), key);
        self.root = root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// In-order iteration over `(key, value)` pairs.
    pub fn iter(&self) -> AvlIter<'_, K, V> {
        let mut stack = Vec::new();
        push_left(&mut stack, self.root.as_deref());
        AvlIter { stack }
    }

    /// In-order iteration over entries with keys in `[low, high]`.
    pub fn range_inclusive<'a>(&'a self, low: &K, high: &K) -> Vec<(&'a K, &'a V)> {
        let mut out = Vec::new();
        range_collect(self.root.as_deref(), low, high, &mut out);
        out
    }

    /// Height of the tree (for balance diagnostics and tests).
    pub fn height(&self) -> i32 {
        height(&self.root)
    }
}

fn range_collect<'a, K: Ord, V>(
    node: Option<&'a Node<K, V>>,
    low: &K,
    high: &K,
    out: &mut Vec<(&'a K, &'a V)>,
) {
    let Some(node) = node else { return };
    if node.key > *low {
        range_collect(node.left.as_deref(), low, high, out);
    }
    if node.key >= *low && node.key <= *high {
        out.push((&node.key, &node.value));
    }
    if node.key < *high {
        range_collect(node.right.as_deref(), low, high, out);
    }
}

fn push_left<'a, K, V>(stack: &mut Vec<&'a Node<K, V>>, mut node: Option<&'a Node<K, V>>) {
    while let Some(n) = node {
        stack.push(n);
        node = n.left.as_deref();
    }
}

/// In-order iterator over an [`AvlMap`].
pub struct AvlIter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iterator for AvlIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        push_left(&mut self.stack, node.right.as_deref());
        Some((&node.key, &node.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut map = AvlMap::new();
        assert!(map.is_empty());
        for i in 0..100 {
            assert_eq!(map.insert(i, i * 10), None);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&42), Some(&420));
        assert_eq!(map.insert(42, 0), Some(420));
        assert_eq!(map.len(), 100);
        assert_eq!(map.remove(&42), Some(0));
        assert_eq!(map.remove(&42), None);
        assert_eq!(map.len(), 99);
        assert!(!map.contains_key(&42));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut map = AvlMap::new();
        for i in [5, 1, 9, 3, 7, 2, 8, 0, 6, 4] {
            map.insert(i, ());
        }
        let keys: Vec<i32> = map.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tree_stays_balanced_under_sequential_inserts() {
        let mut map = AvlMap::new();
        for i in 0..1024 {
            map.insert(i, i);
        }
        // A balanced tree of 1024 nodes has height ~10..=14; a degenerate list
        // would be 1024.
        assert!(map.height() <= 14, "height {} too large", map.height());
    }

    #[test]
    fn range_query_returns_inclusive_bounds() {
        let mut map = AvlMap::new();
        for i in 0..50 {
            map.insert(i, i * 2);
        }
        let range: Vec<i32> = map.range_inclusive(&10, &15).iter().map(|(k, _)| **k).collect();
        assert_eq!(range, vec![10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut map = AvlMap::new();
        map.insert("a", 1);
        *map.get_mut(&"a").unwrap() += 10;
        assert_eq!(map.get(&"a"), Some(&11));
        assert_eq!(map.get_mut(&"zzz"), None);
    }

    proptest! {
        #[test]
        fn behaves_like_btreemap(ops in prop::collection::vec((0u16..500, 0u8..3, any::<u32>()), 0..400)) {
            let mut avl = AvlMap::new();
            let mut reference = BTreeMap::new();
            for (key, op, value) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(avl.insert(key, value), reference.insert(key, value));
                    }
                    1 => {
                        prop_assert_eq!(avl.remove(&key), reference.remove(&key));
                    }
                    _ => {
                        prop_assert_eq!(avl.get(&key), reference.get(&key));
                    }
                }
                prop_assert_eq!(avl.len(), reference.len());
            }
            let avl_items: Vec<(u16, u32)> = avl.iter().map(|(k, v)| (*k, *v)).collect();
            let ref_items: Vec<(u16, u32)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(avl_items, ref_items);
            // AVL invariant: height is O(log n).
            if !avl.is_empty() {
                let bound = (1.45 * ((avl.len() + 2) as f64).log2()).ceil() as i32 + 1;
                prop_assert!(avl.height() <= bound);
            }
        }
    }
}
