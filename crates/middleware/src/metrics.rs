//! Per-transaction outcomes and middleware-level aggregate statistics.

use std::time::Duration;

/// Why a transaction did not commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The geo-scheduler's late transaction scheduling refused admission.
    AdmissionRejected,
    /// A statement failed (lock timeout, missing key, ...).
    ExecutionFailed,
    /// At least one participant voted no in the prepare phase.
    PrepareFailed,
    /// The client asked for a rollback.
    ClientRollback,
    /// The coordinating middleware crashed while the transaction was in
    /// flight; the client's connection dropped with no outcome. In-doubt
    /// branches are resolved by failure recovery.
    CoordinatorCrashed,
    /// The coordinating middleware was fenced: its lease expired, a peer
    /// sealed its commit log and data sources reject its epoch, so it can no
    /// longer decide anything. The transaction definitely did not commit (no
    /// decision was durable before the fence); its branches are finished by
    /// the adopting peer's recovery.
    CoordinatorFenced,
    /// The client's connection dropped mid-transaction (a crashed or
    /// abandoned session). The middleware noticed the disconnect and rolled
    /// the in-flight branches back, like a real proxy reacting to a TCP
    /// reset. The client, having vanished, never sees this outcome — it
    /// exists for the coordinator's own bookkeeping.
    ClientDisconnected,
    /// The coordinator shed the request at admission: its worker pool was
    /// saturated and the bounded wait queue was full (or the queue-time
    /// deadline expired before a permit freed up). No transaction ever
    /// started (`gtrid == 0`); the outcome carries a retry-after hint and the
    /// client should back off before re-submitting.
    Overloaded,
    /// The session was reaped by the idle-session reaper: the registry no
    /// longer knows this session, so the `begin` was rejected cleanly. The
    /// client reconnects (which re-registers the session) and retries; the
    /// cluster front door does this transparently on the next `begin`.
    SessionExpired,
}

/// Every abort reason, in declaration order. Collectors index breakdown
/// arrays with [`AbortReason::ordinal`], which points into this list.
pub const ABORT_REASONS: [AbortReason; 9] = [
    AbortReason::AdmissionRejected,
    AbortReason::ExecutionFailed,
    AbortReason::PrepareFailed,
    AbortReason::ClientRollback,
    AbortReason::CoordinatorCrashed,
    AbortReason::CoordinatorFenced,
    AbortReason::ClientDisconnected,
    AbortReason::Overloaded,
    AbortReason::SessionExpired,
];

impl AbortReason {
    /// Stable machine-readable label (used as a metric label).
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::AdmissionRejected => "admission_rejected",
            AbortReason::ExecutionFailed => "execution_failed",
            AbortReason::PrepareFailed => "prepare_failed",
            AbortReason::ClientRollback => "client_rollback",
            AbortReason::CoordinatorCrashed => "coordinator_crashed",
            AbortReason::CoordinatorFenced => "coordinator_fenced",
            AbortReason::ClientDisconnected => "client_disconnected",
            AbortReason::Overloaded => "overloaded",
            AbortReason::SessionExpired => "session_expired",
        }
    }

    /// Index into [`ABORT_REASONS`]-shaped accumulation arrays.
    pub fn ordinal(self) -> usize {
        ABORT_REASONS.iter().position(|r| *r == self).unwrap()
    }
}

/// Where a committed transaction's latency went. The fields mirror the
/// breakdown reported in the paper's Fig. 6c.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Time spent waiting in a coordinator's bounded admission queue before
    /// `begin` was granted a worker permit. Zero when admission is unbounded
    /// (the legacy behaviour) or the permit was free on arrival.
    pub queue_time: Duration,
    /// Parsing, routing and scheduling work at the middleware.
    pub analysis: Duration,
    /// Admission-control delay (late transaction scheduling backoff).
    pub admission_delay: Duration,
    /// Execution phase: dispatching rounds and waiting for their results
    /// (includes the scheduler's postpone time and WAN round trips).
    pub execution: Duration,
    /// Waiting for prepare votes after the client issued commit.
    pub prepare_wait: Duration,
    /// Flushing the commit/abort log.
    pub log_flush: Duration,
    /// Dispatching the final decision and collecting acknowledgements.
    pub commit: Duration,
    /// Client↔middleware network hops (session front door only: one
    /// round trip per statement round, plus the begin and commit hops).
    /// Zero for co-located clients and for the one-shot spec path, which
    /// never models the client link.
    pub client_rtt: Duration,
    /// Client think time between statement rounds (interactive sessions
    /// only). Part of the end-to-end latency a terminal observes, but not of
    /// the middleware's service time.
    pub think_time: Duration,
}

impl LatencyBreakdown {
    /// Total latency across all phases.
    pub fn total(&self) -> Duration {
        self.queue_time
            + self.analysis
            + self.admission_delay
            + self.execution
            + self.prepare_wait
            + self.log_flush
            + self.commit
            + self.client_rtt
            + self.think_time
    }
}

/// The read/write key sets of one transaction, as declared by the submitted
/// spec. Only populated (and only useful) under the `history` cargo feature:
/// failure-drill harnesses cross-check these client-level sets against the
/// versioned histories the storage engines record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxnHistory {
    /// Distinct keys read (plain and `FOR UPDATE` reads), sorted.
    pub reads: Vec<crate::ops::GlobalKey>,
    /// Distinct keys written (updates, inserts, deletes), sorted.
    pub writes: Vec<crate::ops::GlobalKey>,
}

impl TxnHistory {
    /// Derive the read/write sets from a transaction spec.
    pub fn from_spec(spec: &crate::ops::TransactionSpec) -> Self {
        use crate::ops::ClientOp;
        let mut history = TxnHistory::default();
        for op in spec.all_ops() {
            let set = match op {
                ClientOp::Read(_) | ClientOp::ReadForUpdate(_) => &mut history.reads,
                _ => &mut history.writes,
            };
            set.push(op.key());
        }
        history.reads.sort();
        history.reads.dedup();
        history.writes.sort();
        history.writes.dedup();
        history
    }
}

/// The outcome of one transaction as observed by the client.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TxnOutcome {
    /// The global transaction id the coordinator assigned (0 when the
    /// transaction never got far enough to be assigned one, e.g. a script
    /// that ends in ROLLBACK). Failure-drill harnesses use this to tie a
    /// client-observed outcome to the durable commit-log decision and the
    /// per-branch WAL records.
    pub gtrid: u64,
    /// Whether the transaction committed.
    pub committed: bool,
    /// Why it aborted, if it did.
    pub abort_reason: Option<AbortReason>,
    /// End-to-end latency seen by the client.
    pub latency: Duration,
    /// Phase breakdown.
    pub breakdown: LatencyBreakdown,
    /// Whether the transaction touched more than one data source.
    pub distributed: bool,
    /// Rows returned by read operations (in execution order).
    pub rows: Vec<geotp_storage::Row>,
    /// When the backend shed this request ([`AbortReason::Overloaded`]), how
    /// long it suggests the client wait before retrying. `None` for every
    /// other outcome.
    pub retry_after: Option<Duration>,
    /// Whether the transaction committed through the read-only snapshot fast
    /// path: no prepare, no decision flush, no branch WAL flush. A read-only
    /// commit needs no durable decision — durability checkers must not demand
    /// one.
    pub read_only: bool,
    /// The transaction's declared read/write key sets (only with the
    /// `history` cargo feature; see [`TxnHistory`]).
    #[cfg(feature = "history")]
    pub history: TxnHistory,
}

impl TxnOutcome {
    /// An aborted outcome with the given reason and latency.
    pub fn aborted(reason: AbortReason, latency: Duration, distributed: bool) -> Self {
        Self {
            committed: false,
            abort_reason: Some(reason),
            latency,
            distributed,
            ..Self::default()
        }
    }

    /// Whether this outcome is a *refused connection*: no transaction ever
    /// started (`gtrid == 0`) because no live coordinator accepted the
    /// session's `begin`. Drivers and harnesses retry these with a backoff
    /// and keep them out of per-transaction ledgers — this is the single
    /// definition every caller should use.
    pub fn is_refusal(&self) -> bool {
        self.gtrid == 0 && self.abort_reason == Some(AbortReason::CoordinatorCrashed)
    }

    /// Whether this outcome is an *overload shed*: admission control rejected
    /// the request before a transaction started. Like a refusal, no
    /// transaction exists (`gtrid == 0`); unlike a refusal, the backend is
    /// alive and telling the client to back off ([`TxnOutcome::retry_after`]).
    pub fn is_overloaded(&self) -> bool {
        self.abort_reason == Some(AbortReason::Overloaded)
    }
}

/// Aggregate statistics kept by one middleware instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MiddlewareStats {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Aborts caused by admission rejection (O3's late scheduling).
    pub admission_rejections: u64,
    /// Aborts caused by execution failures (lock timeouts etc.).
    pub execution_failures: u64,
    /// Aborts caused by failed prepare votes.
    pub prepare_failures: u64,
    /// Committed distributed transactions.
    pub distributed_committed: u64,
    /// Sum of committed-transaction latencies (microseconds).
    pub total_commit_latency_micros: u64,
    /// Sum of the scheduler postpone durations applied (microseconds).
    pub total_postpone_micros: u64,
    /// Transactions that used the decentralized prepare path.
    pub decentralized_prepares: u64,
    /// Branches whose commit dispatch failed *after* the commit decision was
    /// durably flushed (participant crashed or unreachable). The transaction
    /// is still reported committed — the decision is durable — and the branch
    /// is finished later by failure recovery.
    pub commits_deferred_to_recovery: u64,
    /// Transactions whose prepare-vote or rollback-confirmation wait hit the
    /// decision-wait timeout (a participant crashed or was partitioned away).
    pub decision_wait_timeouts: u64,
    /// Requests shed at admission (bounded queue full or queue-time deadline
    /// expired) — the explicit load-shedding path, not a failure.
    pub overload_sheds: u64,
    /// `begin`s rejected because the session had been reaped by the
    /// idle-session reaper.
    pub sessions_expired: u64,
    /// Aborts the client asked for (explicit ROLLBACK scripts).
    pub client_rollbacks: u64,
    /// Transactions lost to a coordinator crash mid-flight.
    pub coordinator_crashes: u64,
    /// Transactions aborted because their coordinator was fenced by a peer.
    pub coordinator_fences: u64,
    /// Transactions rolled back after the client's connection dropped.
    pub client_disconnects: u64,
}

impl MiddlewareStats {
    /// Record an outcome into the aggregate counters.
    pub fn record(&mut self, outcome: &TxnOutcome) {
        if outcome.committed {
            self.committed += 1;
            if outcome.distributed {
                self.distributed_committed += 1;
            }
            self.total_commit_latency_micros += outcome.latency.as_micros() as u64;
        } else {
            self.aborted += 1;
            match outcome.abort_reason {
                Some(AbortReason::AdmissionRejected) => self.admission_rejections += 1,
                Some(AbortReason::ExecutionFailed) => self.execution_failures += 1,
                Some(AbortReason::PrepareFailed) => self.prepare_failures += 1,
                Some(AbortReason::Overloaded) => self.overload_sheds += 1,
                Some(AbortReason::SessionExpired) => self.sessions_expired += 1,
                Some(AbortReason::ClientRollback) => self.client_rollbacks += 1,
                Some(AbortReason::CoordinatorCrashed) => self.coordinator_crashes += 1,
                Some(AbortReason::CoordinatorFenced) => self.coordinator_fences += 1,
                Some(AbortReason::ClientDisconnected) => self.client_disconnects += 1,
                None => {}
            }
        }
    }

    /// Fraction of transactions that aborted.
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            0.0
        } else {
            self.aborted as f64 / total as f64
        }
    }

    /// Mean latency of committed transactions.
    pub fn mean_commit_latency(&self) -> Duration {
        match self.total_commit_latency_micros.checked_div(self.committed) {
            Some(mean) => Duration::from_micros(mean),
            None => Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_phases() {
        let b = LatencyBreakdown {
            queue_time: Duration::from_millis(5),
            analysis: Duration::from_millis(1),
            admission_delay: Duration::from_millis(2),
            execution: Duration::from_millis(70),
            prepare_wait: Duration::from_millis(3),
            log_flush: Duration::from_millis(1),
            commit: Duration::from_millis(63),
            client_rtt: Duration::from_millis(6),
            think_time: Duration::from_millis(4),
        };
        assert_eq!(b.total(), Duration::from_millis(155));
    }

    #[test]
    fn txn_history_from_spec_splits_and_dedups_key_sets() {
        use crate::ops::{ClientOp, GlobalKey, TransactionSpec};
        use geotp_storage::TableId;
        let k = |row| GlobalKey::new(TableId(0), row);
        let spec = TransactionSpec::multi_round(vec![
            vec![
                ClientOp::Read(k(5)),
                ClientOp::ReadForUpdate(k(3)),
                ClientOp::add(k(1), 1),
            ],
            vec![
                ClientOp::Read(k(5)),   // repeat read, dedup
                ClientOp::add(k(1), 2), // repeat write, dedup
                ClientOp::Delete(k(2)),
            ],
        ]);
        let history = TxnHistory::from_spec(&spec);
        assert_eq!(history.reads, vec![k(3), k(5)], "sorted, deduplicated");
        assert_eq!(history.writes, vec![k(1), k(2)]);
    }

    #[test]
    fn stats_record_and_derive() {
        let mut stats = MiddlewareStats::default();
        stats.record(&TxnOutcome {
            gtrid: 1,
            committed: true,
            abort_reason: None,
            latency: Duration::from_millis(100),
            breakdown: LatencyBreakdown::default(),
            distributed: true,
            rows: vec![],
            ..TxnOutcome::default()
        });
        stats.record(&TxnOutcome::aborted(
            AbortReason::ExecutionFailed,
            Duration::from_millis(20),
            false,
        ));
        stats.record(&TxnOutcome::aborted(
            AbortReason::AdmissionRejected,
            Duration::from_millis(1),
            true,
        ));
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.aborted, 2);
        assert_eq!(stats.execution_failures, 1);
        assert_eq!(stats.admission_rejections, 1);
        assert_eq!(stats.distributed_committed, 1);
        assert!((stats.abort_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(stats.mean_commit_latency(), Duration::from_millis(100));
    }
}
