//! The geo-scheduler: latency-aware scheduling of subtransactions
//! (paper §IV-B) plus the high-contention heuristics (§IV-C).
//!
//! For each subtransaction the scheduler computes how long its dispatch should
//! be postponed so its lock contention span shrinks to (roughly) its own
//! round-trip time instead of the slowest round-trip time in the transaction:
//!
//! * Eq. 3 (network-only):  `t_start = max τ − τ_ij`
//! * Eq. 8 (with forecasts): `t_start = max(τ + LEL̂) − (τ_ij + LEL̂_ij)`
//!
//! With the advanced optimization enabled the scheduler additionally performs
//! *late transaction scheduling* (Algorithm 2, lines 10–18): it estimates the
//! transaction's abort probability from the hotspot footprint (Eq. 9) and
//! keeps high-risk transactions back, retrying a bounded number of times
//! before refusing admission.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use geotp_net::LatencyMonitor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hotspot::{HotspotConfig, HotspotFootprint};
use crate::ops::GlobalKey;

/// A branch (subtransaction) the scheduler needs to place in time.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchPlan {
    /// Index of the data source the branch executes on.
    pub ds_index: u32,
    /// Keys the branch accesses (used for hotspot forecasting).
    pub keys: Vec<GlobalKey>,
}

/// The scheduler's decision for one transaction round.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Postpone duration per branch, in the same order as the input plan.
    pub postpone: Vec<Duration>,
    /// The predicted makespan of the round (`max(τ + LEL̂)`).
    pub horizon: Duration,
}

/// Outcome of trying to schedule a transaction under late scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionDecision {
    /// Dispatch with the given postpone amounts.
    Admit(Schedule),
    /// Refuse admission (predicted abort rate too high, retries exhausted);
    /// the transaction should abort and be retried by the client.
    Reject {
        /// Number of admission attempts performed.
        attempts: u32,
    },
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// O2: postpone subtransactions according to network latency.
    pub latency_aware: bool,
    /// O3: use hotspot statistics (forecast + late scheduling).
    pub advanced: bool,
    /// Maximum admission retries before rejecting (Algorithm 2 uses 10).
    pub max_retries: u32,
    /// Virtual-time backoff between admission retries.
    pub retry_backoff: Duration,
    /// Hotspot footprint configuration.
    pub hotspot: HotspotConfig,
    /// Seed for the admission lottery.
    pub seed: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            latency_aware: true,
            advanced: true,
            max_retries: 10,
            retry_backoff: Duration::from_millis(2),
            hotspot: HotspotConfig::default(),
            seed: 0x0067_656f_7470, // "geotp"
        }
    }
}

/// The geo-scheduler.
pub struct GeoScheduler {
    config: SchedulerConfig,
    monitor: Rc<LatencyMonitor>,
    footprint: RefCell<HotspotFootprint>,
    rng: RefCell<StdRng>,
    admissions: RefCell<u64>,
    rejections: RefCell<u64>,
    /// Reusable buffer for the admission check's flattened key list.
    keys_scratch: RefCell<Vec<GlobalKey>>,
}

impl GeoScheduler {
    /// Create a scheduler reading RTT estimates from `monitor`.
    pub fn new(config: SchedulerConfig, monitor: Rc<LatencyMonitor>) -> Self {
        Self {
            footprint: RefCell::new(HotspotFootprint::new(config.hotspot)),
            rng: RefCell::new(StdRng::seed_from_u64(config.seed)),
            config,
            monitor,
            admissions: RefCell::new(0),
            rejections: RefCell::new(0),
            keys_scratch: RefCell::new(Vec::new()),
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> SchedulerConfig {
        self.config
    }

    /// Shared access to the hotspot footprint for feedback updates.
    pub fn footprint(&self) -> &RefCell<HotspotFootprint> {
        &self.footprint
    }

    /// Number of transactions admitted / rejected by late scheduling.
    pub fn admission_counters(&self) -> (u64, u64) {
        (*self.admissions.borrow(), *self.rejections.borrow())
    }

    fn rtt_of(&self, ds_index: u32) -> Duration {
        self.monitor.rtt(geotp_net::NodeId::data_source(ds_index))
    }

    /// Predicted completion latency of one branch: its RTT plus (if O3 is on)
    /// its forecast local execution latency.
    fn branch_latency(&self, branch: &BranchPlan) -> Duration {
        let mut latency = self.rtt_of(branch.ds_index);
        if self.config.advanced {
            latency += self.footprint.borrow().forecast_local_latency(&branch.keys);
        }
        latency
    }

    /// Compute the postpone schedule for one round of branches (Eq. 3 / Eq. 8).
    pub fn schedule(&self, branches: &[BranchPlan]) -> Schedule {
        let latencies: Vec<Duration> = branches.iter().map(|b| self.branch_latency(b)).collect();
        let horizon = latencies.iter().copied().max().unwrap_or(Duration::ZERO);
        let postpone = if self.config.latency_aware && branches.len() > 1 {
            latencies
                .iter()
                .map(|lat| horizon.saturating_sub(*lat))
                .collect()
        } else {
            vec![Duration::ZERO; branches.len()]
        };
        Schedule { postpone, horizon }
    }

    /// Algorithm 2: admission control plus scheduling. Returns how long each
    /// branch should be postponed, or a rejection when the predicted abort
    /// rate stays too high across `max_retries` lottery draws.
    ///
    /// The returned `attempts` count lets the coordinator charge the retry
    /// backoff to the transaction's latency.
    pub fn schedule_with_admission(&self, branches: &[BranchPlan]) -> AdmissionDecision {
        if !self.config.advanced {
            *self.admissions.borrow_mut() += 1;
            return AdmissionDecision::Admit(self.schedule(branches));
        }
        let mut all_keys = self.keys_scratch.borrow_mut();
        all_keys.clear();
        all_keys.extend(branches.iter().flat_map(|b| b.keys.iter().copied()));
        let mut attempts = 0;
        loop {
            attempts += 1;
            let success_p = self.footprint.borrow().success_probability(&all_keys);
            let draw: f64 = self.rng.borrow_mut().gen();
            if success_p >= draw {
                *self.admissions.borrow_mut() += 1;
                return AdmissionDecision::Admit(self.schedule(branches));
            }
            if attempts > self.config.max_retries {
                *self.rejections.borrow_mut() += 1;
                return AdmissionDecision::Reject { attempts };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_net::{MonitorConfig, NetworkBuilder, NodeId};
    use geotp_simrt::Runtime;
    use geotp_storage::TableId;

    fn gk(row: u64) -> GlobalKey {
        GlobalKey::new(TableId(0), row)
    }

    fn monitor(rtts_ms: &[u64]) -> Rc<LatencyMonitor> {
        let dm = NodeId::middleware(0);
        let mut builder = NetworkBuilder::new(1);
        let mut targets = Vec::new();
        for (i, rtt) in rtts_ms.iter().enumerate() {
            let ds = NodeId::data_source(i as u32);
            builder = builder.static_link(dm, ds, Duration::from_millis(*rtt));
            targets.push(ds);
        }
        let net = builder.build();
        LatencyMonitor::new(&net, dm, &targets, MonitorConfig::default())
    }

    fn plan(ds: u32, keys: &[u64]) -> BranchPlan {
        BranchPlan {
            ds_index: ds,
            keys: keys.iter().map(|k| gk(*k)).collect(),
        }
    }

    #[test]
    fn eq3_postpones_fast_branches() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let mon = monitor(&[10, 100]);
            let sched = GeoScheduler::new(
                SchedulerConfig {
                    latency_aware: true,
                    advanced: false,
                    ..SchedulerConfig::default()
                },
                mon,
            );
            let s = sched.schedule(&[plan(0, &[1]), plan(1, &[2])]);
            // Fig. 4c: the 10ms branch is postponed by 90ms, the 100ms branch not at all.
            assert_eq!(s.postpone, vec![Duration::from_millis(90), Duration::ZERO]);
            assert_eq!(s.horizon, Duration::from_millis(100));
        });
    }

    #[test]
    fn latency_scheduling_disabled_gives_zero_postpone() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let mon = monitor(&[10, 100]);
            let sched = GeoScheduler::new(
                SchedulerConfig {
                    latency_aware: false,
                    advanced: false,
                    ..SchedulerConfig::default()
                },
                mon,
            );
            let s = sched.schedule(&[plan(0, &[1]), plan(1, &[2])]);
            assert_eq!(s.postpone, vec![Duration::ZERO, Duration::ZERO]);
        });
    }

    #[test]
    fn single_branch_is_never_postponed() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let mon = monitor(&[251]);
            let sched = GeoScheduler::new(SchedulerConfig::default(), mon);
            let s = sched.schedule(&[plan(0, &[1])]);
            assert_eq!(s.postpone, vec![Duration::ZERO]);
        });
    }

    #[test]
    fn eq8_incorporates_forecast_local_latency() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let mon = monitor(&[10, 100]);
            let sched = GeoScheduler::new(
                SchedulerConfig {
                    latency_aware: true,
                    advanced: true,
                    ..SchedulerConfig::default()
                },
                mon,
            );
            // Teach the footprint that key 1 (on the fast node) is slow to
            // execute locally: 60ms of lock waiting.
            sched
                .footprint()
                .borrow_mut()
                .on_subtxn_feedback(&[gk(1)], Duration::from_millis(60));
            let s = sched.schedule(&[plan(0, &[1]), plan(1, &[2])]);
            // Branch 0 now has predicted completion 10+60=70ms, branch 1 100ms:
            // postpone shrinks from 90ms to 30ms.
            assert_eq!(s.postpone, vec![Duration::from_millis(30), Duration::ZERO]);
            assert_eq!(s.horizon, Duration::from_millis(100));
        });
    }

    #[test]
    fn forecast_larger_than_horizon_means_no_postpone_for_that_branch() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let mon = monitor(&[10, 100]);
            let sched = GeoScheduler::new(SchedulerConfig::default(), mon);
            sched
                .footprint()
                .borrow_mut()
                .on_subtxn_feedback(&[gk(1)], Duration::from_millis(500));
            let s = sched.schedule(&[plan(0, &[1]), plan(1, &[2])]);
            // The slow-to-execute branch becomes the bottleneck (510ms); it is
            // dispatched immediately and the other branch is postponed instead.
            assert_eq!(s.postpone[0], Duration::ZERO);
            assert_eq!(s.postpone[1], Duration::from_millis(410));
        });
    }

    #[test]
    fn admission_rejects_hopeless_hotspot_transactions() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let mon = monitor(&[10, 100]);
            let sched = GeoScheduler::new(
                SchedulerConfig {
                    max_retries: 3,
                    ..SchedulerConfig::default()
                },
                mon,
            );
            {
                let mut fp = sched.footprint().borrow_mut();
                // Record 7: heavily contended and almost always aborting.
                for _ in 0..100 {
                    fp.on_access_start(&[gk(7)]);
                }
                for i in 0..80 {
                    fp.on_txn_finish(&[gk(7)], i < 2);
                }
                // 20 transactions still accessing it, success ratio 2%.
            }
            let decision = sched.schedule_with_admission(&[plan(0, &[7]), plan(1, &[8])]);
            match decision {
                AdmissionDecision::Reject { attempts } => assert_eq!(attempts, 4),
                other => panic!("expected rejection, got {other:?}"),
            }
            assert_eq!(sched.admission_counters(), (0, 1));
        });
    }

    #[test]
    fn admission_accepts_uncontended_transactions() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let mon = monitor(&[10, 100]);
            let sched = GeoScheduler::new(SchedulerConfig::default(), mon);
            let decision = sched.schedule_with_admission(&[plan(0, &[1]), plan(1, &[2])]);
            assert!(matches!(decision, AdmissionDecision::Admit(_)));
            assert_eq!(sched.admission_counters(), (1, 0));
        });
    }
}
