//! SQL parser and per-dialect rewriter.
//!
//! The middleware accepts a compact SQL subset (enough to express the paper's
//! running example and the benchmark workloads) plus the annotation hints
//! GeoTP relies on:
//!
//! ```sql
//! BEGIN;
//! UPDATE savings SET bal = bal - 100 WHERE id = 1;
//! UPDATE savings SET bal = bal + 100 WHERE id = 1000001; /*+ last */
//! COMMIT;
//! ```
//!
//! The `/*+ last */` annotation marks the transaction's last statement
//! (paper §III: "we leverage annotations to mark the last statement"), which
//! lets the transaction manager trigger the decentralized prepare as soon as
//! that statement finishes.
//!
//! The [`Rewriter`] renders the per-data-source command scripts shown in
//! Fig. 3 (e.g. `XA START`/`XA END`/`XA PREPARE` for MySQL and
//! `PREPARE TRANSACTION`/`COMMIT PREPARED` for PostgreSQL), and rewrites
//! plain `SELECT` into `SELECT ... FOR SHARE` for PostgreSQL data sources as
//! the paper's setup does.

use std::collections::HashMap;
use std::fmt;

use geotp_datasource::Dialect;
use geotp_storage::{TableId, Xid};

use crate::ops::{ClientOp, GlobalKey};

/// A parsed SQL statement plus its annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedStatement {
    /// The operation the statement maps to (`None` for BEGIN/COMMIT/ROLLBACK).
    pub op: Option<ClientOp>,
    /// Transaction control verb, if any.
    pub control: Option<TxnControl>,
    /// Whether the statement carries the `/*+ last */` annotation.
    pub is_last: bool,
}

/// Transaction-control statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnControl {
    /// `BEGIN` / `START TRANSACTION`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
}

/// Errors produced by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// The offending statement text.
    pub statement: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {} in `{}`", self.message, self.statement)
    }
}

impl std::error::Error for ParseError {}

/// Maps table names to [`TableId`]s.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, TableId>,
    next_id: u16,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a table by name.
    pub fn table(&mut self, name: &str) -> TableId {
        let lowered = name.to_ascii_lowercase();
        if let Some(id) = self.tables.get(&lowered) {
            return *id;
        }
        let id = TableId(self.next_id);
        self.next_id += 1;
        self.tables.insert(lowered, id);
        id
    }

    /// Look up a table without registering it.
    pub fn lookup(&self, name: &str) -> Option<TableId> {
        self.tables.get(&name.to_ascii_lowercase()).copied()
    }

    /// Reverse lookup for pretty-printing.
    pub fn name_of(&self, id: TableId) -> Option<&str> {
        self.tables
            .iter()
            .find(|(_, v)| **v == id)
            .map(|(k, _)| k.as_str())
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// The SQL parser.
#[derive(Debug, Default)]
pub struct SqlParser {
    catalog: Catalog,
}

impl SqlParser {
    /// Create a parser with an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access the catalog built while parsing.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (lets a caller share one catalog across
    /// parser instances, as the middleware does for its SQL front door).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Parse a semicolon-separated script into statements.
    pub fn parse_script(&mut self, script: &str) -> Result<Vec<ParsedStatement>, ParseError> {
        script
            .split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| self.parse_statement(s))
            .collect()
    }

    /// Parse one statement.
    pub fn parse_statement(&mut self, statement: &str) -> Result<ParsedStatement, ParseError> {
        let original = statement.to_string();
        let mut text = statement.trim().to_string();
        let is_last = Self::strip_last_annotation(&mut text);
        let upper = text.to_ascii_uppercase();

        let err = |message: &str| ParseError {
            message: message.to_string(),
            statement: original.clone(),
        };

        if upper.starts_with("BEGIN") || upper.starts_with("START TRANSACTION") {
            return Ok(ParsedStatement {
                op: None,
                control: Some(TxnControl::Begin),
                is_last,
            });
        }
        if upper.starts_with("COMMIT") {
            return Ok(ParsedStatement {
                op: None,
                control: Some(TxnControl::Commit),
                is_last,
            });
        }
        if upper.starts_with("ROLLBACK") {
            return Ok(ParsedStatement {
                op: None,
                control: Some(TxnControl::Rollback),
                is_last,
            });
        }

        if upper.starts_with("SELECT") {
            let table = Self::capture_after(&text, "FROM").ok_or_else(|| err("missing FROM"))?;
            let row = Self::capture_where_id(&text).ok_or_else(|| err("missing WHERE id = <n>"))?;
            let key = GlobalKey::new(self.catalog.table(&table), row);
            let op = if upper.contains("FOR UPDATE") {
                ClientOp::ReadForUpdate(key)
            } else {
                ClientOp::Read(key)
            };
            return Ok(ParsedStatement {
                op: Some(op),
                control: None,
                is_last,
            });
        }

        if upper.starts_with("UPDATE") {
            let table = Self::capture_after(&text, "UPDATE").ok_or_else(|| err("missing table"))?;
            let row = Self::capture_where_id(&text).ok_or_else(|| err("missing WHERE id = <n>"))?;
            let key = GlobalKey::new(self.catalog.table(&table), row);
            // Two supported forms: `SET col = col + N` and `SET col = N`.
            let set_clause = Self::capture_between(&upper, "SET", "WHERE")
                .ok_or_else(|| err("missing SET clause"))?;
            let delta =
                Self::parse_delta(&set_clause).ok_or_else(|| err("unsupported SET clause"))?;
            let op = match delta {
                SetExpr::Delta(d) => ClientOp::AddInt {
                    key,
                    col: 0,
                    delta: d,
                },
                SetExpr::Assign(v) => ClientOp::Write {
                    key,
                    row: geotp_storage::Row::int(v),
                },
            };
            return Ok(ParsedStatement {
                op: Some(op),
                control: None,
                is_last,
            });
        }

        if upper.starts_with("INSERT") {
            let table = Self::capture_after(&text, "INTO").ok_or_else(|| err("missing INTO"))?;
            let values = Self::capture_values(&text).ok_or_else(|| err("missing VALUES"))?;
            if values.is_empty() {
                return Err(err("empty VALUES list"));
            }
            let key = GlobalKey::new(self.catalog.table(&table), values[0] as u64);
            let row = geotp_storage::Row::from_values(
                values
                    .iter()
                    .skip(1)
                    .map(|v| geotp_storage::Value::Int(*v))
                    .collect(),
            );
            return Ok(ParsedStatement {
                op: Some(ClientOp::Insert { key, row }),
                control: None,
                is_last,
            });
        }

        if upper.starts_with("DELETE") {
            let table = Self::capture_after(&text, "FROM").ok_or_else(|| err("missing FROM"))?;
            let row = Self::capture_where_id(&text).ok_or_else(|| err("missing WHERE id = <n>"))?;
            let key = GlobalKey::new(self.catalog.table(&table), row);
            return Ok(ParsedStatement {
                op: Some(ClientOp::Delete(key)),
                control: None,
                is_last,
            });
        }

        Err(err("unsupported statement"))
    }

    fn strip_last_annotation(text: &mut String) -> bool {
        let lowered = text.to_ascii_lowercase();
        let markers = [
            "/*+ last */",
            "/* last */",
            "/*last*/",
            "/* last statement */",
        ];
        for marker in markers {
            if let Some(pos) = lowered.find(marker) {
                text.replace_range(pos..pos + marker.len(), "");
                return true;
            }
        }
        false
    }

    fn capture_after(text: &str, keyword: &str) -> Option<String> {
        let upper = text.to_ascii_uppercase();
        let pos = upper.find(&keyword.to_ascii_uppercase())? + keyword.len();
        text[pos..]
            .split_whitespace()
            .next()
            .map(|s| {
                s.trim_matches(|c: char| !c.is_alphanumeric() && c != '_')
                    .to_string()
            })
            .filter(|s| !s.is_empty())
    }

    fn capture_between(text: &str, start: &str, end: &str) -> Option<String> {
        let upper = text.to_ascii_uppercase();
        let s = upper.find(start)? + start.len();
        let e = upper.find(end)?;
        if e <= s {
            return None;
        }
        Some(text[s..e].trim().to_string())
    }

    fn capture_where_id(text: &str) -> Option<u64> {
        let upper = text.to_ascii_uppercase();
        let pos = upper.find("WHERE")?;
        let clause = &text[pos + 5..];
        let eq = clause.find('=')?;
        clause[eq + 1..]
            .split_whitespace()
            .next()?
            .trim_matches(|c: char| !c.is_ascii_digit())
            .parse()
            .ok()
    }

    fn capture_values(text: &str) -> Option<Vec<i64>> {
        let upper = text.to_ascii_uppercase();
        let pos = upper.find("VALUES")?;
        let rest = &text[pos + 6..];
        let open = rest.find('(')?;
        let close = rest.find(')')?;
        let inner = &rest[open + 1..close];
        inner
            .split(',')
            .map(|v| v.trim().parse::<i64>().ok())
            .collect()
    }

    fn parse_delta(set_clause: &str) -> Option<SetExpr> {
        // Forms (already upper-cased by the caller): "BAL = BAL + 100",
        // "BAL = BAL - 100", "BAL = 42".
        let eq = set_clause.find('=')?;
        let rhs = set_clause[eq + 1..].trim();
        let col = set_clause[..eq].trim();
        if let Some(stripped) = rhs.strip_prefix(col) {
            let stripped = stripped.trim();
            if let Some(v) = stripped.strip_prefix('+') {
                return v.trim().parse().ok().map(SetExpr::Delta);
            }
            if let Some(v) = stripped.strip_prefix('-') {
                return v.trim().parse::<i64>().ok().map(|d| SetExpr::Delta(-d));
            }
        }
        rhs.parse().ok().map(SetExpr::Assign)
    }
}

enum SetExpr {
    Delta(i64),
    Assign(i64),
}

/// Renders per-data-source subtransaction scripts (the rewriter of Fig. 3).
#[derive(Debug, Default)]
pub struct Rewriter;

impl Rewriter {
    /// Render the command script a branch executes on its data source,
    /// including the dialect-specific transaction control statements.
    pub fn render_branch(
        &self,
        dialect: Dialect,
        xid: Xid,
        ops: &[ClientOp],
        catalog: &Catalog,
        decentralized_prepare: bool,
    ) -> Vec<String> {
        let mut script = Vec::new();
        match dialect {
            Dialect::MySql => script.push(format!("XA START '{},{}'", xid.gtrid, xid.bqual)),
            Dialect::Postgres => script.push("BEGIN".to_string()),
        }
        for op in ops {
            script.push(self.render_op(dialect, op, catalog));
        }
        if decentralized_prepare {
            script.extend(dialect.prepare_commands(xid));
        }
        script
    }

    fn table_name(catalog: &Catalog, key: GlobalKey) -> String {
        catalog
            .name_of(key.table)
            .map(str::to_string)
            .unwrap_or_else(|| format!("t{}", key.table.0))
    }

    fn render_op(&self, dialect: Dialect, op: &ClientOp, catalog: &Catalog) -> String {
        match op {
            ClientOp::Read(key) => {
                let base = format!(
                    "SELECT * FROM {} WHERE id = {}",
                    Self::table_name(catalog, *key),
                    key.row
                );
                // The paper's setup adds an explicit shared lock for PostgreSQL.
                match dialect {
                    Dialect::Postgres => format!("{base} FOR SHARE"),
                    Dialect::MySql => base,
                }
            }
            ClientOp::ReadForUpdate(key) => format!(
                "SELECT * FROM {} WHERE id = {} FOR UPDATE",
                Self::table_name(catalog, *key),
                key.row
            ),
            ClientOp::AddInt { key, delta, .. } => format!(
                "UPDATE {} SET bal = bal + {} WHERE id = {}",
                Self::table_name(catalog, *key),
                delta,
                key.row
            ),
            ClientOp::Write { key, .. } => format!(
                "UPDATE {} SET bal = ? WHERE id = {}",
                Self::table_name(catalog, *key),
                key.row
            ),
            ClientOp::Insert { key, .. } => format!(
                "INSERT INTO {} (id, ...) VALUES ({}, ...)",
                Self::table_name(catalog, *key),
                key.row
            ),
            ClientOp::Delete(key) => format!(
                "DELETE FROM {} WHERE id = {}",
                Self::table_name(catalog, *key),
                key.row
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_running_example() {
        let mut parser = SqlParser::new();
        let script = "BEGIN;\
            UPDATE savings SET bal = bal - 100 WHERE id = 2000001;\
            UPDATE savings SET bal = bal + 100 WHERE id = 42 /*+ last */;\
            COMMIT;";
        let parsed = parser.parse_script(script).unwrap();
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[0].control, Some(TxnControl::Begin));
        assert_eq!(
            parsed[1].op,
            Some(ClientOp::AddInt {
                key: GlobalKey::new(parser.catalog().lookup("savings").unwrap(), 2000001),
                col: 0,
                delta: -100
            })
        );
        assert!(!parsed[1].is_last);
        assert!(parsed[2].is_last, "annotation must be recognized");
        assert_eq!(parsed[3].control, Some(TxnControl::Commit));
    }

    #[test]
    fn parses_selects_with_and_without_for_update() {
        let mut parser = SqlParser::new();
        let plain = parser
            .parse_statement("SELECT * FROM usertable WHERE id = 7")
            .unwrap();
        assert!(matches!(plain.op, Some(ClientOp::Read(_))));
        let locked = parser
            .parse_statement("SELECT * FROM usertable WHERE id = 7 FOR UPDATE")
            .unwrap();
        assert!(matches!(locked.op, Some(ClientOp::ReadForUpdate(_))));
    }

    #[test]
    fn parses_insert_delete_and_assignment_update() {
        let mut parser = SqlParser::new();
        let ins = parser
            .parse_statement("INSERT INTO accounts (id, bal) VALUES (9, 500)")
            .unwrap();
        match ins.op {
            Some(ClientOp::Insert { key, row }) => {
                assert_eq!(key.row, 9);
                assert_eq!(row.get(0).unwrap().as_int(), Some(500));
            }
            other => panic!("unexpected {other:?}"),
        }
        let del = parser
            .parse_statement("DELETE FROM accounts WHERE id = 9")
            .unwrap();
        assert!(matches!(del.op, Some(ClientOp::Delete(_))));
        let assign = parser
            .parse_statement("UPDATE accounts SET bal = 77 WHERE id = 3")
            .unwrap();
        assert!(matches!(assign.op, Some(ClientOp::Write { .. })));
    }

    #[test]
    fn rejects_unsupported_statements() {
        let mut parser = SqlParser::new();
        assert!(parser.parse_statement("CREATE TABLE foo (id INT)").is_err());
        assert!(parser
            .parse_statement("UPDATE t SET a = b WHERE id = 1")
            .is_err());
        assert!(parser.parse_statement("SELECT * FROM t").is_err());
        let err = parser.parse_statement("GRANT ALL").unwrap_err();
        assert!(err.to_string().contains("unsupported"));
    }

    #[test]
    fn catalog_reuses_table_ids_case_insensitively() {
        let mut parser = SqlParser::new();
        parser
            .parse_statement("SELECT * FROM Savings WHERE id = 1")
            .unwrap();
        parser
            .parse_statement("SELECT * FROM SAVINGS WHERE id = 2")
            .unwrap();
        assert_eq!(parser.catalog().len(), 1);
        assert!(parser.catalog().lookup("savings").is_some());
    }

    #[test]
    fn rewriter_renders_dialect_specific_scripts() {
        let mut parser = SqlParser::new();
        parser
            .parse_statement("SELECT * FROM savings WHERE id = 1")
            .unwrap();
        let catalog = parser.catalog().clone();
        let key = GlobalKey::new(catalog.lookup("savings").unwrap(), 1);
        let ops = vec![ClientOp::Read(key), ClientOp::add(key, 100)];
        let xid = Xid::new(1, 2);
        let rewriter = Rewriter;

        let mysql = rewriter.render_branch(Dialect::MySql, xid, &ops, &catalog, true);
        assert_eq!(mysql[0], "XA START '1,2'");
        assert!(mysql[1].starts_with("SELECT * FROM savings"));
        assert!(!mysql[1].contains("FOR SHARE"));
        assert_eq!(mysql.last().unwrap(), "XA PREPARE '1,2'");

        let pg = rewriter.render_branch(Dialect::Postgres, xid, &ops, &catalog, true);
        assert_eq!(pg[0], "BEGIN");
        assert!(
            pg[1].ends_with("FOR SHARE"),
            "PostgreSQL reads get FOR SHARE: {}",
            pg[1]
        );
        assert_eq!(pg.last().unwrap(), "PREPARE TRANSACTION '1_2'");
    }
}
