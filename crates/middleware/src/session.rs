//! The session-first client front door.
//!
//! The paper's middleware is *interactive*: clients hold sessions and ship
//! statements one round at a time, and GeoTP's latency-aware scheduling and
//! decentralized prepare act on that statement stream. This module is the
//! client-facing API for that reality, uniform over every backend in the
//! workspace (the GeoTP middleware, the coordinator cluster tier, the
//! ScalarDB-style baseline and the distributed-database baseline):
//!
//! * [`SessionService`] — anything a client can `connect` a [`Session`] to;
//! * [`Session`] — one client connection: [`Session::begin`] live
//!   transactions, or replay a whole [`TransactionSpec`] with
//!   [`Session::run_spec`] (the compatibility adapter for the old one-shot
//!   `run_transaction` front door);
//! * [`Txn`] — a live transaction handle: [`Txn::execute`] ships one
//!   statement round, [`Txn::execute_last`] carries the paper's `/*+ last */`
//!   annotation (triggering the decentralized prepare at the end of that
//!   round), [`Txn::commit`] / [`Txn::rollback`] conclude it, and dropping
//!   the handle without concluding models a **mid-transaction client crash**
//!   — the backend notices the lost connection and rolls the orphaned
//!   branches back, like a real proxy reacting to a TCP reset.
//!
//! Statement rounds travel over the simulated network: a session built with
//! a remote client placement (e.g.
//! [`Middleware::session_service_from`](crate::Middleware::session_service_from))
//! pays one client↔middleware round trip per `begin`/round/`commit`, and
//! that time lands in [`LatencyBreakdown::client_rtt`]; client think time
//! injected with [`Txn::think`] lands in [`LatencyBreakdown::think_time`].
//! Co-located sessions (the default) pay nothing, which keeps the replay
//! adapter's latency identical to the old one-shot path.
//!
//! ```
//! use geotp_middleware::session::SessionService;
//! use geotp_middleware::{ClientOp, GlobalKey, Middleware, MiddlewareConfig, Partitioner, Protocol};
//! use geotp_datasource::{DataSource, DataSourceConfig};
//! use geotp_net::{NetworkBuilder, NodeId};
//! use geotp_storage::{Row, TableId};
//! use std::rc::Rc;
//! use std::time::Duration;
//!
//! let mut rt = geotp_simrt::Runtime::new();
//! rt.block_on(async {
//!     let dm = NodeId::middleware(0);
//!     let net = NetworkBuilder::new(1)
//!         .static_link(dm, NodeId::data_source(0), Duration::from_millis(10))
//!         .build();
//!     let ds = DataSource::new(DataSourceConfig::new(NodeId::data_source(0)), Rc::clone(&net));
//!     ds.load(geotp_storage::Key::new(TableId(0), 1), Row::int(100));
//!     let mw = Middleware::connect(
//!         MiddlewareConfig::new(dm, Protocol::geotp(), Partitioner::Range { rows_per_node: 100, nodes: 1 }),
//!         net,
//!         &[ds],
//!         None,
//!     );
//!
//!     // Connect a session, run one interactive transaction.
//!     let mut session = mw.connect(7);
//!     let mut txn = session.begin().await.unwrap();
//!     let round = txn.execute_last(&[ClientOp::add(GlobalKey::new(TableId(0), 1), 5)]).await.unwrap();
//!     assert_eq!(round.rows.len(), 1);
//!     let outcome = txn.commit().await;
//!     assert!(outcome.committed);
//! });
//! ```

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::time::Duration;

use geotp_net::NodeId;
use geotp_simrt::{now, sleep};
use geotp_storage::Row;
use rand::rngs::StdRng;
use rand::Rng;

use crate::coordinator::{LiveTxn, Middleware};
use crate::metrics::{AbortReason, TxnOutcome};
use crate::ops::{ClientOp, TransactionSpec};
use crate::parser::{ParseError, TxnControl};

/// Boxed future alias used by the object-safe session traits.
pub type BoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// Why a session-level operation failed, with the client-visible aborted
/// outcome attached (so drivers and ledgers can record it uniformly).
#[derive(Debug, Clone, PartialEq)]
pub struct TxnError {
    /// The abort reason, mirrored from [`TxnError::outcome`].
    pub reason: AbortReason,
    /// Whether the client should retry (re-`begin` on the same session): the
    /// coordinator crashed or was fenced mid-transaction and the session will
    /// be re-routed / served by a successor. Definite aborts (execution
    /// failure, admission rejection) are not marked retryable — the
    /// *workload* may retry those, but the session layer has no opinion.
    pub retryable: bool,
    /// The aborted outcome as a client-side ledger should record it. A
    /// refused connection (`gtrid == 0`, [`AbortReason::CoordinatorCrashed`])
    /// never started a transaction.
    pub outcome: TxnOutcome,
}

impl TxnError {
    /// A refused connection: no live backend would accept the session's
    /// `begin`. Always retryable.
    pub fn refused() -> Self {
        Self {
            reason: AbortReason::CoordinatorCrashed,
            retryable: true,
            outcome: TxnOutcome::aborted(AbortReason::CoordinatorCrashed, Duration::ZERO, false),
        }
    }

    /// Wrap an aborted outcome.
    pub fn aborted(outcome: TxnOutcome, retryable: bool) -> Self {
        Self {
            reason: outcome.abort_reason.unwrap_or(AbortReason::ExecutionFailed),
            retryable,
            outcome,
        }
    }

    /// An overload shed: admission control rejected the `begin` (bounded
    /// queue full or queue-time deadline expired) before any transaction
    /// started. Retryable after the supplied retry-after backoff.
    pub fn overloaded(retry_after: Duration) -> Self {
        let mut outcome = TxnOutcome::aborted(AbortReason::Overloaded, Duration::ZERO, false);
        outcome.retry_after = Some(retry_after);
        Self {
            reason: AbortReason::Overloaded,
            retryable: true,
            outcome,
        }
    }

    /// The session was reaped by the idle-session reaper. Retryable: the
    /// client reconnects (re-registering the session) and begins again.
    pub fn session_expired() -> Self {
        Self {
            reason: AbortReason::SessionExpired,
            retryable: true,
            outcome: TxnOutcome::aborted(AbortReason::SessionExpired, Duration::ZERO, false),
        }
    }

    /// Whether this error is a refused connection (the transaction never
    /// started; the session should back off and re-`begin`).
    pub fn is_refused(&self) -> bool {
        self.outcome.gtrid == 0 && self.reason == AbortReason::CoordinatorCrashed
    }

    /// Whether this error is an overload shed (see [`TxnOutcome::is_overloaded`]).
    pub fn is_overloaded(&self) -> bool {
        self.reason == AbortReason::Overloaded
    }
}

/// Session-level retry policy: a budget of attempts with capped exponential
/// backoff and seeded jitter. The jitter is drawn from the caller's RNG
/// stream, so every retry schedule is a pure function of the run's seed and
/// fingerprints stay bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` means never retry.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry thereafter.
    pub base_backoff: Duration,
    /// Ceiling on the exponential backoff (pre-jitter).
    pub max_backoff: Duration,
    /// Jitter width as a fraction of the backoff: the slept pause is
    /// uniformly drawn from `backoff * [1 - jitter/2, 1 + jitter/2)`. Zero
    /// disables jitter (and draws nothing from the RNG stream).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A fixed-interval policy with no jitter — every retry waits exactly
    /// `backoff`. This reproduces the legacy harness behaviour (and consumes
    /// no RNG), so pre-existing chaos fingerprints are unchanged.
    pub fn fixed(max_attempts: u32, backoff: Duration) -> Self {
        Self {
            max_attempts,
            base_backoff: backoff,
            max_backoff: backoff,
            jitter: 0.0,
        }
    }

    /// The pause before retry number `retry` (0-based): exponential from
    /// `base_backoff`, capped at `max_backoff`, jittered from `rng`.
    pub fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let exp = retry.min(20);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        if self.jitter <= 0.0 {
            return raw;
        }
        let factor = 1.0 - self.jitter / 2.0 + self.jitter * rng.gen::<f64>();
        Duration::from_secs_f64(raw.as_secs_f64() * factor)
    }

    /// Whether the session layer may retry this outcome. True for refused
    /// connections, overload sheds, expired sessions and fenced coordinators
    /// (all *definite* non-commits); never true for an indeterminate
    /// coordinator crash (`gtrid != 0`, outcome unknown — retrying could
    /// double-apply).
    pub fn should_retry(outcome: &TxnOutcome) -> bool {
        outcome.is_refusal()
            || matches!(
                outcome.abort_reason,
                Some(AbortReason::Overloaded)
                    | Some(AbortReason::SessionExpired)
                    | Some(AbortReason::CoordinatorFenced)
            )
    }
}

/// What [`Session::run_spec_with_retries`] observed: the final outcome plus
/// how the retry budget was spent.
#[derive(Debug, Clone, PartialEq)]
pub struct RetriedOutcome {
    /// The last attempt's outcome (committed, or the abort that exhausted the
    /// budget — the original abort reason survives retry exhaustion).
    pub outcome: TxnOutcome,
    /// Attempts made (1 = first try succeeded or was not retryable).
    pub attempts: u32,
    /// Total backoff slept between attempts.
    pub backoff: Duration,
}

/// The client-observed result of one statement round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundResult {
    /// Rows returned by the round's read operations, in operation order.
    pub rows: Vec<Row>,
    /// Client-observed latency of the round (client↔service hops included).
    pub latency: Duration,
}

/// A parsed SQL script, as the session front door executes it.
pub enum SqlScript {
    /// The script runs this transaction (one statement per round).
    Run(Rc<TransactionSpec>),
    /// The script ends in ROLLBACK (or contains no operations).
    Rollback,
}

/// Anything a client can connect a [`Session`] to. Implemented by the GeoTP
/// middleware, the coordinator cluster, and the ScalarDB / distributed-DB
/// baselines.
pub trait SessionService {
    /// Open a client session. Sessions are the unit of routing affinity in
    /// clustered deployments; `session_id` identifies the client connection.
    fn connect(&self, session_id: u64) -> Session;

    /// Display name used in experiment tables.
    fn label(&self) -> String {
        "service".to_string()
    }
}

/// The server side of one session — produces live transaction handles.
/// Backends implement this; clients use the [`Session`] wrapper.
pub trait SessionLink {
    /// Start a transaction on this session.
    fn begin<'a>(&'a mut self) -> BoxFuture<'a, Result<Box<dyn TxnHandle>, TxnError>>;

    /// Parse a SQL script into an executable plan. Backends without a SQL
    /// front door return a parse error.
    fn parse_sql(&self, script: &str) -> Result<SqlScript, ParseError> {
        Err(ParseError {
            message: "this backend has no SQL front door".to_string(),
            statement: script.to_string(),
        })
    }
}

/// The server side of one live transaction. Backends implement this; clients
/// use the [`Txn`] wrapper, which also supplies the connection-loss cleanup
/// on drop.
pub trait TxnHandle {
    /// Execute one statement round. `last` carries the `/*+ last */`
    /// annotation: backends with a decentralized prepare trigger it at the
    /// end of this round.
    fn execute<'a>(
        &'a mut self,
        ops: &'a [ClientOp],
        last: bool,
    ) -> BoxFuture<'a, Result<RoundResult, TxnError>>;

    /// Execute one SQL statement (honouring a `/*+ last */` annotation).
    /// Backends without a SQL front door abort the transaction.
    fn execute_sql<'a>(
        &'a mut self,
        statement: &'a str,
    ) -> BoxFuture<'a, Result<RoundResult, TxnError>> {
        let _ = statement;
        Box::pin(async {
            Err(TxnError {
                reason: AbortReason::ExecutionFailed,
                retryable: false,
                outcome: TxnOutcome::aborted(AbortReason::ExecutionFailed, Duration::ZERO, false),
            })
        })
    }

    /// Record client think time (already slept by the caller) so it lands in
    /// the latency breakdown.
    fn note_think(&mut self, _thought: Duration) {}

    /// Record time this transaction's `begin` spent in an admission queue
    /// (already elapsed at an outer layer, e.g. the cluster front door) so it
    /// lands in [`LatencyBreakdown::queue_time`](crate::LatencyBreakdown::queue_time)
    /// and the end-to-end latency.
    fn note_queue_time(&mut self, _queued: Duration) {}

    /// Commit the transaction.
    fn commit(self: Box<Self>) -> BoxFuture<'static, TxnOutcome>;

    /// Roll the transaction back at the client's request.
    fn rollback(self: Box<Self>) -> BoxFuture<'static, TxnOutcome>;

    /// The client's connection dropped mid-transaction: clean up without an
    /// outcome (nobody is listening).
    fn abandon(self: Box<Self>);

    /// The global transaction id, `0` if none was assigned.
    fn gtrid(&self) -> u64;
}

/// One client session: a sequence of transactions against a
/// [`SessionService`], with routing affinity in clustered deployments.
pub struct Session {
    id: u64,
    label: String,
    link: Box<dyn SessionLink>,
}

impl Session {
    /// Assemble a session from a backend link (used by [`SessionService`]
    /// implementations).
    pub fn from_link(id: u64, label: impl Into<String>, link: Box<dyn SessionLink>) -> Self {
        Self {
            id,
            label: label.into(),
            link,
        }
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The backend's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Begin a live transaction.
    pub async fn begin(&mut self) -> Result<Txn, TxnError> {
        let handle = self.link.begin().await?;
        Ok(Txn {
            handle: Some(handle),
        })
    }

    /// Replay a whole [`TransactionSpec`] through the live-transaction path:
    /// begin, one `execute` per round (the final round carries the spec's
    /// `/*+ last */` annotation), commit. This is the thin adapter that keeps
    /// the old spec-submission front door working on top of sessions.
    pub async fn run_spec(&mut self, spec: &TransactionSpec) -> TxnOutcome {
        self.run_spec_thinking(spec, Duration::ZERO).await
    }

    /// [`Session::run_spec`] with client think time between statement rounds
    /// — the interactive terminal the paper's workloads model.
    pub async fn run_spec_thinking(
        &mut self,
        spec: &TransactionSpec,
        think_time: Duration,
    ) -> TxnOutcome {
        let mut txn = match self.begin().await {
            Ok(txn) => txn,
            Err(refused) => return refused.outcome,
        };
        let mut rows = Vec::new();
        let rounds = spec.rounds.len();
        for (idx, round) in spec.rounds.iter().enumerate() {
            if idx > 0 && !think_time.is_zero() {
                txn.think(think_time).await;
            }
            let last = spec.annotate_last && idx + 1 == rounds;
            match txn.execute_round(round, last).await {
                Ok(mut result) => rows.append(&mut result.rows),
                Err(error) => return error.outcome,
            }
        }
        let mut outcome = txn.commit().await;
        if outcome.committed && outcome.rows.is_empty() {
            // Interactive backends return rows per round; restore the
            // one-shot contract for replayed specs.
            outcome.rows = rows;
        }
        outcome
    }

    /// [`Session::run_spec_thinking`] under a [`RetryPolicy`]: retryable
    /// non-commits (refused connections, overload sheds, expired sessions,
    /// fenced coordinators — see [`RetryPolicy::should_retry`]) are re-run
    /// after a deterministic backoff until the budget is exhausted. The pause
    /// honours a shed's retry-after hint when it exceeds the policy's own
    /// backoff. Jitter comes from `rng`, so the whole schedule is a function
    /// of the run's seed.
    pub async fn run_spec_with_retries(
        &mut self,
        spec: &TransactionSpec,
        think_time: Duration,
        policy: RetryPolicy,
        rng: &mut StdRng,
    ) -> RetriedOutcome {
        let budget = policy.max_attempts.max(1);
        let mut attempts = 0;
        let mut backoff_total = Duration::ZERO;
        loop {
            attempts += 1;
            let outcome = self.run_spec_thinking(spec, think_time).await;
            if outcome.committed || !RetryPolicy::should_retry(&outcome) || attempts >= budget {
                return RetriedOutcome {
                    outcome,
                    attempts,
                    backoff: backoff_total,
                };
            }
            let mut pause = policy.backoff(attempts - 1, rng);
            if let Some(hint) = outcome.retry_after {
                pause = pause.max(hint);
            }
            sleep(pause).await;
            backoff_total += pause;
        }
    }

    /// Execute a SQL script (BEGIN ... COMMIT) as one transaction through the
    /// live path. Each statement becomes one interactive round; the
    /// `/*+ last */` annotation is honoured.
    pub async fn run_sql(&mut self, script: &str) -> Result<TxnOutcome, ParseError> {
        match self.link.parse_sql(script)? {
            SqlScript::Rollback => Ok(TxnOutcome::aborted(
                AbortReason::ClientRollback,
                Duration::ZERO,
                false,
            )),
            SqlScript::Run(spec) => Ok(self.run_spec(&spec).await),
        }
    }
}

/// A live transaction handle. Obtained from [`Session::begin`]; concluded by
/// [`Txn::commit`] or [`Txn::rollback`]. Dropping the handle without
/// concluding it models a mid-transaction client crash: the backend cleans
/// the orphaned branches up on its own.
pub struct Txn {
    handle: Option<Box<dyn TxnHandle>>,
}

impl Txn {
    fn handle_mut(&mut self) -> &mut Box<dyn TxnHandle> {
        self.handle.as_mut().expect("transaction already concluded")
    }

    /// The global transaction id the backend assigned.
    pub fn gtrid(&self) -> u64 {
        self.handle.as_ref().map(|h| h.gtrid()).unwrap_or(0)
    }

    /// Ship one statement round.
    pub async fn execute(&mut self, ops: &[ClientOp]) -> Result<RoundResult, TxnError> {
        self.execute_round(ops, false).await
    }

    /// Ship the final statement round with the `/*+ last */` annotation,
    /// letting a decentralized-prepare backend start preparing as soon as the
    /// round finishes.
    pub async fn execute_last(&mut self, ops: &[ClientOp]) -> Result<RoundResult, TxnError> {
        self.execute_round(ops, true).await
    }

    /// Ship one round with an explicit `last` flag.
    pub async fn execute_round(
        &mut self,
        ops: &[ClientOp],
        last: bool,
    ) -> Result<RoundResult, TxnError> {
        self.handle_mut().execute(ops, last).await
    }

    /// Execute one SQL statement (a `/*+ last */` annotation on the statement
    /// triggers the decentralized prepare, exactly like [`Txn::execute_last`]).
    pub async fn execute_sql(&mut self, statement: &str) -> Result<RoundResult, TxnError> {
        self.handle_mut().execute_sql(statement).await
    }

    /// Client think time between rounds: sleeps in virtual time and records
    /// the pause in the transaction's latency breakdown.
    pub async fn think(&mut self, pause: Duration) {
        sleep(pause).await;
        self.handle_mut().note_think(pause);
    }

    /// Record already-elapsed think time without sleeping (for backends that
    /// wrap another backend's handle and have slept at their own layer).
    pub fn note_think(&mut self, thought: Duration) {
        self.handle_mut().note_think(thought);
    }

    /// Record already-elapsed admission-queue time (see
    /// [`TxnHandle::note_queue_time`]).
    pub fn note_queue_time(&mut self, queued: Duration) {
        self.handle_mut().note_queue_time(queued);
    }

    /// Commit.
    pub async fn commit(mut self) -> TxnOutcome {
        self.handle
            .take()
            .expect("transaction already concluded")
            .commit()
            .await
    }

    /// Roll back at the client's request.
    pub async fn rollback(mut self) -> TxnOutcome {
        self.handle
            .take()
            .expect("transaction already concluded")
            .rollback()
            .await
    }

    /// Crash the client mid-transaction: the handle is dropped without a
    /// conclusion and the backend rolls the orphaned branches back. (Plain
    /// `drop(txn)` does the same; this spelling is for tests and chaos
    /// scripts that want the crash to be visible.)
    pub fn abandon(mut self) {
        if let Some(handle) = self.handle.take() {
            handle.abandon();
        }
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.abandon();
        }
    }
}

// ---------------------------------------------------------------------------
// Middleware backend
// ---------------------------------------------------------------------------

/// The GeoTP middleware's [`SessionService`], with an optional client
/// placement: when `client` is set, every `begin`/round/`commit` pays a
/// client↔middleware round trip over the simulated network and the hops land
/// in [`LatencyBreakdown::client_rtt`](crate::LatencyBreakdown::client_rtt).
#[derive(Clone)]
pub struct MiddlewareSessionService {
    mw: Rc<Middleware>,
    client: Option<NodeId>,
}

impl Middleware {
    /// The session front door for clients co-located with the middleware
    /// (no client↔middleware network hops — the deployment the paper's
    /// closed-loop terminals model).
    pub fn session_service(self: &Rc<Self>) -> MiddlewareSessionService {
        MiddlewareSessionService {
            mw: Rc::clone(self),
            client: None,
        }
    }

    /// The session front door for clients at `client`: every statement round
    /// pays the client↔middleware round trip.
    pub fn session_service_from(self: &Rc<Self>, client: NodeId) -> MiddlewareSessionService {
        MiddlewareSessionService {
            mw: Rc::clone(self),
            client: Some(client),
        }
    }
}

impl SessionService for MiddlewareSessionService {
    fn connect(&self, session_id: u64) -> Session {
        self.mw.register_session(session_id);
        Session::from_link(
            session_id,
            self.mw.protocol().name(),
            Box::new(MiddlewareLink {
                mw: Rc::clone(&self.mw),
                client: self.client,
                session: session_id,
            }),
        )
    }

    fn label(&self) -> String {
        self.mw.protocol().name().to_string()
    }
}

impl SessionService for Rc<Middleware> {
    fn connect(&self, session_id: u64) -> Session {
        self.session_service().connect(session_id)
    }

    fn label(&self) -> String {
        self.protocol().name().to_string()
    }
}

struct MiddlewareLink {
    mw: Rc<Middleware>,
    client: Option<NodeId>,
    session: u64,
}

/// One client→middleware (or back) hop; returns the time it took. Free for
/// co-located clients.
async fn client_hop(mw: &Rc<Middleware>, client: Option<NodeId>, inbound: bool) -> Duration {
    let Some(client) = client else {
        return Duration::ZERO;
    };
    let started = now();
    let (from, to) = if inbound {
        (client, mw.node())
    } else {
        (mw.node(), client)
    };
    mw.network().transfer(from, to).await;
    now().duration_since(started)
}

impl SessionLink for MiddlewareLink {
    fn begin<'a>(&'a mut self) -> BoxFuture<'a, Result<Box<dyn TxnHandle>, TxnError>> {
        let mw = Rc::clone(&self.mw);
        let client = self.client;
        let session = self.session;
        Box::pin(async move {
            let connected = now();
            let hop_in = client_hop(&mw, client, true).await;
            let mut live = mw.begin_live(session).await?;
            live.backdate(connected);
            live.note_client_rtt(hop_in);
            let hop_out = client_hop(&mw, client, false).await;
            live.note_client_rtt(hop_out);
            Ok(Box::new(MiddlewareTxn {
                mw,
                client,
                live: Some(live),
                failed: None,
            }) as Box<dyn TxnHandle>)
        })
    }

    fn parse_sql(&self, script: &str) -> Result<SqlScript, ParseError> {
        self.mw.sql_script(script)
    }
}

struct MiddlewareTxn {
    mw: Rc<Middleware>,
    client: Option<NodeId>,
    live: Option<LiveTxn>,
    /// The aborted outcome of a transaction that already failed (a repeated
    /// commit/rollback on it re-reports the failure instead of panicking).
    failed: Option<TxnOutcome>,
}

impl MiddlewareTxn {
    fn concluded_error(&self) -> TxnError {
        let outcome = self.failed.clone().unwrap_or_else(|| {
            TxnOutcome::aborted(AbortReason::ExecutionFailed, Duration::ZERO, false)
        });
        TxnError::aborted(outcome, false)
    }

    async fn run_round(&mut self, ops: &[ClientOp], last: bool) -> Result<RoundResult, TxnError> {
        let MiddlewareTxn {
            mw,
            client,
            live,
            failed,
        } = self;
        let Some(live_txn) = live.as_mut() else {
            let outcome = failed.clone().unwrap_or_else(|| {
                TxnOutcome::aborted(AbortReason::ExecutionFailed, Duration::ZERO, false)
            });
            return Err(TxnError::aborted(outcome, false));
        };
        let round_started = now();
        let hop_in = client_hop(mw, *client, true).await;
        live_txn.note_client_rtt(hop_in);
        match mw.execute_live(live_txn, ops, last).await {
            Ok(rows) => {
                let hop_out = client_hop(mw, *client, false).await;
                live_txn.note_client_rtt(hop_out);
                Ok(RoundResult {
                    rows,
                    latency: now().duration_since(round_started),
                })
            }
            Err(error) => {
                *failed = Some(error.outcome.clone());
                *live = None;
                Err(error)
            }
        }
    }
}

impl TxnHandle for MiddlewareTxn {
    fn execute<'a>(
        &'a mut self,
        ops: &'a [ClientOp],
        last: bool,
    ) -> BoxFuture<'a, Result<RoundResult, TxnError>> {
        Box::pin(self.run_round(ops, last))
    }

    fn execute_sql<'a>(
        &'a mut self,
        statement: &'a str,
    ) -> BoxFuture<'a, Result<RoundResult, TxnError>> {
        Box::pin(async move {
            let parsed = match self.mw.parse_statement(statement) {
                Ok(parsed) => parsed,
                Err(_parse) => {
                    // Garbage from the client aborts the transaction, like a
                    // real server erroring the statement and poisoning the txn.
                    if self.live.is_some() {
                        let outcome = self.run_abort().await;
                        self.failed = Some(outcome);
                    }
                    return Err(self.concluded_error());
                }
            };
            if let Some(control) = parsed.control {
                return match control {
                    // BEGIN inside a live txn is a no-op.
                    TxnControl::Begin => Ok(RoundResult {
                        rows: Vec::new(),
                        latency: Duration::ZERO,
                    }),
                    // Transaction control must go through the *consuming*
                    // `Txn::commit` / `Txn::rollback`; an out-of-band control
                    // statement is protocol misuse and poisons the
                    // transaction — roll it back so the reported abort is
                    // real (locks released, outcome recorded) instead of
                    // leaving a live transaction behind a fabricated error.
                    TxnControl::Commit | TxnControl::Rollback => {
                        let outcome = self.run_abort().await;
                        self.failed = Some(outcome.clone());
                        Err(TxnError::aborted(outcome, false))
                    }
                };
            }
            let Some(op) = parsed.op else {
                return Ok(RoundResult {
                    rows: Vec::new(),
                    latency: Duration::ZERO,
                });
            };
            let ops = [op];
            self.run_round(&ops, parsed.is_last).await
        })
    }

    fn note_think(&mut self, thought: Duration) {
        if let Some(live) = self.live.as_mut() {
            live.note_think(thought);
        }
    }

    fn note_queue_time(&mut self, queued: Duration) {
        if let Some(live) = self.live.as_mut() {
            live.note_queue_time(queued);
        }
    }

    fn commit(mut self: Box<Self>) -> BoxFuture<'static, TxnOutcome> {
        Box::pin(async move {
            let Some(mut live) = self.live.take() else {
                return self.failed.clone().unwrap_or_else(|| {
                    TxnOutcome::aborted(AbortReason::ExecutionFailed, Duration::ZERO, false)
                });
            };
            let hop_in = client_hop(&self.mw, self.client, true).await;
            live.note_client_rtt(hop_in);
            let mut outcome = self.mw.commit_live(&mut live).await;
            let hop_out = client_hop(&self.mw, self.client, false).await;
            outcome.latency += hop_out;
            outcome.breakdown.client_rtt += hop_out;
            outcome
        })
    }

    fn rollback(mut self: Box<Self>) -> BoxFuture<'static, TxnOutcome> {
        Box::pin(async move { self.run_abort().await })
    }

    fn abandon(mut self: Box<Self>) {
        // The client vanished: no network hops (there is nobody to talk to);
        // the middleware notices the dropped connection and cleans up.
        if let Some(live) = self.live.take() {
            self.mw.abandon_live(live);
        }
    }

    fn gtrid(&self) -> u64 {
        self.live
            .as_ref()
            .map(|l| l.gtrid())
            .unwrap_or_else(|| self.failed.as_ref().map(|o| o.gtrid).unwrap_or(0))
    }
}

impl MiddlewareTxn {
    async fn run_abort(&mut self) -> TxnOutcome {
        let Some(mut live) = self.live.take() else {
            return self.failed.clone().unwrap_or_else(|| {
                TxnOutcome::aborted(AbortReason::ExecutionFailed, Duration::ZERO, false)
            });
        };
        let hop_in = client_hop(&self.mw, self.client, true).await;
        live.note_client_rtt(hop_in);
        let mut outcome = self.mw.rollback_live(&mut live).await;
        let hop_out = client_hop(&self.mw, self.client, false).await;
        outcome.latency += hop_out;
        outcome.breakdown.client_rtt += hop_out;
        outcome
    }
}
