//! # geotp-scalardb — the ScalarDB-style baseline
//!
//! ScalarDB (Yamada et al., VLDB 2023) is a universal transaction manager
//! that layers ACID transactions *above* arbitrary (possibly
//! non-transactional) data stores: all concurrency control happens at the
//! middleware, and the underlying stores are driven with single-record
//! get/put operations plus a "Consensus Commit" protocol that writes prepared
//! records and then a commit-status record.
//!
//! The paper uses ScalarDB as a baseline precisely because of this
//! architecture: concurrency control at the DM node limits scalability, and
//! the commit path costs additional WAN round trips. This crate reproduces
//! that architecture on the simulated substrate:
//!
//! * data sources are treated as dumb key-value stores (we reuse
//!   [`geotp_datasource::DataSource`] storage but bypass its XA machinery),
//! * record locks live in a lock table *inside the coordinator*
//!   ([`geotp_storage::LockManager`] reused at the middleware),
//! * execution reads each involved data source once per round (one WAN round
//!   trip per data source), writes are buffered at the coordinator,
//! * commit performs the Consensus-Commit sequence: one WAN round trip to
//!   write prepared records on every involved data source, then one WAN round
//!   trip to persist the commit-status record, then asynchronous apply.
//!
//! [`ScalarDbCluster::new_plus`] builds **ScalarDB+**, the paper's variant
//! that plugs GeoTP's latency-aware scheduler (O2) and admission heuristics
//! (O3) into the same architecture — demonstrating that the proposed
//! techniques generalize beyond ShardingSphere.

use std::cell::Cell;
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::time::Duration;

use geotp_datasource::DataSource;
use geotp_middleware::{
    AbortReason, BranchPlan, ClientOp, GeoScheduler, LatencyBreakdown, MiddlewareStats,
    Partitioner, SchedulerConfig, TransactionSpec, TxnOutcome,
};
use geotp_net::{LatencyMonitor, MonitorConfig, Network, NodeId};
use geotp_simrt::{join_all, now, sleep};
use geotp_storage::{Key, LockManager, LockMode, Row};
use geotp_workloads::TransactionService;
use std::cell::RefCell;

/// Configuration of the ScalarDB-style coordinator.
#[derive(Debug, Clone, Copy)]
pub struct ScalarDbConfig {
    /// The coordinator's node identity (usually the same host as the GeoTP
    /// middleware would use, i.e. co-located with the client).
    pub node: NodeId,
    /// Lock-wait timeout of the coordinator-side lock table.
    pub lock_wait_timeout: Duration,
    /// Whether GeoTP's latency-aware scheduling is applied to per-data-source
    /// batches (the ScalarDB+ variant).
    pub latency_aware: bool,
    /// Whether GeoTP's admission heuristics are applied (ScalarDB+).
    pub advanced: bool,
    /// CPU cost of coordinator-side validation per transaction.
    pub validation_cost: Duration,
}

impl ScalarDbConfig {
    /// Plain ScalarDB defaults.
    pub fn new(node: NodeId) -> Self {
        Self {
            node,
            lock_wait_timeout: Duration::from_secs(5),
            latency_aware: false,
            advanced: false,
            validation_cost: Duration::from_micros(500),
        }
    }
}

/// The ScalarDB-style transaction manager.
pub struct ScalarDbCluster {
    config: ScalarDbConfig,
    net: Rc<Network>,
    sources: HashMap<u32, Rc<DataSource>>,
    partitioner: Partitioner,
    locks: Rc<LockManager>,
    scheduler: Rc<GeoScheduler>,
    next_txn: Cell<u64>,
    stats: RefCell<MiddlewareStats>,
}

impl ScalarDbCluster {
    /// Build a plain ScalarDB coordinator over the given data sources.
    pub fn new(
        config: ScalarDbConfig,
        net: Rc<Network>,
        sources: &[Rc<DataSource>],
        partitioner: Partitioner,
    ) -> Rc<Self> {
        let targets: Vec<NodeId> = sources.iter().map(|s| s.node()).collect();
        let monitor = LatencyMonitor::new(&net, config.node, &targets, MonitorConfig::default());
        let scheduler_config = SchedulerConfig {
            latency_aware: config.latency_aware,
            advanced: config.advanced,
            ..SchedulerConfig::default()
        };
        let scheduler = Rc::new(GeoScheduler::new(scheduler_config, monitor));
        Rc::new(Self {
            locks: LockManager::new(config.lock_wait_timeout),
            sources: sources.iter().map(|s| (s.index(), Rc::clone(s))).collect(),
            partitioner,
            scheduler,
            net,
            config,
            next_txn: Cell::new(1),
            stats: RefCell::new(MiddlewareStats::default()),
        })
    }

    /// Build the ScalarDB+ variant (latency-aware scheduling + heuristics).
    pub fn new_plus(
        mut config: ScalarDbConfig,
        net: Rc<Network>,
        sources: &[Rc<DataSource>],
        partitioner: Partitioner,
    ) -> Rc<Self> {
        config.latency_aware = true;
        config.advanced = true;
        Self::new(config, net, sources, partitioner)
    }

    /// Whether this instance is the `+` variant.
    pub fn is_plus(&self) -> bool {
        self.config.latency_aware
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MiddlewareStats {
        *self.stats.borrow()
    }

    fn source(&self, ds: u32) -> &Rc<DataSource> {
        self.sources
            .get(&ds)
            .unwrap_or_else(|| panic!("no data source {ds}"))
    }

    /// One WAN round trip to data source `ds` performing `work` at the store.
    async fn round_trip<T>(&self, ds: u32, work: impl FnOnce(&Rc<DataSource>) -> T) -> T {
        let node = self.source(ds).node();
        self.net.transfer(self.config.node, node).await;
        let out = work(self.source(ds));
        self.net.transfer(node, self.config.node).await;
        out
    }

    /// Run one transaction with coordinator-side two-phase locking and the
    /// Consensus-Commit write path.
    pub async fn run(self: &Rc<Self>, spec: &TransactionSpec) -> TxnOutcome {
        let started = now();
        let gtrid = self.next_txn.get();
        self.next_txn.set(gtrid + 1);
        let xid = geotp_storage::Xid::new(gtrid, 0);

        let keys = spec.keys();
        let involved = self.partitioner.involved_nodes(&keys);
        let distributed = involved.len() > 1;
        let advanced = self.config.advanced;
        if advanced {
            self.scheduler
                .footprint()
                .borrow_mut()
                .on_access_start(&keys);
        }

        let finish = |committed: bool, reason: Option<AbortReason>, rows: Vec<Row>| {
            if advanced {
                self.scheduler
                    .footprint()
                    .borrow_mut()
                    .on_txn_finish(&keys, committed);
            }
            let outcome = TxnOutcome {
                gtrid,
                committed,
                abort_reason: reason,
                latency: now().duration_since(started),
                breakdown: LatencyBreakdown::default(),
                distributed,
                rows,
                ..TxnOutcome::default()
            };
            self.stats.borrow_mut().record(&outcome);
            outcome
        };

        sleep(self.config.validation_cost).await;

        // Admission control (ScalarDB+ only).
        if advanced {
            let plans: Vec<BranchPlan> = involved
                .iter()
                .map(|ds| BranchPlan {
                    ds_index: *ds,
                    keys: keys
                        .iter()
                        .copied()
                        .filter(|k| self.partitioner.route(*k) == *ds)
                        .collect(),
                })
                .collect();
            if let geotp_middleware::AdmissionDecision::Reject { .. } =
                self.scheduler.schedule_with_admission(&plans)
            {
                return finish(false, Some(AbortReason::AdmissionRejected), Vec::new());
            }
        }

        // Execution: acquire coordinator-side locks, then fetch/buffer.
        let mut rows = Vec::new();
        let mut write_buffer: Vec<(u32, Key, WriteIntent)> = Vec::new();
        let abort = |this: &Rc<Self>, xid| {
            this.locks.release_all(xid);
        };

        for round in &spec.rounds {
            // Group operations per data source.
            let groups = self.partitioner.split(round);
            // Coordinator-side locking happens before any store access.
            for op in round {
                let mode = if op.is_write() {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                if self
                    .locks
                    .acquire(xid, op.key().storage_key(), mode)
                    .await
                    .is_err()
                {
                    abort(self, xid);
                    return finish(false, Some(AbortReason::ExecutionFailed), Vec::new());
                }
            }
            // Latency-aware postponing of per-data-source read batches (the +
            // variant); plain ScalarDB dispatches everything immediately.
            let plans: Vec<BranchPlan> = groups
                .iter()
                .map(|(ds, ops)| BranchPlan {
                    ds_index: *ds,
                    keys: ops.iter().map(|op| op.key()).collect(),
                })
                .collect();
            let schedule = self.scheduler.schedule(&plans);

            let mut batches = Vec::new();
            for (idx, (ds, ops)) in groups.iter().enumerate() {
                let reads: Vec<Key> = ops
                    .iter()
                    .filter(|op| !op.is_write())
                    .map(|op| op.key().storage_key())
                    .collect();
                let postpone = schedule
                    .postpone
                    .get(idx)
                    .copied()
                    .unwrap_or(Duration::ZERO);
                let this = Rc::clone(self);
                let ds = *ds;
                batches.push(async move {
                    if !postpone.is_zero() {
                        sleep(postpone).await;
                    }
                    // One WAN round trip fetching every read of this round
                    // from this data source's store.
                    this.round_trip(ds, |source| {
                        reads
                            .iter()
                            .map(|k| source.engine().peek(*k))
                            .collect::<Vec<Option<Row>>>()
                    })
                    .await
                });
            }
            let read_results = join_all(batches).await;
            for results in read_results {
                for row in results {
                    match row {
                        Some(r) => rows.push(r),
                        None => {
                            abort(self, xid);
                            return finish(false, Some(AbortReason::ExecutionFailed), Vec::new());
                        }
                    }
                }
            }
            // Buffer writes (applied during the commit write phase).
            for (ds, ops) in &groups {
                for op in ops {
                    match op {
                        ClientOp::AddInt { key, col, delta } => write_buffer.push((
                            *ds,
                            key.storage_key(),
                            WriteIntent::Add {
                                col: *col,
                                delta: *delta,
                            },
                        )),
                        ClientOp::Write { key, row } | ClientOp::Insert { key, row } => {
                            write_buffer.push((
                                *ds,
                                key.storage_key(),
                                WriteIntent::Put(row.clone()),
                            ))
                        }
                        ClientOp::Delete(key) => {
                            write_buffer.push((*ds, key.storage_key(), WriteIntent::Delete))
                        }
                        ClientOp::Read(_) | ClientOp::ReadForUpdate(_) => {}
                    }
                }
            }
        }

        // Consensus Commit: prepare-record write round to every involved data
        // source, then one round trip persisting the commit-status record.
        let mut write_groups: HashMap<u32, Vec<(Key, WriteIntent)>> = HashMap::new();
        for (ds, key, intent) in write_buffer {
            write_groups.entry(ds).or_default().push((key, intent));
        }
        if !write_groups.is_empty() {
            let prepare_rounds = write_groups
                .iter()
                .map(|(ds, writes)| {
                    let this = Rc::clone(self);
                    let ds = *ds;
                    let writes = writes.clone();
                    async move {
                        this.round_trip(ds, move |source| {
                            for (key, intent) in &writes {
                                intent.apply(source, *key);
                            }
                        })
                        .await
                    }
                })
                .collect();
            join_all(prepare_rounds).await;
        }
        // Commit-status record lives on the coordinator table of the first
        // involved data source.
        let status_ds = involved.first().copied().unwrap_or(0);
        self.round_trip(status_ds, |_| ()).await;

        self.locks.release_all(xid);
        finish(true, None, rows)
    }
}

#[derive(Clone)]
enum WriteIntent {
    Put(Row),
    Add { col: usize, delta: i64 },
    Delete,
}

impl WriteIntent {
    fn apply(&self, source: &Rc<DataSource>, key: Key) {
        match self {
            WriteIntent::Put(row) => source.engine().load(key, row.clone()),
            WriteIntent::Add { col, delta } => {
                let mut row = source.engine().peek(key).unwrap_or_default();
                row.add_int(*col, *delta);
                source.engine().load(key, row);
            }
            WriteIntent::Delete => {
                // Modelled as overwriting with an empty row (the store has no
                // transactional delete; ScalarDB tombstones records).
                source.engine().load(key, Row::new());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Session front door (the interactive client API).
//
// ScalarDB's architecture is genuinely interactive-friendly: concurrency
// control lives at the coordinator, so a live transaction acquires
// coordinator-side locks and fetches reads round by round, buffering writes;
// only `commit` touches the stores with the Consensus-Commit write path.
// ---------------------------------------------------------------------------

use geotp_middleware::session::{
    BoxFuture, RoundResult, Session, SessionLink, SessionService, TxnError, TxnHandle,
};

impl ScalarDbCluster {
    /// The session front door for this coordinator.
    pub fn session_service(self: &Rc<Self>) -> ScalarDbService {
        ScalarDbService(Rc::clone(self))
    }

    fn record_outcome(
        &self,
        gtrid: u64,
        started: geotp_simrt::SimInstant,
        keys: &[geotp_middleware::GlobalKey],
        distributed: bool,
        committed: bool,
        reason: Option<AbortReason>,
    ) -> TxnOutcome {
        if self.config.advanced {
            self.scheduler
                .footprint()
                .borrow_mut()
                .on_txn_finish(keys, committed);
        }
        let outcome = TxnOutcome {
            gtrid,
            committed,
            abort_reason: reason,
            latency: now().duration_since(started),
            breakdown: LatencyBreakdown::default(),
            distributed,
            ..TxnOutcome::default()
        };
        self.stats.borrow_mut().record(&outcome);
        outcome
    }
}

impl SessionService for ScalarDbService {
    fn connect(&self, session_id: u64) -> Session {
        Session::from_link(
            session_id,
            TransactionService::label(self),
            Box::new(ScalarDbLink(Rc::clone(&self.0))),
        )
    }

    fn label(&self) -> String {
        TransactionService::label(self)
    }
}

struct ScalarDbLink(Rc<ScalarDbCluster>);

impl SessionLink for ScalarDbLink {
    fn begin<'a>(&'a mut self) -> BoxFuture<'a, Result<Box<dyn TxnHandle>, TxnError>> {
        let cluster = Rc::clone(&self.0);
        Box::pin(async move {
            let started = now();
            let gtrid = cluster.next_txn.get();
            cluster.next_txn.set(gtrid + 1);
            // Coordinator-side validation happens as the statement stream
            // arrives; charge it up front like the one-shot path does.
            sleep(cluster.config.validation_cost).await;
            Ok(Box::new(ScalarDbTxn {
                cluster,
                gtrid,
                xid: geotp_storage::Xid::new(gtrid, 0),
                started,
                keys: Vec::new(),
                involved: Vec::new(),
                write_buffer: Vec::new(),
                rounds: 0,
                concluded: false,
                failed: None,
            }) as Box<dyn TxnHandle>)
        })
    }
}

struct ScalarDbTxn {
    cluster: Rc<ScalarDbCluster>,
    gtrid: u64,
    xid: geotp_storage::Xid,
    started: geotp_simrt::SimInstant,
    keys: Vec<geotp_middleware::GlobalKey>,
    involved: Vec<u32>,
    write_buffer: Vec<(u32, Key, WriteIntent)>,
    rounds: usize,
    concluded: bool,
    /// The aborted outcome of a transaction that already failed: repeated
    /// commit/rollback on the handle re-report it instead of re-running the
    /// (lock-free by then!) write path or double-recording stats.
    failed: Option<TxnOutcome>,
}

impl ScalarDbTxn {
    fn distributed(&self) -> bool {
        self.involved.len() > 1
    }

    fn fail(&mut self, reason: AbortReason) -> TxnError {
        self.concluded = true;
        self.cluster.locks.release_all(self.xid);
        let outcome = self.cluster.record_outcome(
            self.gtrid,
            self.started,
            &self.keys,
            self.distributed(),
            false,
            Some(reason),
        );
        self.failed = Some(outcome.clone());
        TxnError::aborted(outcome, false)
    }

    /// The outcome to re-report once the transaction has concluded.
    fn concluded_outcome(&self) -> TxnOutcome {
        self.failed.clone().unwrap_or_else(|| {
            TxnOutcome::aborted(AbortReason::ExecutionFailed, Duration::ZERO, false)
        })
    }
}

impl TxnHandle for ScalarDbTxn {
    fn execute<'a>(
        &'a mut self,
        ops: &'a [ClientOp],
        _last: bool,
    ) -> BoxFuture<'a, Result<RoundResult, TxnError>> {
        Box::pin(async move {
            let round_started = now();
            let round_idx = self.rounds;
            self.rounds += 1;
            let cluster = Rc::clone(&self.cluster);
            let advanced = cluster.config.advanced;
            let mut fresh = Vec::new();
            for op in ops {
                let key = op.key();
                if !self.keys.contains(&key) {
                    self.keys.push(key);
                    fresh.push(key);
                }
                let ds = cluster.partitioner.route(key);
                if !self.involved.contains(&ds) {
                    self.involved.push(ds);
                }
            }
            if advanced && !fresh.is_empty() {
                cluster
                    .scheduler
                    .footprint()
                    .borrow_mut()
                    .on_access_start(&fresh);
            }

            // Admission control on the opening round (ScalarDB+ only).
            if advanced && round_idx == 0 {
                let plans: Vec<BranchPlan> = self
                    .involved
                    .iter()
                    .map(|ds| BranchPlan {
                        ds_index: *ds,
                        keys: self
                            .keys
                            .iter()
                            .copied()
                            .filter(|k| cluster.partitioner.route(*k) == *ds)
                            .collect(),
                    })
                    .collect();
                if let geotp_middleware::AdmissionDecision::Reject { .. } =
                    cluster.scheduler.schedule_with_admission(&plans)
                {
                    return Err(self.fail(AbortReason::AdmissionRejected));
                }
            }

            // Coordinator-side 2PL before any store access.
            for op in ops {
                let mode = if op.is_write() {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                if cluster
                    .locks
                    .acquire(self.xid, op.key().storage_key(), mode)
                    .await
                    .is_err()
                {
                    return Err(self.fail(AbortReason::ExecutionFailed));
                }
            }

            // Latency-aware postponing of per-data-source read batches.
            let groups = cluster.partitioner.split(ops);
            let plans: Vec<BranchPlan> = groups
                .iter()
                .map(|(ds, ops)| BranchPlan {
                    ds_index: *ds,
                    keys: ops.iter().map(|op| op.key()).collect(),
                })
                .collect();
            let schedule = cluster.scheduler.schedule(&plans);
            let mut batches = Vec::new();
            for (idx, (ds, ops)) in groups.iter().enumerate() {
                let reads: Vec<Key> = ops
                    .iter()
                    .filter(|op| !op.is_write())
                    .map(|op| op.key().storage_key())
                    .collect();
                let postpone = schedule
                    .postpone
                    .get(idx)
                    .copied()
                    .unwrap_or(Duration::ZERO);
                let this = Rc::clone(&cluster);
                let ds = *ds;
                batches.push(async move {
                    if !postpone.is_zero() {
                        sleep(postpone).await;
                    }
                    this.round_trip(ds, |source| {
                        reads
                            .iter()
                            .map(|k| source.engine().peek(*k))
                            .collect::<Vec<Option<Row>>>()
                    })
                    .await
                });
            }
            let read_results = join_all(batches).await;
            let mut rows = Vec::new();
            for results in read_results {
                for row in results {
                    match row {
                        Some(r) => rows.push(r),
                        None => return Err(self.fail(AbortReason::ExecutionFailed)),
                    }
                }
            }

            // Buffer writes for the commit write phase.
            for (ds, ops) in &groups {
                for op in ops {
                    match op {
                        ClientOp::AddInt { key, col, delta } => self.write_buffer.push((
                            *ds,
                            key.storage_key(),
                            WriteIntent::Add {
                                col: *col,
                                delta: *delta,
                            },
                        )),
                        ClientOp::Write { key, row } | ClientOp::Insert { key, row } => self
                            .write_buffer
                            .push((*ds, key.storage_key(), WriteIntent::Put(row.clone()))),
                        ClientOp::Delete(key) => {
                            self.write_buffer
                                .push((*ds, key.storage_key(), WriteIntent::Delete))
                        }
                        ClientOp::Read(_) | ClientOp::ReadForUpdate(_) => {}
                    }
                }
            }
            Ok(RoundResult {
                rows,
                latency: now().duration_since(round_started),
            })
        })
    }

    fn commit(mut self: Box<Self>) -> BoxFuture<'static, TxnOutcome> {
        Box::pin(async move {
            if self.concluded {
                // The transaction already failed (locks gone, abort
                // recorded): re-report the failure, never replay the
                // buffered writes.
                return self.concluded_outcome();
            }
            let cluster = Rc::clone(&self.cluster);
            self.concluded = true;
            // Consensus Commit: prepare-record writes, then the commit-status
            // record, then (asynchronous) apply — modelled as in the one-shot
            // path.
            let mut write_groups: HashMap<u32, Vec<(Key, WriteIntent)>> = HashMap::new();
            for (ds, key, intent) in self.write_buffer.drain(..) {
                write_groups.entry(ds).or_default().push((key, intent));
            }
            if !write_groups.is_empty() {
                let prepare_rounds = write_groups
                    .iter()
                    .map(|(ds, writes)| {
                        let this = Rc::clone(&cluster);
                        let ds = *ds;
                        let writes = writes.clone();
                        async move {
                            this.round_trip(ds, move |source| {
                                for (key, intent) in &writes {
                                    intent.apply(source, *key);
                                }
                            })
                            .await
                        }
                    })
                    .collect();
                join_all(prepare_rounds).await;
            }
            let status_ds = self.involved.first().copied().unwrap_or(0);
            cluster.round_trip(status_ds, |_| ()).await;
            cluster.locks.release_all(self.xid);
            cluster.record_outcome(
                self.gtrid,
                self.started,
                &self.keys,
                self.distributed(),
                true,
                None,
            )
        })
    }

    fn rollback(mut self: Box<Self>) -> BoxFuture<'static, TxnOutcome> {
        Box::pin(async move {
            if self.concluded {
                return self.concluded_outcome();
            }
            self.concluded = true;
            // Writes were only buffered; dropping them and releasing the
            // coordinator-side locks is the whole rollback.
            self.cluster.locks.release_all(self.xid);
            self.cluster.record_outcome(
                self.gtrid,
                self.started,
                &self.keys,
                self.distributed(),
                false,
                Some(AbortReason::ClientRollback),
            )
        })
    }

    fn abandon(mut self: Box<Self>) {
        if self.concluded {
            return;
        }
        self.concluded = true;
        self.cluster.locks.release_all(self.xid);
        let _ = self.cluster.record_outcome(
            self.gtrid,
            self.started,
            &self.keys,
            self.distributed(),
            false,
            Some(AbortReason::ClientDisconnected),
        );
    }

    fn gtrid(&self) -> u64 {
        self.gtrid
    }
}

/// Cloneable handle implementing the benchmark driver's
/// [`TransactionService`] interface for a ScalarDB cluster.
#[derive(Clone)]
pub struct ScalarDbService(pub Rc<ScalarDbCluster>);

impl TransactionService for ScalarDbService {
    fn run<'a>(
        &'a self,
        spec: &'a TransactionSpec,
    ) -> Pin<Box<dyn Future<Output = TxnOutcome> + 'a>> {
        Box::pin(async move { ScalarDbCluster::run(&self.0, spec).await })
    }

    fn label(&self) -> String {
        if self.0.is_plus() {
            "ScalarDB+".to_string()
        } else {
            "ScalarDB".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_datasource::DataSourceConfig;
    use geotp_middleware::GlobalKey;
    use geotp_net::NetworkBuilder;
    use geotp_simrt::Runtime;
    use geotp_storage::TableId;

    fn gk(row: u64) -> GlobalKey {
        GlobalKey::new(TableId(0), row)
    }

    fn cluster(plus: bool) -> (Rc<ScalarDbCluster>, Vec<Rc<DataSource>>) {
        let dm = NodeId::middleware(0);
        let net = NetworkBuilder::new(3)
            .static_link(dm, NodeId::data_source(0), Duration::from_millis(10))
            .static_link(dm, NodeId::data_source(1), Duration::from_millis(100))
            .build();
        let sources: Vec<_> = (0..2)
            .map(|i| {
                DataSource::new(
                    DataSourceConfig::new(NodeId::data_source(i)),
                    Rc::clone(&net),
                )
            })
            .collect();
        for (i, s) in sources.iter().enumerate() {
            for row in 0..100u64 {
                s.load(gk(i as u64 * 100 + row).storage_key(), Row::int(500));
            }
        }
        let partitioner = Partitioner::Range {
            rows_per_node: 100,
            nodes: 2,
        };
        let config = ScalarDbConfig::new(dm);
        let cluster = if plus {
            ScalarDbCluster::new_plus(config, net, &sources, partitioner)
        } else {
            ScalarDbCluster::new(config, net, &sources, partitioner)
        };
        (cluster, sources)
    }

    #[test]
    fn read_write_transaction_commits_and_applies() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (cluster, sources) = cluster(false);
            let spec = TransactionSpec::single_round(vec![
                ClientOp::Read(gk(1)),
                ClientOp::add(gk(101), 25),
            ]);
            let outcome = ScalarDbCluster::run(&cluster, &spec).await;
            assert!(outcome.committed);
            assert!(outcome.distributed);
            assert_eq!(outcome.rows.len(), 1);
            assert_eq!(
                sources[1]
                    .engine()
                    .peek(gk(101).storage_key())
                    .unwrap()
                    .int_value(),
                Some(525)
            );
            // Execution round (100ms) + prepare writes (100ms) + status (10ms)
            // plus validation: clearly more than GeoTP's two round trips.
            assert!(outcome.latency >= Duration::from_millis(210));
        });
    }

    #[test]
    fn coordinator_locks_serialize_conflicting_transactions() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (cluster, sources) = cluster(false);
            let spec = TransactionSpec::single_round(vec![ClientOp::add(gk(1), 1)]);
            let a = {
                let cluster = Rc::clone(&cluster);
                let spec = spec.clone();
                geotp_simrt::spawn(async move { ScalarDbCluster::run(&cluster, &spec).await })
            };
            let b = {
                let cluster = Rc::clone(&cluster);
                let spec = spec.clone();
                geotp_simrt::spawn(async move { ScalarDbCluster::run(&cluster, &spec).await })
            };
            assert!(a.await.committed);
            assert!(b.await.committed);
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(1).storage_key())
                    .unwrap()
                    .int_value(),
                Some(502),
                "both increments must be applied exactly once"
            );
        });
    }

    #[test]
    fn missing_key_aborts_the_transaction() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (cluster, _sources) = cluster(false);
            let spec = TransactionSpec::single_round(vec![ClientOp::Read(gk(99_999))]);
            let outcome = ScalarDbCluster::run(&cluster, &spec).await;
            assert!(!outcome.committed);
            assert_eq!(outcome.abort_reason, Some(AbortReason::ExecutionFailed));
            assert_eq!(cluster.stats().aborted, 1);
        });
    }

    #[test]
    fn interactive_session_commits_round_by_round() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (cluster, sources) = cluster(false);
            let mut session = SessionService::connect(&cluster.session_service(), 3);
            let mut txn = session.begin().await.unwrap();
            let r1 = txn.execute(&[ClientOp::Read(gk(1))]).await.unwrap();
            assert_eq!(r1.rows.len(), 1);
            txn.execute(&[ClientOp::add(gk(101), 25)]).await.unwrap();
            let outcome = txn.commit().await;
            assert!(outcome.committed);
            assert!(outcome.distributed);
            assert_eq!(
                sources[1]
                    .engine()
                    .peek(gk(101).storage_key())
                    .unwrap()
                    .int_value(),
                Some(525)
            );
        });
    }

    /// Regression: `commit` on a transaction that already failed must
    /// re-report the abort — never replay the buffered writes (the locks are
    /// long gone) or double-record stats.
    #[test]
    fn commit_after_failed_round_reapplies_nothing() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (cluster, sources) = cluster(false);
            let mut session = SessionService::connect(&cluster.session_service(), 4);
            let mut txn = session.begin().await.unwrap();
            txn.execute(&[ClientOp::add(gk(1), 77)]).await.unwrap();
            let error = txn
                .execute(&[ClientOp::Read(gk(99_999))])
                .await
                .expect_err("missing key fails the round");
            assert_eq!(error.reason, AbortReason::ExecutionFailed);
            let outcome = txn.commit().await;
            assert!(!outcome.committed, "a failed txn cannot commit later");
            assert_eq!(
                sources[0]
                    .engine()
                    .peek(gk(1).storage_key())
                    .unwrap()
                    .int_value(),
                Some(500),
                "the buffered write must never be applied"
            );
            let stats = cluster.stats();
            assert_eq!((stats.committed, stats.aborted), (0, 1), "one abort, once");
        });
    }

    #[test]
    fn plus_variant_is_faster_or_equal_and_labelled() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (plain, _) = cluster(false);
            let (plus, _) = cluster(true);
            assert!(!plain.is_plus());
            assert!(plus.is_plus());
            assert_eq!(
                TransactionService::label(&ScalarDbService(plain)),
                "ScalarDB"
            );
            assert_eq!(
                TransactionService::label(&ScalarDbService(plus)),
                "ScalarDB+"
            );
        });
    }
}
