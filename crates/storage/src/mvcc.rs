//! Multi-version storage: per-key version chains stamped with virtual-time
//! commit timestamps.
//!
//! The version store sits beside the record store. Writers still go through
//! strict 2PL and mutate the records map; at commit, [`StorageEngine`]
//! installs one [`ChainVersion`] per written key, all stamped with the same
//! commit instant. Snapshot readers never consult the records map (it holds
//! uncommitted writer data) — they resolve against the chain, visible-as-of
//! their snapshot timestamp, and acquire **no locks**.
//!
//! Garbage collection prunes chain prefixes no open snapshot can reach: for
//! each key, every version strictly older than the newest version visible at
//! the oldest open snapshot is dead. GC is triggered deterministically (an
//! install-count stride plus every snapshot close), so replays stay
//! bit-identical.
//!
//! [`StorageEngine`]: crate::engine::StorageEngine

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::time::Duration;

use geotp_simrt::hash::FxHashMap;

use crate::row::Row;
use crate::types::Key;

/// One committed version of one key.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainVersion {
    /// Monotonic per-key version number (v0 = bulk load), shared with the
    /// history recorder's numbering so the serializability checker sees one
    /// consistent version space.
    pub version: u64,
    /// Commit timestamp in virtual microseconds (0 for bulk-loaded rows).
    pub commit_ts: u64,
    /// The committed value (`None` = tombstone: the key was deleted).
    pub row: Option<Row>,
    /// FNV-1a fingerprint of the value (tombstone fingerprint for deletes).
    pub fingerprint: u64,
}

/// Version-store counters (GC effectiveness, chain growth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MvccStats {
    /// Versions installed by committed branches (excludes bulk load).
    pub versions_installed: u64,
    /// Versions reclaimed by garbage collection.
    pub versions_gced: u64,
    /// Number of GC passes run.
    pub gc_passes: u64,
}

/// Run a GC pass after this many installs (amortizes the full-map scan;
/// deterministic, so replay fingerprints are unaffected).
const GC_INSTALL_STRIDE: u64 = 64;

/// Per-key version chains plus the open-snapshot registry that bounds GC.
#[derive(Debug, Default)]
pub struct VersionStore {
    chains: RefCell<FxHashMap<Key, Vec<ChainVersion>>>,
    /// Open snapshot timestamps → refcount (several branches may pin the
    /// same virtual instant).
    open_snapshots: RefCell<BTreeMap<u64, u64>>,
    installs_since_gc: Cell<u64>,
    stats: Cell<MvccStats>,
}

impl VersionStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the bulk-loaded version 0 of a key (no GC accounting: load
    /// happens before any snapshot opens).
    pub fn load(&self, key: Key, row: Row, fingerprint: u64) {
        self.chains.borrow_mut().insert(
            key,
            vec![ChainVersion {
                version: 0,
                commit_ts: 0,
                row: Some(row),
                fingerprint,
            }],
        );
    }

    /// Append a committed version to a key's chain. The caller stamps every
    /// key of one commit with the same `commit_ts`, making the commit atomic
    /// in snapshot space.
    pub fn install(
        &self,
        key: Key,
        version: u64,
        commit_ts: u64,
        row: Option<Row>,
        fingerprint: u64,
    ) {
        let mut chains = self.chains.borrow_mut();
        let chain = chains.entry(key).or_default();
        chain.push(ChainVersion {
            version,
            commit_ts,
            row,
            fingerprint,
        });
        geotp_telemetry::observe(
            "storage.version_chain_len",
            "",
            0,
            Duration::from_micros(chain.len() as u64),
        );
        drop(chains);
        let mut stats = self.stats.get();
        stats.versions_installed += 1;
        self.stats.set(stats);
        let n = self.installs_since_gc.get() + 1;
        if n >= GC_INSTALL_STRIDE {
            self.installs_since_gc.set(0);
            self.gc();
        } else {
            self.installs_since_gc.set(n);
        }
    }

    /// The newest version with `commit_ts <= ts`, i.e. what a snapshot taken
    /// at `ts` observes. `None` when the key had no committed version yet.
    pub fn read_at(&self, key: Key, ts: u64) -> Option<ChainVersion> {
        self.chains
            .borrow()
            .get(&key)?
            .iter()
            .rev()
            .find(|v| v.commit_ts <= ts)
            .cloned()
    }

    /// The newest committed version of a key (read-committed visibility).
    pub fn read_latest(&self, key: Key) -> Option<ChainVersion> {
        self.chains.borrow().get(&key)?.last().cloned()
    }

    /// Register an open snapshot at `ts`, pinning versions it can reach
    /// against GC.
    pub fn open_snapshot(&self, ts: u64) {
        *self.open_snapshots.borrow_mut().entry(ts).or_insert(0) += 1;
    }

    /// Release one reference on the snapshot at `ts`; runs a GC pass when the
    /// snapshot fully closes (it may have been the GC horizon).
    pub fn close_snapshot(&self, ts: u64) {
        let fully_closed = {
            let mut open = self.open_snapshots.borrow_mut();
            match open.get_mut(&ts) {
                Some(count) if *count > 1 => {
                    *count -= 1;
                    false
                }
                Some(_) => {
                    open.remove(&ts);
                    true
                }
                None => false,
            }
        };
        if fully_closed {
            self.gc();
        }
    }

    /// The oldest open snapshot timestamp, if any (the GC horizon).
    pub fn oldest_open_snapshot(&self) -> Option<u64> {
        self.open_snapshots.borrow().keys().next().copied()
    }

    /// Length of a key's version chain (tests and telemetry audits).
    pub fn chain_len(&self, key: Key) -> usize {
        self.chains.borrow().get(&key).map_or(0, Vec::len)
    }

    /// Version-store counters.
    pub fn stats(&self) -> MvccStats {
        self.stats.get()
    }

    /// Prune versions no open snapshot can reach: per key, everything
    /// strictly older than the newest version visible at the oldest open
    /// snapshot (or everything but the tip when no snapshot is open).
    pub fn gc(&self) {
        let horizon = self.oldest_open_snapshot().unwrap_or(u64::MAX);
        let mut reclaimed = 0u64;
        let mut chains = self.chains.borrow_mut();
        for chain in chains.values_mut() {
            // Index of the newest version with commit_ts <= horizon; versions
            // before it are unreachable by any current or future snapshot.
            let keep_from = chain
                .iter()
                .rposition(|v| v.commit_ts <= horizon)
                .unwrap_or(0);
            if keep_from > 0 {
                reclaimed += keep_from as u64;
                chain.drain(..keep_from);
            }
        }
        drop(chains);
        let mut stats = self.stats.get();
        stats.versions_gced += reclaimed;
        stats.gc_passes += 1;
        self.stats.set(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TableId;

    fn key(row: u64) -> Key {
        Key::new(TableId(0), row)
    }

    fn store_with_versions(ts_list: &[u64]) -> VersionStore {
        let store = VersionStore::new();
        store.load(key(1), Row::int(0), 1);
        for (i, ts) in ts_list.iter().enumerate() {
            store.install(key(1), (i + 1) as u64, *ts, Some(Row::int(i as i64)), 2);
        }
        store
    }

    #[test]
    fn read_at_resolves_snapshot_visibility() {
        let store = store_with_versions(&[100, 200, 300]);
        assert_eq!(store.read_at(key(1), 0).unwrap().version, 0);
        assert_eq!(store.read_at(key(1), 150).unwrap().version, 1);
        assert_eq!(store.read_at(key(1), 200).unwrap().version, 2);
        assert_eq!(store.read_at(key(1), 999).unwrap().version, 3);
        assert_eq!(store.read_latest(key(1)).unwrap().version, 3);
        assert!(store.read_at(key(9), 999).is_none());
    }

    #[test]
    fn gc_prunes_below_oldest_open_snapshot() {
        let store = store_with_versions(&[100, 200, 300]);
        store.open_snapshot(250); // sees version 2 (ts=200)
        store.gc();
        // Versions 0 (ts 0) and 1 (ts 100) are unreachable; 2 and 3 survive.
        assert_eq!(store.chain_len(key(1)), 2);
        assert_eq!(store.read_at(key(1), 250).unwrap().version, 2);
        // Closing the snapshot collapses the chain to the tip.
        store.close_snapshot(250);
        assert_eq!(store.chain_len(key(1)), 1);
        assert_eq!(store.read_latest(key(1)).unwrap().version, 3);
        assert!(store.stats().versions_gced >= 3);
    }

    #[test]
    fn snapshot_refcounts_pin_the_horizon() {
        let store = store_with_versions(&[100, 200]);
        store.open_snapshot(150);
        store.open_snapshot(150);
        store.close_snapshot(150);
        // One reference remains: version 1 (ts=100) must stay reachable.
        store.gc();
        assert_eq!(store.read_at(key(1), 150).unwrap().version, 1);
        store.close_snapshot(150);
        assert_eq!(store.chain_len(key(1)), 1);
    }

    #[test]
    fn tombstones_are_versions_too() {
        let store = store_with_versions(&[100]);
        store.install(key(1), 2, 200, None, crate::history::TOMBSTONE_FINGERPRINT);
        assert!(store.read_at(key(1), 150).unwrap().row.is_some());
        assert!(store.read_at(key(1), 250).unwrap().row.is_none());
    }
}
