//! Strict two-phase-locking record lock manager.
//!
//! Matches the behaviour the paper assumes from MySQL/PostgreSQL under
//! serializable isolation:
//!
//! * shared locks for reads (`SELECT ... FOR SHARE` after the middleware's
//!   rewrite), exclusive locks for writes;
//! * FIFO wait queues per record, with lock upgrades (S→X) allowed only for a
//!   sole holder;
//! * a lock-wait timeout (default 5 s, the paper's configuration) after which
//!   the waiter fails and its transaction must abort — this is also the only
//!   deadlock-resolution mechanism, exactly like InnoDB's default;
//! * all locks are released only when the transaction commits or aborts
//!   (strict 2PL), so the lock contention span of Eq. (1) emerges naturally.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use geotp_simrt::hash::FxHashMap;
use geotp_simrt::sync::oneshot;
use geotp_simrt::{now, timeout_unpin, SimInstant};

use crate::small_vec::SmallVec;
use crate::types::{Key, Xid};

/// Lock mode requested on a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock: compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock: incompatible with everything.
    Exclusive,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// Why a lock acquisition failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// The lock-wait timeout elapsed (the data source would return
    /// `ER_LOCK_WAIT_TIMEOUT`); the transaction must abort.
    Timeout,
    /// The waiting transaction was aborted while queued (early abort).
    Cancelled,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Timeout => write!(f, "lock wait timeout exceeded"),
            LockError::Cancelled => write!(f, "lock wait cancelled (transaction aborted)"),
        }
    }
}

impl std::error::Error for LockError {}

struct Waiter {
    xid: Xid,
    mode: LockMode,
    waiter_id: u64,
    grant: oneshot::Sender<Result<(), LockError>>,
}

#[derive(Default)]
struct LockEntry {
    /// Current holders. Either any number of `Shared` holders or exactly one
    /// `Exclusive` holder. The single-holder common case stays inline, so an
    /// uncontended acquire allocates nothing.
    holders: SmallVec<(Xid, LockMode), 2>,
    waiters: VecDeque<Waiter>,
    /// Virtual instant at which the *current holder group* first acquired the
    /// record, used to measure lock contention spans.
    acquired_at: Option<SimInstant>,
}

impl LockEntry {
    fn holds(&self, xid: Xid) -> Option<LockMode> {
        self.holders.iter().find(|(h, _)| *h == xid).map(|(_, m)| m)
    }

    fn can_grant(&self, xid: Xid, mode: LockMode) -> bool {
        if self.holders.is_empty() {
            return true;
        }
        match mode {
            LockMode::Shared => {
                // Grantable if every holder is shared-compatible; waiting
                // writers do not block new readers here only when the queue is
                // empty (FIFO fairness — avoid writer starvation).
                self.holders
                    .iter()
                    .all(|(h, m)| h == xid || m.compatible(LockMode::Shared))
                    && self.waiters.is_empty()
            }
            LockMode::Exclusive => {
                // Grantable only if we are the sole holder (upgrade) or there
                // are no holders at all.
                self.holders.iter().all(|(h, _)| h == xid)
            }
        }
    }

    /// Record `xid` as a holder. Returns `true` when `xid` is a *new* holder
    /// on this record (as opposed to an in-place S→X upgrade), so callers can
    /// keep the per-transaction held-key index exact.
    fn grant(&mut self, xid: Xid, mode: LockMode, at: SimInstant) -> bool {
        let pos = self.holders.iter().position(|(h, _)| h == xid);
        let newly = match pos {
            Some(idx) => {
                // Upgrade in place (S→X) or keep the stronger mode.
                if mode == LockMode::Exclusive {
                    self.holders.set(idx, (xid, LockMode::Exclusive));
                }
                false
            }
            None => {
                self.holders.push((xid, mode));
                true
            }
        };
        if self.acquired_at.is_none() {
            self.acquired_at = Some(at);
        }
        newly
    }

    fn release_holder(&mut self, xid: Xid) -> bool {
        let pos = self.holders.iter().position(|(h, _)| h == xid);
        match pos {
            Some(idx) => {
                self.holders.remove(idx);
                if self.holders.is_empty() {
                    self.acquired_at = None;
                }
                true
            }
            None => false,
        }
    }
}

/// Per-transaction index into the lock table: which keys a transaction holds
/// and which keys it has a queued waiter on. This is what makes
/// [`LockManager::release_all`] and [`LockManager::cancel_waiters`] O(keys
/// the transaction touches) instead of O(keys in the whole table).
#[derive(Default)]
struct TxnLockIndex {
    /// Keys currently held, in acquisition order (release order follows it,
    /// which also makes the release sequence deterministic).
    held: SmallVec<Key, 8>,
    /// Keys with a queued waiter belonging to this transaction. Almost always
    /// zero or one entry (statements execute sequentially per branch).
    waiting: SmallVec<Key, 2>,
}

impl TxnLockIndex {
    fn is_empty(&self) -> bool {
        self.held.is_empty() && self.waiting.is_empty()
    }
}

/// Aggregate lock-manager statistics (inputs to abort-rate and contention
/// reporting in the experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Lock requests granted immediately.
    pub immediate_grants: u64,
    /// Lock requests that had to wait before being granted.
    pub waited_grants: u64,
    /// Lock requests that failed with a timeout.
    pub timeouts: u64,
    /// Lock requests cancelled while waiting (early aborts).
    pub cancelled: u64,
    /// Total virtual time spent waiting for locks, in microseconds.
    pub total_wait_micros: u64,
}

/// Aggregate counters kept in `Cell`s so the hot path never pays a `RefCell`
/// borrow check per lock request.
#[derive(Default)]
struct StatsCells {
    immediate_grants: Cell<u64>,
    waited_grants: Cell<u64>,
    timeouts: Cell<u64>,
    cancelled: Cell<u64>,
    total_wait_micros: Cell<u64>,
}

/// The per-data-source lock manager.
pub struct LockManager {
    entries: RefCell<FxHashMap<Key, LockEntry>>,
    /// Per-transaction held/waiting key index; see [`TxnLockIndex`].
    txn_index: RefCell<FxHashMap<Xid, TxnLockIndex>>,
    wait_timeout: Duration,
    next_waiter_id: Cell<u64>,
    /// Recycled grant-channel nodes: a contended acquire pops a node instead
    /// of allocating a fresh `Rc` per wait.
    grant_pool: oneshot::Pool<Result<(), LockError>>,
    stats: StatsCells,
}

impl LockManager {
    /// Create a lock manager with the given lock-wait timeout.
    pub fn new(wait_timeout: Duration) -> Rc<Self> {
        Rc::new(Self {
            entries: RefCell::new(FxHashMap::default()),
            txn_index: RefCell::new(FxHashMap::default()),
            wait_timeout,
            next_waiter_id: Cell::new(0),
            grant_pool: oneshot::Pool::new(),
            stats: StatsCells::default(),
        })
    }

    /// The configured lock-wait timeout.
    pub fn wait_timeout(&self) -> Duration {
        self.wait_timeout
    }

    /// Snapshot of the aggregate statistics.
    pub fn stats(&self) -> LockStats {
        LockStats {
            immediate_grants: self.stats.immediate_grants.get(),
            waited_grants: self.stats.waited_grants.get(),
            timeouts: self.stats.timeouts.get(),
            cancelled: self.stats.cancelled.get(),
            total_wait_micros: self.stats.total_wait_micros.get(),
        }
    }

    /// Record `key` as held by `xid` in the per-transaction index.
    fn index_held(&self, xid: Xid, key: Key) {
        self.txn_index
            .borrow_mut()
            .entry(xid)
            .or_default()
            .held
            .push(key);
    }

    /// Record that `xid` has a queued waiter on `key`.
    fn index_waiting(&self, xid: Xid, key: Key) {
        self.txn_index
            .borrow_mut()
            .entry(xid)
            .or_default()
            .waiting
            .push(key);
    }

    /// Drop one waiting-entry for `(xid, key)`; removes the whole index entry
    /// when it becomes empty.
    fn unindex_waiting(&self, xid: Xid, key: Key) {
        let mut index = self.txn_index.borrow_mut();
        if let Some(entry) = index.get_mut(&xid) {
            entry.waiting.remove_first(key);
            if entry.is_empty() {
                index.remove(&xid);
            }
        }
    }

    /// Number of transactions currently waiting for `key` (the `a_cnt − 1`
    /// input to the late-transaction-scheduling heuristic).
    pub fn waiters_on(&self, key: Key) -> usize {
        self.entries
            .borrow()
            .get(&key)
            .map(|e| e.waiters.len())
            .unwrap_or(0)
    }

    /// Number of transactions currently holding a lock on `key`.
    pub fn holders_on(&self, key: Key) -> usize {
        self.entries
            .borrow()
            .get(&key)
            .map(|e| e.holders.len())
            .unwrap_or(0)
    }

    /// Whether `xid` currently holds a lock on `key` (of any mode).
    pub fn holds(&self, xid: Xid, key: Key) -> Option<LockMode> {
        self.entries.borrow().get(&key).and_then(|e| e.holds(xid))
    }

    /// Acquire a lock on `key` for `xid`, waiting up to the configured
    /// lock-wait timeout.
    pub async fn acquire(
        self: &Rc<Self>,
        xid: Xid,
        key: Key,
        mode: LockMode,
    ) -> Result<(), LockError> {
        let request_at = now();
        // Fast path: grant immediately when compatible. Allocation-free for
        // the uncontended case (inline holder storage, `Cell` counters).
        {
            let mut entries = self.entries.borrow_mut();
            let entry = entries.entry(key).or_default();
            if let Some(held) = entry.holds(xid) {
                if held == LockMode::Exclusive || mode == LockMode::Shared {
                    // Re-entrant acquisition of an equal-or-weaker mode.
                    self.stats
                        .immediate_grants
                        .set(self.stats.immediate_grants.get() + 1);
                    return Ok(());
                }
            }
            if entry.can_grant(xid, mode) {
                let newly = entry.grant(xid, mode, request_at);
                drop(entries);
                if newly {
                    self.index_held(xid, key);
                }
                self.stats
                    .immediate_grants
                    .set(self.stats.immediate_grants.get() + 1);
                return Ok(());
            }
        }

        // Slow path: enqueue and wait for a grant, a cancellation or a timeout.
        let (tx, rx) = self.grant_pool.channel();
        let waiter_id = self.next_waiter_id.get() + 1;
        self.next_waiter_id.set(waiter_id);
        self.entries
            .borrow_mut()
            .entry(key)
            .or_default()
            .waiters
            .push_back(Waiter {
                xid,
                mode,
                waiter_id,
                grant: tx,
            });
        self.index_waiting(xid, key);

        // Contended wait: visible to telemetry as a LockWait leaf span on the
        // data source (nested under whatever agent span is open) plus a
        // wait-latency histogram sample, labelled by how the wait ended.
        let wait_span = geotp_telemetry::span_leaf(
            xid.gtrid,
            geotp_telemetry::TraceNode::data_source(xid.bqual),
            geotp_telemetry::SpanKind::LockWait,
            key.row,
        );

        // `timeout_unpin` keeps the deadline state inline: together with the
        // pooled grant channel, a contended acquire performs no allocations in
        // the steady state (`timeout` would box both future and sleep).
        let outcome = timeout_unpin(self.wait_timeout, rx).await;
        let waited = now().duration_since(request_at);
        self.stats
            .total_wait_micros
            .set(self.stats.total_wait_micros.get() + waited.as_micros() as u64);
        if geotp_telemetry::enabled() {
            geotp_telemetry::span_end(wait_span);
            let fate = match &outcome {
                Ok(Ok(Ok(()))) => "granted",
                Ok(Ok(Err(LockError::Cancelled))) | Ok(Err(_)) => "cancelled",
                Ok(Ok(Err(LockError::Timeout))) | Err(_) => "timeout",
            };
            geotp_telemetry::observe("storage.lock_wait", fate, xid.bqual, waited);
        }
        match outcome {
            Ok(Ok(Ok(()))) => {
                // The granting side (promote_waiters) has already moved this
                // key from the waiting index to the held index.
                self.stats
                    .waited_grants
                    .set(self.stats.waited_grants.get() + 1);
                Ok(())
            }
            Ok(Ok(Err(err))) => {
                // cancel_waiters has already dropped the waiting-index entry.
                if err == LockError::Cancelled {
                    self.stats.cancelled.set(self.stats.cancelled.get() + 1);
                } else {
                    self.stats.timeouts.set(self.stats.timeouts.get() + 1);
                }
                Err(err)
            }
            Ok(Err(_dropped)) => {
                // Sender dropped without a verdict (the waiter was discarded
                // wholesale); make sure the waiting index does not leak.
                self.unindex_waiting(xid, key);
                self.stats.cancelled.set(self.stats.cancelled.get() + 1);
                Err(LockError::Cancelled)
            }
            Err(_elapsed) => {
                // Remove ourselves from the queue; the grant may not have
                // happened (if it had, the oneshot would have resolved first).
                self.remove_waiter(xid, key, waiter_id);
                self.stats.timeouts.set(self.stats.timeouts.get() + 1);
                Err(LockError::Timeout)
            }
        }
    }

    fn remove_waiter(&self, xid: Xid, key: Key, waiter_id: u64) {
        let mut entries = self.entries.borrow_mut();
        if let Some(entry) = entries.get_mut(&key) {
            entry.waiters.retain(|w| w.waiter_id != waiter_id);
        }
        drop(entries);
        self.unindex_waiting(xid, key);
        // Removing a waiter can unblock the head of the queue (e.g. a timed-out
        // writer was blocking compatible readers behind it).
        self.promote_waiters(key);
    }

    /// Cancel every queued wait belonging to `xid` (used by the early-abort
    /// path so a doomed transaction stops queueing for locks).
    ///
    /// O(keys the transaction is waiting on): the per-transaction index names
    /// the exact records with a queued waiter, so unrelated entries are never
    /// visited (and unrelated waiters on the same records are left intact).
    pub fn cancel_waiters(&self, xid: Xid) {
        let waiting: Vec<Key> = {
            let mut index = self.txn_index.borrow_mut();
            let Some(entry) = index.get_mut(&xid) else {
                return;
            };
            let keys = entry.waiting.iter().collect();
            entry.waiting.clear();
            if entry.is_empty() {
                index.remove(&xid);
            }
            keys
        };
        for key in waiting {
            let cancelled: Vec<Waiter> = {
                let mut entries = self.entries.borrow_mut();
                let Some(entry) = entries.get_mut(&key) else {
                    continue;
                };
                let mut kept = VecDeque::with_capacity(entry.waiters.len());
                let mut cancelled = Vec::new();
                while let Some(w) = entry.waiters.pop_front() {
                    if w.xid == xid {
                        cancelled.push(w);
                    } else {
                        kept.push_back(w);
                    }
                }
                entry.waiters = kept;
                cancelled
            };
            for w in cancelled {
                let _ = w.grant.send(Err(LockError::Cancelled));
            }
            self.promote_waiters(key);
        }
    }

    /// Cancel *every* queued waiter on every record — what a data-source
    /// crash does to sessions blocked in a lock wait (their connections die
    /// with the server). Holders are left untouched: held locks belong to
    /// branch state, which crash recovery rolls back (or preserves, for
    /// prepared branches) explicitly.
    ///
    /// Unlike [`LockManager::cancel_waiters`] this does not promote anyone:
    /// the whole queue is gone, so there is nothing newly grantable, and the
    /// engine is about to stop serving requests anyway.
    pub fn cancel_all_waiters(&self) {
        let cancelled: Vec<Waiter> = {
            let mut entries = self.entries.borrow_mut();
            let mut cancelled = Vec::new();
            for entry in entries.values_mut() {
                cancelled.extend(entry.waiters.drain(..));
            }
            // Entries that only existed for their queue are dead now.
            entries.retain(|_, e| !e.holders.is_empty());
            cancelled
        };
        {
            let mut index = self.txn_index.borrow_mut();
            index.retain(|_, e| {
                e.waiting.clear();
                !e.held.is_empty()
            });
        }
        for w in cancelled {
            // The waiting side of `acquire` records the cancellation stat.
            let _ = w.grant.send(Err(LockError::Cancelled));
        }
    }

    /// Release every lock held by `xid` and grant newly-compatible waiters.
    /// Returns the keys that were released (with the duration they were held),
    /// which the engine uses to update contention statistics.
    ///
    /// O(keys held): releases walk the per-transaction held-key index (in
    /// acquisition order) instead of scanning the whole lock table.
    pub fn release_all(&self, xid: Xid) -> Vec<(Key, Duration)> {
        let held = {
            let mut index = self.txn_index.borrow_mut();
            let Some(entry) = index.get_mut(&xid) else {
                return Vec::new();
            };
            let held = std::mem::take(&mut entry.held);
            // A queued waiter may still reference this transaction (e.g. an
            // upgrade attempt raced with the abort path); keep the waiting
            // side of the index alive in that case.
            if entry.is_empty() {
                index.remove(&xid);
            }
            held
        };
        let mut released = Vec::with_capacity(held.len());
        for key in held.iter() {
            let did_release = {
                let mut entries = self.entries.borrow_mut();
                let Some(entry) = entries.get_mut(&key) else {
                    continue;
                };
                let held_since = entry.acquired_at;
                let did = entry.release_holder(xid);
                if did {
                    match held_since {
                        Some(at) => released.push((key, now().duration_since(at))),
                        None => released.push((key, Duration::ZERO)),
                    }
                }
                did
            };
            if did_release {
                self.promote_waiters(key);
            }
        }
        released
    }

    /// Grant as many queued waiters on `key` as compatibility allows (FIFO).
    fn promote_waiters(&self, key: Key) {
        loop {
            let granted = {
                let mut entries = self.entries.borrow_mut();
                let Some(entry) = entries.get_mut(&key) else {
                    return;
                };
                let Some(head) = entry.waiters.front() else {
                    // Clean up empty entries to bound memory.
                    if entry.holders.is_empty() {
                        entries.remove(&key);
                    }
                    return;
                };
                let can = match head.mode {
                    LockMode::Shared => entry
                        .holders
                        .iter()
                        .all(|(h, m)| h == head.xid || m.compatible(LockMode::Shared)),
                    LockMode::Exclusive => {
                        entry.holders.is_empty() || entry.holders.iter().all(|(h, _)| h == head.xid)
                    }
                };
                if !can {
                    return;
                }
                let head = entry.waiters.pop_front().unwrap();
                let newly = entry.grant(head.xid, head.mode, now());
                Some((head, newly))
            };
            match granted {
                Some((waiter, newly)) => {
                    // Keep the per-transaction index exact: the waiter is no
                    // longer waiting, and (unless this was an upgrade) now
                    // holds the record.
                    self.unindex_waiting(waiter.xid, key);
                    if newly {
                        self.index_held(waiter.xid, key);
                    }
                    let _ = waiter.grant.send(Ok(()));
                }
                None => return,
            }
        }
    }

    /// Number of records that currently have at least one holder or waiter.
    pub fn active_entries(&self) -> usize {
        self.entries.borrow().len()
    }

    /// Number of transactions tracked by the per-transaction lock index
    /// (diagnostics: must drop back to zero once all transactions finish).
    pub fn indexed_txns(&self) -> usize {
        self.txn_index.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TableId;
    use geotp_simrt::{sleep, spawn, Runtime};
    use std::cell::Cell;

    fn key(row: u64) -> Key {
        Key::new(TableId(0), row)
    }
    fn xid(n: u64) -> Xid {
        Xid::new(n, 0)
    }

    #[test]
    fn shared_locks_are_compatible() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            lm.acquire(xid(1), key(1), LockMode::Shared).await.unwrap();
            lm.acquire(xid(2), key(1), LockMode::Shared).await.unwrap();
            assert_eq!(lm.holders_on(key(1)), 2);
            assert_eq!(lm.stats().immediate_grants, 2);
        });
    }

    #[test]
    fn exclusive_blocks_until_release() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            lm.acquire(xid(1), key(1), LockMode::Exclusive)
                .await
                .unwrap();
            let lm2 = Rc::clone(&lm);
            let waiter = spawn(async move {
                let start = now();
                lm2.acquire(xid(2), key(1), LockMode::Exclusive)
                    .await
                    .unwrap();
                now().duration_since(start)
            });
            sleep(Duration::from_millis(50)).await;
            lm.release_all(xid(1));
            let waited = waiter.await;
            assert_eq!(waited, Duration::from_millis(50));
            assert_eq!(lm.holds(xid(2), key(1)), Some(LockMode::Exclusive));
            assert_eq!(lm.stats().waited_grants, 1);
        });
    }

    #[test]
    fn cancel_all_waiters_kicks_every_queue() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(60));
            lm.acquire(xid(1), key(1), LockMode::Exclusive)
                .await
                .unwrap();
            lm.acquire(xid(1), key(2), LockMode::Exclusive)
                .await
                .unwrap();
            let mut waiters = Vec::new();
            for (w, k) in [(2u64, 1u64), (3, 1), (4, 2)] {
                let lm2 = Rc::clone(&lm);
                waiters.push(spawn(async move {
                    lm2.acquire(xid(w), key(k), LockMode::Exclusive).await
                }));
            }
            sleep(Duration::from_millis(1)).await;
            assert_eq!(lm.waiters_on(key(1)), 2);
            lm.cancel_all_waiters();
            for w in waiters {
                assert_eq!(w.await, Err(LockError::Cancelled));
            }
            // The holder is untouched; the queues and waiting index are gone.
            assert_eq!(lm.holds(xid(1), key(1)), Some(LockMode::Exclusive));
            assert_eq!(lm.waiters_on(key(1)), 0);
            assert_eq!(lm.waiters_on(key(2)), 0);
            assert_eq!(lm.stats().cancelled, 3);
            // Releasing afterwards must not wake ghosts or panic.
            lm.release_all(xid(1));
        });
        // Nothing waits on a dead queue: virtual time never reached the 60s
        // lock timeout (a dangling waiter would have parked until then).
        assert!(rt.now_micros() < 2_000);
    }

    #[test]
    fn lock_wait_timeout_fails_the_request() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_millis(100));
            lm.acquire(xid(1), key(1), LockMode::Exclusive)
                .await
                .unwrap();
            let err = lm
                .acquire(xid(2), key(1), LockMode::Shared)
                .await
                .unwrap_err();
            assert_eq!(err, LockError::Timeout);
            assert_eq!(lm.stats().timeouts, 1);
            // The timed-out waiter is no longer queued.
            assert_eq!(lm.waiters_on(key(1)), 0);
        });
    }

    #[test]
    fn reentrant_and_upgrade() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            lm.acquire(xid(1), key(1), LockMode::Shared).await.unwrap();
            // Re-entrant shared.
            lm.acquire(xid(1), key(1), LockMode::Shared).await.unwrap();
            // Upgrade to exclusive as the sole holder succeeds immediately.
            lm.acquire(xid(1), key(1), LockMode::Exclusive)
                .await
                .unwrap();
            assert_eq!(lm.holds(xid(1), key(1)), Some(LockMode::Exclusive));
            // Re-entrant shared while holding exclusive is a no-op.
            lm.acquire(xid(1), key(1), LockMode::Shared).await.unwrap();
            assert_eq!(lm.holds(xid(1), key(1)), Some(LockMode::Exclusive));
        });
    }

    #[test]
    fn upgrade_waits_for_other_readers() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            lm.acquire(xid(1), key(1), LockMode::Shared).await.unwrap();
            lm.acquire(xid(2), key(1), LockMode::Shared).await.unwrap();
            let lm2 = Rc::clone(&lm);
            let upgrade =
                spawn(async move { lm2.acquire(xid(1), key(1), LockMode::Exclusive).await });
            sleep(Duration::from_millis(10)).await;
            assert_eq!(lm.waiters_on(key(1)), 1);
            lm.release_all(xid(2));
            assert!(upgrade.await.is_ok());
            assert_eq!(lm.holds(xid(1), key(1)), Some(LockMode::Exclusive));
        });
    }

    #[test]
    fn fifo_order_prevents_writer_starvation() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            lm.acquire(xid(1), key(1), LockMode::Shared).await.unwrap();
            // Writer queues first.
            let lm_w = Rc::clone(&lm);
            let writer =
                spawn(async move { lm_w.acquire(xid(2), key(1), LockMode::Exclusive).await });
            sleep(Duration::from_millis(1)).await;
            // A late reader must not jump ahead of the queued writer.
            let lm_r = Rc::clone(&lm);
            let order = Rc::new(Cell::new(0u8));
            let order_w = Rc::clone(&order);
            let reader = spawn(async move {
                lm_r.acquire(xid(3), key(1), LockMode::Shared)
                    .await
                    .unwrap();
                order_w.set(2);
            });
            sleep(Duration::from_millis(1)).await;
            lm.release_all(xid(1));
            writer.await.unwrap();
            assert_eq!(
                order.get(),
                0,
                "reader must still be waiting behind the writer"
            );
            lm.release_all(xid(2));
            reader.await;
            assert_eq!(order.get(), 2);
        });
    }

    #[test]
    fn cancel_waiters_unblocks_with_cancelled_error() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            lm.acquire(xid(1), key(1), LockMode::Exclusive)
                .await
                .unwrap();
            let lm2 = Rc::clone(&lm);
            let waiter =
                spawn(async move { lm2.acquire(xid(2), key(1), LockMode::Exclusive).await });
            sleep(Duration::from_millis(5)).await;
            lm.cancel_waiters(xid(2));
            assert_eq!(waiter.await.unwrap_err(), LockError::Cancelled);
            assert_eq!(lm.stats().cancelled, 1);
        });
    }

    #[test]
    fn release_reports_held_duration() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            lm.acquire(xid(1), key(1), LockMode::Exclusive)
                .await
                .unwrap();
            sleep(Duration::from_millis(200)).await;
            let released = lm.release_all(xid(1));
            assert_eq!(released.len(), 1);
            assert_eq!(released[0].0, key(1));
            assert_eq!(released[0].1, Duration::from_millis(200));
        });
    }

    #[test]
    fn release_grants_batch_of_readers() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            lm.acquire(xid(1), key(1), LockMode::Exclusive)
                .await
                .unwrap();
            let mut handles = Vec::new();
            for i in 2..6 {
                let lm2 = Rc::clone(&lm);
                handles.push(spawn(async move {
                    lm2.acquire(xid(i), key(1), LockMode::Shared).await
                }));
            }
            sleep(Duration::from_millis(1)).await;
            lm.release_all(xid(1));
            for h in handles {
                assert!(h.await.is_ok());
            }
            assert_eq!(lm.holders_on(key(1)), 4);
        });
    }

    #[test]
    fn deadlock_resolved_by_timeout() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_millis(50));
            lm.acquire(xid(1), key(1), LockMode::Exclusive)
                .await
                .unwrap();
            lm.acquire(xid(2), key(2), LockMode::Exclusive)
                .await
                .unwrap();
            let lm_a = Rc::clone(&lm);
            let a = spawn(async move { lm_a.acquire(xid(1), key(2), LockMode::Exclusive).await });
            let lm_b = Rc::clone(&lm);
            let b = spawn(async move { lm_b.acquire(xid(2), key(1), LockMode::Exclusive).await });
            let (ra, rb) = (a.await, b.await);
            // Both waits time out (neither transaction voluntarily releases).
            assert_eq!(ra.unwrap_err(), LockError::Timeout);
            assert_eq!(rb.unwrap_err(), LockError::Timeout);
        });
    }

    #[test]
    fn queued_writer_blocks_later_readers_fifo() {
        // Invariant the per-transaction index must preserve: a queued writer
        // keeps its FIFO slot, so readers that arrive later cannot overtake
        // it even though they are compatible with the current shared holders.
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            lm.acquire(xid(1), key(1), LockMode::Shared).await.unwrap();
            let lm_w = Rc::clone(&lm);
            let writer =
                spawn(async move { lm_w.acquire(xid(2), key(1), LockMode::Exclusive).await });
            sleep(Duration::from_millis(1)).await;
            // Three late readers must all queue behind the writer.
            let mut readers = Vec::new();
            for i in 3..6 {
                let lm_r = Rc::clone(&lm);
                readers.push(spawn(async move {
                    lm_r.acquire(xid(i), key(1), LockMode::Shared)
                        .await
                        .unwrap();
                    now()
                }));
            }
            sleep(Duration::from_millis(1)).await;
            assert_eq!(lm.waiters_on(key(1)), 4, "writer + 3 readers queued");
            lm.release_all(xid(1));
            writer.await.unwrap();
            let granted_at = now();
            assert_eq!(lm.holds(xid(2), key(1)), Some(LockMode::Exclusive));
            sleep(Duration::from_millis(7)).await;
            lm.release_all(xid(2));
            // All readers are granted together, and only after the writer
            // finished.
            for r in readers {
                let at = r.await;
                assert!(
                    at > granted_at,
                    "reader granted only after the writer released"
                );
            }
            assert_eq!(lm.holders_on(key(1)), 3);
        });
    }

    #[test]
    fn upgrade_as_sole_holder_keeps_index_exact() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            lm.acquire(xid(1), key(1), LockMode::Shared).await.unwrap();
            // S→X upgrade as the sole holder is immediate and must not
            // double-register the key in the held index.
            lm.acquire(xid(1), key(1), LockMode::Exclusive)
                .await
                .unwrap();
            assert_eq!(lm.holds(xid(1), key(1)), Some(LockMode::Exclusive));
            let released = lm.release_all(xid(1));
            assert_eq!(released.len(), 1, "upgraded key released exactly once");
            assert_eq!(lm.active_entries(), 0);
            assert_eq!(lm.indexed_txns(), 0, "per-transaction index fully cleaned");
        });
    }

    #[test]
    fn cancel_waiters_leaves_unrelated_waiters_intact() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            lm.acquire(xid(1), key(1), LockMode::Exclusive)
                .await
                .unwrap();
            lm.acquire(xid(1), key(2), LockMode::Exclusive)
                .await
                .unwrap();
            // Two unrelated waiters on key 1, one doomed waiter on each key.
            let lm_a = Rc::clone(&lm);
            let doomed_a =
                spawn(async move { lm_a.acquire(xid(2), key(1), LockMode::Exclusive).await });
            sleep(Duration::from_millis(1)).await;
            let lm_b = Rc::clone(&lm);
            let survivor =
                spawn(async move { lm_b.acquire(xid(3), key(1), LockMode::Exclusive).await });
            let lm_c = Rc::clone(&lm);
            let doomed_b =
                spawn(async move { lm_c.acquire(xid(2), key(2), LockMode::Exclusive).await });
            sleep(Duration::from_millis(1)).await;
            assert_eq!(lm.waiters_on(key(1)), 2);
            assert_eq!(lm.waiters_on(key(2)), 1);

            lm.cancel_waiters(xid(2));
            assert_eq!(doomed_a.await.unwrap_err(), LockError::Cancelled);
            assert_eq!(doomed_b.await.unwrap_err(), LockError::Cancelled);
            // The unrelated waiter is untouched, still first in line.
            assert_eq!(lm.waiters_on(key(1)), 1);
            lm.release_all(xid(1));
            assert!(survivor.await.is_ok());
            assert_eq!(lm.holds(xid(3), key(1)), Some(LockMode::Exclusive));
            lm.release_all(xid(3));
            assert_eq!(lm.indexed_txns(), 0);
        });
    }

    #[test]
    fn txn_index_tracks_held_and_waiting_lifecycles() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_millis(50));
            for i in 0..10 {
                lm.acquire(xid(1), key(i), LockMode::Exclusive)
                    .await
                    .unwrap();
            }
            assert_eq!(lm.indexed_txns(), 1);
            // A waiter that times out must not leak an index entry.
            let err = lm
                .acquire(xid(2), key(0), LockMode::Shared)
                .await
                .unwrap_err();
            assert_eq!(err, LockError::Timeout);
            assert_eq!(lm.indexed_txns(), 1, "timed-out waiter unindexed");
            let released = lm.release_all(xid(1));
            assert_eq!(released.len(), 10);
            // Release order follows acquisition order (deterministic).
            let keys: Vec<Key> = released.iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, (0..10).map(key).collect::<Vec<_>>());
            assert_eq!(lm.indexed_txns(), 0);
            assert_eq!(lm.active_entries(), 0);
        });
    }

    #[test]
    fn entries_are_cleaned_up() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let lm = LockManager::new(Duration::from_secs(5));
            for i in 0..100 {
                lm.acquire(xid(1), key(i), LockMode::Exclusive)
                    .await
                    .unwrap();
            }
            assert_eq!(lm.active_entries(), 100);
            lm.release_all(xid(1));
            assert_eq!(
                lm.active_entries(),
                0,
                "released entries must be garbage collected"
            );
        });
    }
}
