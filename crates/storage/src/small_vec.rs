//! A small-vector for `Copy` types: the first `N` elements live inline (no
//! heap allocation), later elements spill into a `Vec`.
//!
//! The lock manager's hot path stores lock holders and per-transaction key
//! indexes in these so the uncontended acquire/release cycle of a typical
//! transaction (a handful of keys, a single holder per record) never touches
//! the allocator. The implementation is fully safe Rust: the inline region is
//! an array of `Option<T>` rather than `MaybeUninit`, trading a few bytes of
//! padding for not having any `unsafe` in the storage crate.

/// A vector of `Copy` elements whose first `N` entries are stored inline.
#[derive(Debug, Clone)]
pub struct SmallVec<T: Copy, const N: usize> {
    inline: [Option<T>; N],
    spill: Vec<T>,
    len: usize,
}

impl<T: Copy, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy, const N: usize> SmallVec<T, N> {
    /// An empty vector (allocation-free).
    pub fn new() -> Self {
        Self {
            inline: [None; N],
            spill: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether any element spilled to the heap.
    pub fn spilled(&self) -> bool {
        self.len > N
    }

    /// Element at `index`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> T {
        assert!(
            index < self.len,
            "SmallVec index {index} out of bounds {}",
            self.len
        );
        if index < N {
            self.inline[index].expect("inline slot populated below len")
        } else {
            self.spill[index - N]
        }
    }

    /// Overwrite the element at `index`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `index >= len`.
    pub fn set(&mut self, index: usize, value: T) {
        debug_assert!(index < self.len);
        if index < N {
            self.inline[index] = Some(value);
        } else {
            self.spill[index - N] = value;
        }
    }

    /// Append an element.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = Some(value);
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Remove and return the element at `index`, shifting later elements left
    /// (preserves order; O(len), which is fine for the small lengths this is
    /// used at).
    pub fn remove(&mut self, index: usize) -> T {
        let removed = self.get(index);
        for i in index..self.len - 1 {
            let next = self.get(i + 1);
            self.set(i, next);
        }
        if self.len > N {
            self.spill.pop();
        } else {
            self.inline[self.len - 1] = None;
        }
        self.len -= 1;
        removed
    }

    /// Remove the first element equal to `value`; returns whether one was
    /// found.
    pub fn remove_first(&mut self, value: T) -> bool
    where
        T: PartialEq,
    {
        let pos = self.iter().position(|v| v == value);
        match pos {
            Some(idx) => {
                self.remove(idx);
                true
            }
            None => false,
        }
    }

    /// Whether the vector contains `value`.
    pub fn contains(&self, value: T) -> bool
    where
        T: PartialEq,
    {
        self.iter().any(|v| v == value)
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.inline = [None; N];
        self.spill.clear();
        self.len = 0;
    }

    /// Iterate over the elements by value.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len).map(|i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_within_inline_capacity() {
        let mut v: SmallVec<u64, 4> = SmallVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert!(!v.spilled());
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spills_past_inline_capacity() {
        let mut v: SmallVec<u64, 2> = SmallVec::new();
        for i in 0..100 {
            v.push(i);
        }
        assert_eq!(v.len(), 100);
        assert!(v.spilled());
        assert_eq!(v.iter().collect::<Vec<_>>(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn remove_shifts_across_the_spill_boundary() {
        let mut v: SmallVec<u64, 2> = SmallVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.remove(0), 0);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(v.remove(3), 4);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(v.spilled(), "len 3 > inline capacity 2");
        assert!(v.remove_first(2));
        assert!(!v.remove_first(2));
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!(!v.spilled());
    }

    #[test]
    fn contains_and_clear() {
        let mut v: SmallVec<u8, 3> = SmallVec::new();
        v.push(7);
        v.push(9);
        assert!(v.contains(7));
        assert!(!v.contains(8));
        v.clear();
        assert!(v.is_empty());
        assert!(!v.contains(7));
        // Reusable after clear.
        v.push(1);
        assert_eq!(v.get(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let v: SmallVec<u8, 2> = SmallVec::new();
        v.get(0);
    }
}
