//! Row and value representation.

use std::fmt;

/// A single column value. The workloads only need integers, floats and
/// strings (YCSB payload fields, TPC-C balances and names).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float (TPC-C amounts).
    Float(f64),
    /// UTF-8 string (names, payload padding).
    Str(String),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Interpret as an integer if possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as a float (integers are widened).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Interpret as a string slice if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A record: an ordered list of column values.
///
/// The first column is stored inline: single-column rows (the YCSB usertable
/// shape that dominates every benchmark) are created, cloned and dropped
/// without touching the allocator. Multi-column rows (TPC-C) spill the
/// remaining columns into a `Vec`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    /// Column 0, inline. `None` only for the empty row; `rest` is non-empty
    /// only if this is `Some`.
    first: Option<Value>,
    /// Columns 1.., heap-allocated only when they exist.
    rest: Vec<Value>,
}

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a row from column values.
    pub fn from_values(columns: Vec<Value>) -> Self {
        let mut it = columns.into_iter();
        let first = it.next();
        Self {
            first,
            rest: it.collect(),
        }
    }

    /// A single-integer-column row, the common YCSB shape (allocation-free).
    pub fn int(v: i64) -> Self {
        Self {
            first: Some(Value::Int(v)),
            rest: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.first.is_some() as usize + self.rest.len()
    }

    /// Whether the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.first.is_none()
    }

    /// Column accessor.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        if idx == 0 {
            self.first.as_ref()
        } else {
            self.rest.get(idx - 1)
        }
    }

    /// Mutable column accessor.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut Value> {
        if idx == 0 {
            self.first.as_mut()
        } else {
            self.rest.get_mut(idx - 1)
        }
    }

    /// Overwrite (or extend to include) column `idx`.
    pub fn set(&mut self, idx: usize, value: Value) {
        if idx == 0 {
            self.first = Some(value);
            return;
        }
        if self.first.is_none() {
            self.first = Some(Value::Null);
        }
        if idx > self.rest.len() {
            self.rest.resize(idx, Value::Null);
        }
        self.rest[idx - 1] = value;
    }

    /// First column as integer (YCSB convenience).
    pub fn int_value(&self) -> Option<i64> {
        self.get(0).and_then(Value::as_int)
    }

    /// Add `delta` to the integer in column `idx` (e.g. balance updates).
    pub fn add_int(&mut self, idx: usize, delta: i64) {
        let current = self.get(idx).and_then(Value::as_int).unwrap_or(0);
        self.set(idx, Value::Int(current + delta));
    }

    /// Iterate over the columns.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.first.iter().chain(self.rest.iter())
    }
}

impl From<Vec<Value>> for Row {
    fn from(columns: Vec<Value>) -> Self {
        Self::from_values(columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(5i64).as_int(), Some(5));
        assert_eq!(Value::from(2.5f64).as_float(), Some(2.5));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn row_set_extends_with_nulls() {
        let mut r = Row::new();
        r.set(2, Value::Int(9));
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(0), Some(&Value::Null));
        assert_eq!(r.get(2).unwrap().as_int(), Some(9));
    }

    #[test]
    fn add_int_accumulates() {
        let mut r = Row::int(100);
        r.add_int(0, -30);
        r.add_int(0, 5);
        assert_eq!(r.int_value(), Some(75));
    }

    #[test]
    fn display_values() {
        assert_eq!(Value::Int(1).to_string(), "1");
        assert_eq!(Value::Str("a".into()).to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
