//! # geotp-storage — data-source storage substrate
//!
//! The paper's data sources are MySQL and PostgreSQL instances operating at
//! the serializable isolation level with two-phase locking and XA support.
//! This crate implements the equivalent substrate from scratch:
//!
//! * an in-memory, multi-table record store ([`engine::StorageEngine`]),
//! * a strict two-phase-locking [`lock::LockManager`] with shared/exclusive
//!   record locks, FIFO wait queues, lock upgrades and a lock-wait timeout
//!   (the paper configures MySQL/PostgreSQL with a 5 s timeout),
//! * a write-ahead log ([`wal::WriteAheadLog`]) whose flush latency is part of
//!   the simulated prepare cost, with optional group commit (one flush
//!   amortized across a commit window of concurrently-committing branches),
//! * a multi-version store ([`mvcc::VersionStore`]): per-key version chains
//!   stamped with virtual-time commit timestamps, behind an
//!   [`engine::IsolationLevel`] knob — `Serializable2pl` (the default, pure
//!   2PL), `SnapshotRead` (lock-free consistent snapshots) and the
//!   deliberately weaker `ReadCommitted`,
//! * an XA participant state machine (`ACTIVE → ENDED → PREPARED →
//!   COMMITTED/ABORTED`) with crash/recovery semantics matching the two
//!   assumptions the paper relies on (§V-A ❶❷): unprepared subtransactions are
//!   aborted when the coordinator disconnects or when the data source
//!   restarts; prepared subtransactions survive restarts with their locks.
//!
//! Locks are held from first access until the commit/abort is applied, so the
//! *lock contention span* of Eq. (1) in the paper is directly observable.

pub mod engine;
pub mod history;
pub mod lock;
pub mod mvcc;
pub mod row;
pub mod small_vec;
pub mod types;
pub mod wal;

pub use engine::{CostModel, EngineConfig, EngineStats, IsolationLevel, StorageEngine, XaState};
pub use history::{row_fingerprint, BranchHistory, ReadAccess, VersionedValue, WriteAccess};
pub use lock::{LockError, LockManager, LockMode, LockStats};
pub use mvcc::{ChainVersion, MvccStats, VersionStore};
pub use row::{Row, Value};
pub use small_vec::SmallVec;
pub use types::{Key, StorageError, TableId, Xid};
pub use wal::{LogRecord, WriteAheadLog};
