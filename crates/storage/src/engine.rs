//! The in-memory storage engine: record store + 2PL + WAL + XA participant.
//!
//! One [`StorageEngine`] models one data source (a MySQL or PostgreSQL
//! instance). All statement execution goes through the XA branch state
//! machine; locks are acquired before access and released only when the
//! branch commits or rolls back (strict 2PL, serializable isolation).

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use geotp_simrt::hash::FxHashMap;
use geotp_simrt::{now, sleep, SimInstant};

use crate::history::{
    row_fingerprint, BranchHistory, ReadAccess, VersionedValue, WriteAccess, TOMBSTONE_FINGERPRINT,
};
use crate::lock::{LockManager, LockMode, LockStats};
use crate::mvcc::{ChainVersion, VersionStore};
use crate::row::Row;
use crate::types::{Key, StorageError, TableId, Xid};
use crate::wal::{LogRecord, WriteAheadLog};

/// Virtual-time cost of local work inside the data source. These replace the
/// real CPU/IO costs of MySQL/PostgreSQL; the defaults are in the range the
/// paper's breakdown (Fig. 6c) reports (≈2 ms local prepare, sub-millisecond
/// statement execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// CPU cost of executing one statement (after its locks are granted).
    pub statement_execute: Duration,
    /// Cost of the local prepare: state persist + WAL flush.
    pub prepare: Duration,
    /// Cost of applying the final commit/abort decision.
    pub decision_apply: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            statement_execute: Duration::from_micros(200),
            prepare: Duration::from_millis(2),
            decision_apply: Duration::from_micros(500),
        }
    }
}

impl CostModel {
    /// A zero-cost model, useful for tests that reason purely about latency
    /// structure (matching the paper's "we ignore the local execution time"
    /// simplification in the motivating example).
    pub fn zero() -> Self {
        Self {
            statement_execute: Duration::ZERO,
            prepare: Duration::ZERO,
            decision_apply: Duration::ZERO,
        }
    }
}

/// Concurrency-control mode for plain reads.
///
/// Writes (and `SELECT ... FOR UPDATE`) always go through strict 2PL in every
/// mode; the isolation level only chooses how *plain reads* resolve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IsolationLevel {
    /// Strict two-phase locking: plain reads take shared locks and observe
    /// the record store directly. Serializable; byte-identical to the legacy
    /// engine behavior.
    #[default]
    Serializable2pl,
    /// Multi-version snapshot reads: the first plain read pins a snapshot
    /// timestamp and every later plain read resolves against the version
    /// chain as of that instant — consistent, and entirely lock-free.
    SnapshotRead,
    /// Deliberately weaker: each plain read observes the newest committed
    /// version *at its own execution instant* without pinning a snapshot.
    /// Lock-free, but admits classic anomalies (non-repeatable reads, write
    /// skew) that the serializability checker is expected to convict.
    ReadCommitted,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Lock-wait timeout (the paper configures 5 s).
    pub lock_wait_timeout: Duration,
    /// Local work costs.
    pub cost: CostModel,
    /// Record per-branch versioned read/write histories
    /// ([`StorageEngine::committed_history`]) for serializability checking.
    /// Off by default: the recording costs a few hash lookups per statement,
    /// which performance workloads should not pay.
    pub record_history: bool,
    /// Concurrency-control mode for plain reads (writes are always 2PL).
    pub isolation: IsolationLevel,
    /// Group-commit window: a committing branch parks this long so one WAL
    /// flush amortizes across every branch that reaches its commit point in
    /// the window. `Duration::ZERO` (the default) disables group commit and
    /// keeps the legacy flush-per-commit behavior byte-identical.
    pub group_commit_window: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            lock_wait_timeout: Duration::from_secs(5),
            cost: CostModel::default(),
            record_history: false,
            isolation: IsolationLevel::Serializable2pl,
            group_commit_window: Duration::ZERO,
        }
    }
}

/// XA branch states (the participant side of the protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XaState {
    /// Statements may execute (`XA START` done).
    Active,
    /// Execution finished (`XA END` done), not yet prepared.
    Ended,
    /// Prepared: vote=yes is durable, locks still held.
    Prepared,
    /// Final state: committed.
    Committed,
    /// Final state: rolled back.
    Aborted,
}

/// Aggregate counters for one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Records read.
    pub reads: u64,
    /// Records written.
    pub writes: u64,
    /// Branches prepared.
    pub prepares: u64,
    /// Branches committed.
    pub commits: u64,
    /// Branches rolled back.
    pub aborts: u64,
    /// Sum of lock contention spans of finished branches, in microseconds
    /// (Eq. 1: first lock acquisition to last lock release).
    pub total_contention_span_micros: u64,
    /// Number of finished branches that held at least one lock.
    pub contention_span_samples: u64,
    /// Plain reads served lock-free from the version store (MVCC modes).
    pub snapshot_reads: u64,
    /// Commit-window waits aborted because the engine crashed (or was
    /// restarted) before the group flush made their records durable.
    pub group_commit_aborted_waits: u64,
}

struct TxnEntry {
    state: XaState,
    /// Before-images for rollback, in reverse application order.
    undo: Vec<(Key, Option<Row>)>,
    /// When the branch acquired its first lock. (Per-key release bookkeeping
    /// lives in the lock manager's own per-transaction index.)
    first_lock_at: Option<SimInstant>,
    /// Versioned reads recorded for serializability checking (only populated
    /// when [`EngineConfig::record_history`] is on).
    reads: Vec<ReadAccess>,
    /// Snapshot timestamp pinned by the branch's first plain read under
    /// [`IsolationLevel::SnapshotRead`]; registered with the version store so
    /// GC cannot reclaim the versions the snapshot can reach.
    snapshot_ts: Option<u64>,
}

impl TxnEntry {
    fn new() -> Self {
        Self {
            state: XaState::Active,
            undo: Vec::new(),
            first_lock_at: None,
            reads: Vec::new(),
            snapshot_ts: None,
        }
    }
}

/// Shared state of the engine's group-commit protocol: at most one committer
/// is the *leader* (it sleeps out the commit window and performs the batched
/// flush); every other committer parks on `notify` as a follower. A crash
/// bumps `epoch` so parked committers — whose volatile records were just
/// lost — fail instead of acknowledging a commit that is not durable.
#[derive(Default)]
struct GroupCommitState {
    leader: Cell<bool>,
    /// Followers parked waiting for the in-flight group flush.
    pending: Cell<u64>,
    /// Incremented by [`StorageEngine::crash`]; waiters from an older epoch
    /// must abort (their WAL tail was truncated).
    epoch: Cell<u64>,
    notify: geotp_simrt::sync::Notify,
}

/// One simulated data source's storage engine.
pub struct StorageEngine {
    records: RefCell<FxHashMap<Key, Row>>,
    locks: Rc<LockManager>,
    wal: WriteAheadLog,
    txns: RefCell<FxHashMap<Xid, TxnEntry>>,
    config: EngineConfig,
    stats: RefCell<EngineStats>,
    crashed: Cell<bool>,
    /// Committed version + value fingerprint per key (history recording).
    /// Mirrors the record store, so it is treated as durable across the
    /// simulated crash/restart like the records themselves.
    versions: RefCell<FxHashMap<Key, VersionedValue>>,
    /// Access histories of committed branches, in commit order. An observer
    /// artifact for the serializability checker (like a chaos trace), not
    /// engine state: crashes do not clear it.
    history: RefCell<Vec<BranchHistory>>,
    /// Fingerprints of the bulk-loaded (version 0) values, retained after
    /// later writes overwrite the live entry in `versions`: the checker needs
    /// them to validate reads that observed version 0.
    base_fingerprints: RefCell<FxHashMap<Key, u64>>,
    /// Checker-validation fail point: every `stride`-th read skips its shared
    /// lock (0 = disabled). See [`StorageEngine::fail_point_bypass_read_locks`].
    read_bypass_stride: Cell<u64>,
    read_counter: Cell<u64>,
    /// Per-key committed version chains (populated in the MVCC isolation
    /// modes; empty under pure 2PL).
    mvcc: VersionStore,
    /// Group-commit window state (leader election + follower parking).
    group: GroupCommitState,
}

impl StorageEngine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Rc<Self> {
        Rc::new(Self {
            records: RefCell::new(FxHashMap::default()),
            locks: LockManager::new(config.lock_wait_timeout),
            wal: WriteAheadLog::new(),
            txns: RefCell::new(FxHashMap::default()),
            config,
            stats: RefCell::new(EngineStats::default()),
            crashed: Cell::new(false),
            versions: RefCell::new(FxHashMap::default()),
            history: RefCell::new(Vec::new()),
            base_fingerprints: RefCell::new(FxHashMap::default()),
            read_bypass_stride: Cell::new(0),
            read_counter: Cell::new(0),
            mvcc: VersionStore::new(),
            group: GroupCommitState::default(),
        })
    }

    /// Create an engine with default configuration.
    pub fn with_defaults() -> Rc<Self> {
        Self::new(EngineConfig::default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> EngineStats {
        *self.stats.borrow()
    }

    /// Lock-manager statistics (waits, timeouts, cancellations).
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Direct access to the lock manager (used by the geo-agent for hotspot
    /// statistics such as the number of waiters on a record).
    pub fn lock_manager(&self) -> &Rc<LockManager> {
        &self.locks
    }

    /// Whether plain reads resolve against the version store instead of the
    /// lock manager + record store.
    fn mvcc_enabled(&self) -> bool {
        self.config.isolation != IsolationLevel::Serializable2pl
    }

    /// The engine's version store (tests and GC audits). Empty under the
    /// default [`IsolationLevel::Serializable2pl`].
    pub fn version_store(&self) -> &VersionStore {
        &self.mvcc
    }

    /// Bulk-load a record without locking or logging (initial population).
    pub fn load(&self, key: Key, row: Row) {
        if self.config.record_history || self.mvcc_enabled() {
            let fingerprint = row_fingerprint(&row);
            self.versions.borrow_mut().insert(
                key,
                VersionedValue {
                    version: 0,
                    fingerprint,
                },
            );
            self.base_fingerprints.borrow_mut().insert(key, fingerprint);
            if self.mvcc_enabled() {
                self.mvcc.load(key, row.clone(), fingerprint);
            }
        }
        self.records.borrow_mut().insert(key, row);
    }

    /// Read a record without any transaction (snapshot for verification only).
    pub fn peek(&self, key: Key) -> Option<Row> {
        self.records.borrow().get(&key).cloned()
    }

    /// Number of records stored.
    pub fn record_count(&self) -> usize {
        self.records.borrow().len()
    }

    /// Whether the engine is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed.get()
    }

    fn check_available(&self) -> Result<(), StorageError> {
        if self.crashed.get() {
            Err(StorageError::Unavailable)
        } else {
            Ok(())
        }
    }

    /// Current state of a branch, if it exists on this engine.
    pub fn state_of(&self, xid: Xid) -> Option<XaState> {
        self.txns.borrow().get(&xid).map(|t| t.state)
    }

    /// Start a transaction branch (`XA START` / `BEGIN`).
    pub fn begin(&self, xid: Xid) -> Result<(), StorageError> {
        self.check_available()?;
        let mut txns = self.txns.borrow_mut();
        if txns.contains_key(&xid) {
            return Err(StorageError::InvalidState {
                xid,
                reason: "branch already exists",
            });
        }
        txns.insert(xid, TxnEntry::new());
        self.wal.append(LogRecord::Begin(xid));
        Ok(())
    }

    fn ensure_active(&self, xid: Xid) -> Result<(), StorageError> {
        match self.state_of(xid) {
            None => Err(StorageError::UnknownTransaction(xid)),
            Some(XaState::Active) => Ok(()),
            Some(_) => Err(StorageError::InvalidState {
                xid,
                reason: "statement execution requires an ACTIVE branch",
            }),
        }
    }

    async fn lock(&self, xid: Xid, key: Key, mode: LockMode) -> Result<(), StorageError> {
        match self.locks.acquire(xid, key, mode).await {
            Ok(()) => {
                let mut txns = self.txns.borrow_mut();
                if let Some(entry) = txns.get_mut(&xid) {
                    if entry.first_lock_at.is_none() {
                        entry.first_lock_at = Some(now());
                    }
                }
                Ok(())
            }
            Err(reason) => Err(StorageError::LockFailed { key, reason }),
        }
    }

    /// Read a record. Under the default 2PL isolation this takes a shared
    /// lock and observes the record store; under the MVCC modes it is served
    /// lock-free from the version chain (see [`IsolationLevel`]).
    pub async fn read(&self, xid: Xid, key: Key) -> Result<Row, StorageError> {
        self.check_available()?;
        self.ensure_active(xid)?;
        if self.mvcc_enabled() {
            return self.read_versioned(xid, key).await;
        }
        if !self.bypass_read_lock() {
            self.lock(xid, key, LockMode::Shared).await?;
        }
        sleep(self.config.cost.statement_execute).await;
        // Re-check after the awaits: the branch may have been aborted (early
        // abort from a peer geo-agent) while this statement was in flight.
        self.ensure_active(xid)?;
        self.stats.borrow_mut().reads += 1;
        let row = self
            .records
            .borrow()
            .get(&key)
            .cloned()
            .ok_or(StorageError::KeyNotFound(key))?;
        self.record_read(xid, key, &row);
        Ok(row)
    }

    /// Read a record under an exclusive lock (`SELECT ... FOR UPDATE`).
    pub async fn read_for_update(&self, xid: Xid, key: Key) -> Result<Row, StorageError> {
        self.check_available()?;
        self.ensure_active(xid)?;
        self.lock(xid, key, LockMode::Exclusive).await?;
        sleep(self.config.cost.statement_execute).await;
        // Re-check after the awaits: the branch may have been aborted (early
        // abort from a peer geo-agent) while this statement was in flight.
        self.ensure_active(xid)?;
        self.stats.borrow_mut().reads += 1;
        let row = self
            .records
            .borrow()
            .get(&key)
            .cloned()
            .ok_or(StorageError::KeyNotFound(key))?;
        self.record_read(xid, key, &row);
        Ok(row)
    }

    /// Serve a plain read from the version store: no lock acquisition in any
    /// MVCC mode. `SnapshotRead` pins a snapshot timestamp at the branch's
    /// first plain read and resolves every later read as of that instant;
    /// `ReadCommitted` resolves each read at its own execution instant.
    async fn read_versioned(&self, xid: Xid, key: Key) -> Result<Row, StorageError> {
        sleep(self.config.cost.statement_execute).await;
        // Re-check after the await: the branch may have been aborted (early
        // abort from a peer geo-agent) while this statement was in flight.
        self.ensure_active(xid)?;
        self.stats.borrow_mut().reads += 1;
        // Read-your-writes: the branch's own uncommitted writes (it holds
        // their exclusive locks) are served from the record store. Such reads
        // create no inter-transaction dependency and are never recorded.
        let own_write = self
            .txns
            .borrow()
            .get(&xid)
            .is_some_and(|e| e.undo.iter().any(|(k, _)| *k == key));
        if own_write {
            return self
                .records
                .borrow()
                .get(&key)
                .cloned()
                .ok_or(StorageError::KeyNotFound(key));
        }
        let version = match self.config.isolation {
            IsolationLevel::SnapshotRead => {
                let ts = self.snapshot_ts_of(xid);
                self.mvcc.read_at(key, ts)
            }
            _ => self.mvcc.read_latest(key),
        };
        self.stats.borrow_mut().snapshot_reads += 1;
        let version = version.ok_or(StorageError::KeyNotFound(key))?;
        let row = version.row.clone().ok_or(StorageError::KeyNotFound(key))?;
        self.record_versioned_read(xid, key, &version);
        Ok(row)
    }

    /// The branch's pinned snapshot timestamp, pinning one (and registering
    /// it with the version store's GC horizon) on the first call.
    fn snapshot_ts_of(&self, xid: Xid) -> u64 {
        let mut txns = self.txns.borrow_mut();
        let Some(entry) = txns.get_mut(&xid) else {
            return now().as_micros();
        };
        match entry.snapshot_ts {
            Some(ts) => ts,
            None => {
                let ts = now().as_micros();
                entry.snapshot_ts = Some(ts);
                self.mvcc.open_snapshot(ts);
                ts
            }
        }
    }

    /// Checker-validation fail point: make every `stride`-th read on this
    /// engine skip its shared lock (0 disables). This *deliberately breaks
    /// isolation* — a reader can observe a concurrent writer's uncommitted
    /// data — and exists solely so the chaos harness can prove its
    /// serializability checker actually catches bugs (and so its schedule
    /// shrinker has a real failure to minimize). Never set outside tests and
    /// failure drills.
    #[doc(hidden)]
    pub fn fail_point_bypass_read_locks(&self, stride: u64) {
        self.read_bypass_stride.set(stride);
    }

    fn bypass_read_lock(&self) -> bool {
        let stride = self.read_bypass_stride.get();
        if stride == 0 {
            return false;
        }
        let n = self.read_counter.get() + 1;
        self.read_counter.set(n);
        n.is_multiple_of(stride)
    }

    /// Record one versioned read into the branch's access history. Reads of
    /// the branch's own uncommitted writes create no inter-transaction
    /// dependency and are skipped; exact duplicates are deduplicated (two
    /// observations that *differ* at the same version are both kept — that
    /// divergence is itself evidence for the checker).
    fn record_read(&self, xid: Xid, key: Key, row: &Row) {
        if !self.config.record_history {
            return;
        }
        let version = self
            .versions
            .borrow()
            .get(&key)
            .map(|v| v.version)
            .unwrap_or(0);
        let observed = VersionedValue {
            version,
            fingerprint: row_fingerprint(row),
        };
        let mut txns = self.txns.borrow_mut();
        let Some(entry) = txns.get_mut(&xid) else {
            return;
        };
        if entry.undo.iter().any(|(k, _)| *k == key) {
            return;
        }
        if entry
            .reads
            .iter()
            .any(|r| r.key == key && r.observed == observed)
        {
            return;
        }
        entry.reads.push(ReadAccess { key, observed });
    }

    /// Record a version-store read into the branch's access history. Unlike
    /// [`StorageEngine::record_read`], the observation is the *actual chain
    /// version served* — the checker validates against real version chains,
    /// not recorder shadows. Own-write reads never reach here (filtered in
    /// [`StorageEngine::read_versioned`]).
    fn record_versioned_read(&self, xid: Xid, key: Key, version: &ChainVersion) {
        if !self.config.record_history {
            return;
        }
        let observed = VersionedValue {
            version: version.version,
            fingerprint: version.fingerprint,
        };
        let mut txns = self.txns.borrow_mut();
        let Some(entry) = txns.get_mut(&xid) else {
            return;
        };
        if entry
            .reads
            .iter()
            .any(|r| r.key == key && r.observed == observed)
        {
            return;
        }
        entry.reads.push(ReadAccess { key, observed });
    }

    fn record_undo(&self, xid: Xid, key: Key, before: Option<Row>, after: Option<Row>) {
        self.wal.append(LogRecord::Update {
            xid,
            key,
            before: before.clone(),
            after,
        });
        if let Some(entry) = self.txns.borrow_mut().get_mut(&xid) {
            entry.undo.push((key, before));
        }
    }

    /// Insert or overwrite a record under an exclusive lock.
    pub async fn write(&self, xid: Xid, key: Key, row: Row) -> Result<(), StorageError> {
        self.check_available()?;
        self.ensure_active(xid)?;
        self.lock(xid, key, LockMode::Exclusive).await?;
        sleep(self.config.cost.statement_execute).await;
        self.ensure_active(xid)?;
        let before = self.records.borrow_mut().insert(key, row.clone());
        self.record_undo(xid, key, before, Some(row));
        self.stats.borrow_mut().writes += 1;
        Ok(())
    }

    /// Insert a record that must not already exist.
    pub async fn insert(&self, xid: Xid, key: Key, row: Row) -> Result<(), StorageError> {
        self.check_available()?;
        self.ensure_active(xid)?;
        self.lock(xid, key, LockMode::Exclusive).await?;
        sleep(self.config.cost.statement_execute).await;
        self.ensure_active(xid)?;
        {
            let records = self.records.borrow();
            if records.contains_key(&key) {
                return Err(StorageError::DuplicateKey(key));
            }
        }
        self.records.borrow_mut().insert(key, row.clone());
        self.record_undo(xid, key, None, Some(row));
        self.stats.borrow_mut().writes += 1;
        Ok(())
    }

    /// Delete a record under an exclusive lock.
    pub async fn delete(&self, xid: Xid, key: Key) -> Result<(), StorageError> {
        self.check_available()?;
        self.ensure_active(xid)?;
        self.lock(xid, key, LockMode::Exclusive).await?;
        sleep(self.config.cost.statement_execute).await;
        self.ensure_active(xid)?;
        let before = self.records.borrow_mut().remove(&key);
        if before.is_none() {
            return Err(StorageError::KeyNotFound(key));
        }
        self.record_undo(xid, key, before, None);
        self.stats.borrow_mut().writes += 1;
        Ok(())
    }

    /// Add `delta` to integer column `col` of the record (read-modify-write
    /// under an exclusive lock). Returns the new value.
    pub async fn add_int(
        &self,
        xid: Xid,
        key: Key,
        col: usize,
        delta: i64,
    ) -> Result<i64, StorageError> {
        self.check_available()?;
        self.ensure_active(xid)?;
        self.lock(xid, key, LockMode::Exclusive).await?;
        sleep(self.config.cost.statement_execute).await;
        self.ensure_active(xid)?;
        // Mutate the stored row in place: one hash lookup and two row clones
        // (undo image + WAL after-image) instead of the clone-per-step a
        // read-modify-insert cycle would cost.
        let (before, after, new_value) = {
            let mut records = self.records.borrow_mut();
            let row = records
                .get_mut(&key)
                .ok_or(StorageError::KeyNotFound(key))?;
            let before = row.clone();
            row.add_int(col, delta);
            let new_value = row
                .get(col)
                .and_then(crate::row::Value::as_int)
                .unwrap_or(0);
            (before, row.clone(), new_value)
        };
        self.record_undo(xid, key, Some(before), Some(after));
        self.stats.borrow_mut().writes += 1;
        Ok(new_value)
    }

    /// End the execution phase of a branch (`XA END`).
    pub fn end(&self, xid: Xid) -> Result<(), StorageError> {
        self.check_available()?;
        let mut txns = self.txns.borrow_mut();
        let entry = txns
            .get_mut(&xid)
            .ok_or(StorageError::UnknownTransaction(xid))?;
        match entry.state {
            XaState::Active => {
                entry.state = XaState::Ended;
                Ok(())
            }
            _ => Err(StorageError::InvalidState {
                xid,
                reason: "XA END requires an ACTIVE branch",
            }),
        }
    }

    /// Prepare a branch (`XA PREPARE` / `PREPARE TRANSACTION`): persist the
    /// yes-vote. Allowed from `Ended` (the normal XA path) or directly from
    /// `Active` (PostgreSQL's `PREPARE TRANSACTION` has no separate END).
    pub async fn prepare(&self, xid: Xid) -> Result<(), StorageError> {
        self.check_available()?;
        {
            let mut txns = self.txns.borrow_mut();
            let entry = txns
                .get_mut(&xid)
                .ok_or(StorageError::UnknownTransaction(xid))?;
            match entry.state {
                XaState::Active | XaState::Ended => entry.state = XaState::Prepared,
                _ => {
                    return Err(StorageError::InvalidState {
                        xid,
                        reason: "prepare requires an ACTIVE or ENDED branch",
                    })
                }
            }
        }
        self.wal.append(LogRecord::Prepare(xid));
        sleep(self.config.cost.prepare).await;
        self.flush_wal().await?;
        self.stats.borrow_mut().prepares += 1;
        Ok(())
    }

    /// Make the WAL durable up to this branch's records. With group commit
    /// disabled (the default) this is an immediate solo flush; otherwise the
    /// caller joins the group-commit window and only returns once its
    /// watermark is durable — or with an error if a crash intervened, in
    /// which case the commit must NOT be acknowledged (§V-A: a decision
    /// record lost from the volatile tail aborts on recovery).
    async fn flush_wal(&self) -> Result<(), StorageError> {
        if self.config.group_commit_window.is_zero() {
            self.wal.flush();
            return Ok(());
        }
        self.group_flush().await
    }

    /// Group commit: the first committer to arrive becomes the leader, sleeps
    /// out the commit window, and flushes once on behalf of everyone who
    /// arrived meanwhile (the followers park on the notify). Everyone checks
    /// their own durable watermark — acknowledgement strictly follows
    /// durability.
    async fn group_flush(&self) -> Result<(), StorageError> {
        let target = self.wal.len();
        let epoch0 = self.group.epoch.get();
        loop {
            if self.wal.durable_len() >= target {
                return Ok(());
            }
            if self.crashed.get() || self.group.epoch.get() != epoch0 {
                self.stats.borrow_mut().group_commit_aborted_waits += 1;
                return Err(StorageError::Unavailable);
            }
            if !self.group.leader.get() {
                self.group.leader.set(true);
                sleep(self.config.group_commit_window).await;
                if self.crashed.get() || self.group.epoch.get() != epoch0 {
                    // The crash reset the group state (and truncated the
                    // volatile tail this flush would have covered); the new
                    // epoch's leader flag is not ours to clear.
                    self.stats.borrow_mut().group_commit_aborted_waits += 1;
                    return Err(StorageError::Unavailable);
                }
                self.group.leader.set(false);
                let batch = self.group.pending.replace(0) + 1;
                self.wal.flush_group(batch);
                self.group.notify.notify_waiters();
                return Ok(());
            }
            self.group.pending.set(self.group.pending.get() + 1);
            self.group.notify.notified().await;
        }
    }

    fn finish(&self, xid: Xid, committed: bool) {
        let entry = self.txns.borrow_mut().remove(&xid);
        let Some(mut entry) = entry else { return };
        if let Some(ts) = entry.snapshot_ts {
            self.mvcc.close_snapshot(ts);
        }
        if committed && (self.config.record_history || self.mvcc_enabled()) {
            self.record_commit_history(xid, &mut entry);
        }
        let released = self.locks.release_all(xid);
        let mut stats = self.stats.borrow_mut();
        if let Some(first) = entry.first_lock_at {
            let span = now().duration_since(first);
            stats.total_contention_span_micros += span.as_micros() as u64;
            stats.contention_span_samples += 1;
        }
        let _ = released;
        if committed {
            stats.commits += 1;
        } else {
            stats.aborts += 1;
        }
    }

    /// Commit-time version install: every key the branch wrote installs the
    /// key's next committed version, fingerprinted from the (now committed)
    /// record store. In the MVCC modes the new version is also appended to
    /// the key's chain, every key stamped with the *same* commit instant so
    /// the whole commit is atomic in snapshot space; with history recording
    /// on, the branch's access history becomes part of
    /// [`StorageEngine::committed_history`]. Runs atomically with the lock
    /// release in [`StorageEngine::finish`] — under strict 2PL no other
    /// branch can touch these keys until the locks drop, so version order
    /// per key equals commit order.
    fn record_commit_history(&self, xid: Xid, entry: &mut TxnEntry) {
        let mut write_keys: Vec<Key> = Vec::with_capacity(entry.undo.len());
        for (key, _) in &entry.undo {
            if !write_keys.contains(key) {
                write_keys.push(*key);
            }
        }
        let mvcc_enabled = self.mvcc_enabled();
        let commit_ts = now().as_micros();
        let writes: Vec<WriteAccess> = {
            let records = self.records.borrow();
            let mut versions = self.versions.borrow_mut();
            write_keys
                .into_iter()
                .map(|key| {
                    let row = records.get(&key);
                    let fingerprint = row.map(row_fingerprint).unwrap_or(TOMBSTONE_FINGERPRINT);
                    let slot = versions.entry(key).or_insert(VersionedValue {
                        version: 0,
                        fingerprint: 0,
                    });
                    slot.version += 1;
                    slot.fingerprint = fingerprint;
                    let installed = *slot;
                    if mvcc_enabled {
                        self.mvcc.install(
                            key,
                            installed.version,
                            commit_ts,
                            row.cloned(),
                            fingerprint,
                        );
                    }
                    WriteAccess { key, installed }
                })
                .collect()
        };
        if self.config.record_history {
            self.history.borrow_mut().push(BranchHistory {
                xid,
                reads: std::mem::take(&mut entry.reads),
                writes,
            });
        }
    }

    /// The versioned access histories of every branch committed on this
    /// engine, in commit order. Empty unless
    /// [`EngineConfig::record_history`] is set.
    pub fn committed_history(&self) -> Vec<BranchHistory> {
        self.history.borrow().clone()
    }

    /// The committed version currently installed for `key` (None if the key
    /// was never loaded or written with history recording on).
    pub fn committed_version(&self, key: Key) -> Option<VersionedValue> {
        self.versions.borrow().get(&key).copied()
    }

    /// Fingerprints of the bulk-loaded (version 0) values, for validating
    /// reads that observed version 0. Empty unless
    /// [`EngineConfig::record_history`] is set.
    pub fn base_fingerprints(&self) -> FxHashMap<Key, u64> {
        self.base_fingerprints.borrow().clone()
    }

    /// Snapshot every record of `table`, sorted by key — for workload-level
    /// consistency checkers (e.g. TPC-C's warehouse/district conditions)
    /// that need to aggregate over final state.
    pub fn snapshot_table(&self, table: TableId) -> Vec<(Key, Row)> {
        let mut rows: Vec<(Key, Row)> = self
            .records
            .borrow()
            .iter()
            .filter(|(k, _)| k.table == table)
            .map(|(k, r)| (*k, r.clone()))
            .collect();
        rows.sort_by_key(|(k, _)| *k);
        rows
    }

    /// Commit a branch. One-phase commit (`one_phase = true`) is allowed from
    /// `Active`/`Ended` and is what centralized transactions and the
    /// SSP(local) baseline use; two-phase commit requires `Prepared`.
    pub async fn commit(&self, xid: Xid, one_phase: bool) -> Result<(), StorageError> {
        self.check_available()?;
        {
            let txns = self.txns.borrow();
            let entry = txns
                .get(&xid)
                .ok_or(StorageError::UnknownTransaction(xid))?;
            let ok = match entry.state {
                XaState::Prepared => true,
                XaState::Active | XaState::Ended => one_phase,
                _ => false,
            };
            if !ok {
                return Err(StorageError::InvalidState {
                    xid,
                    reason: "commit requires PREPARED (or ACTIVE/ENDED with one-phase)",
                });
            }
        }
        self.wal.append(LogRecord::Commit(xid));
        sleep(self.config.cost.decision_apply).await;
        self.flush_wal().await?;
        self.finish(xid, true);
        Ok(())
    }

    /// Commit a branch that performed no writes. Valid from `Active`/`Ended`;
    /// pays no WAL append, no flush and no decision-apply cost — a read-only
    /// branch needs no durable decision (there is nothing to redo or undo).
    /// Its recorded reads still enter the committed history, so the
    /// serializability checker sees the snapshot it observed.
    pub fn commit_read_only(&self, xid: Xid) -> Result<(), StorageError> {
        self.check_available()?;
        {
            let txns = self.txns.borrow();
            let entry = txns
                .get(&xid)
                .ok_or(StorageError::UnknownTransaction(xid))?;
            if !matches!(entry.state, XaState::Active | XaState::Ended) {
                return Err(StorageError::InvalidState {
                    xid,
                    reason: "read-only commit requires an ACTIVE or ENDED branch",
                });
            }
            if !entry.undo.is_empty() {
                return Err(StorageError::InvalidState {
                    xid,
                    reason: "read-only commit on a branch that wrote",
                });
            }
        }
        // The decision record keeps WAL compaction effective (the branch's
        // Begin would otherwise pin log space forever); it needs no flush.
        self.wal.append(LogRecord::Commit(xid));
        self.finish(xid, true);
        Ok(())
    }

    /// Roll back a branch from any non-final state, undoing its writes.
    pub async fn rollback(&self, xid: Xid) -> Result<(), StorageError> {
        self.check_available()?;
        {
            let txns = self.txns.borrow();
            let entry = txns
                .get(&xid)
                .ok_or(StorageError::UnknownTransaction(xid))?;
            if matches!(entry.state, XaState::Committed | XaState::Aborted) {
                return Err(StorageError::InvalidState {
                    xid,
                    reason: "branch already finished",
                });
            }
        }
        self.undo_writes(xid);
        self.wal.append(LogRecord::Abort(xid));
        sleep(self.config.cost.decision_apply).await;
        self.flush_wal().await?;
        self.finish(xid, false);
        geotp_telemetry::counter_add("storage.branch_rollbacks", "", xid.bqual, 1);
        Ok(())
    }

    fn undo_writes(&self, xid: Xid) {
        let undo: Vec<(Key, Option<Row>)> = self
            .txns
            .borrow_mut()
            .get_mut(&xid)
            .map(|e| e.undo.drain(..).collect())
            .unwrap_or_default();
        let mut records = self.records.borrow_mut();
        for (key, before) in undo.into_iter().rev() {
            match before {
                Some(row) => {
                    records.insert(key, row);
                }
                None => {
                    records.remove(&key);
                }
            }
        }
    }

    /// Branches still in a pre-prepare state (`ACTIVE`/`ENDED`): work that
    /// is neither decided nor recoverable via `XA RECOVER`. After a harness
    /// heals and drains, any such branch is abandoned — it holds locks and
    /// uncommitted writes forever — so liveness checkers flag them.
    pub fn unfinished_xids(&self) -> Vec<Xid> {
        let mut xids: Vec<Xid> = self
            .txns
            .borrow()
            .iter()
            .filter(|(_, e)| matches!(e.state, XaState::Active | XaState::Ended))
            .map(|(x, _)| *x)
            .collect();
        xids.sort();
        xids
    }

    /// Branches currently in the `Prepared` state (`XA RECOVER`).
    pub fn prepared_xids(&self) -> Vec<Xid> {
        let mut xids: Vec<Xid> = self
            .txns
            .borrow()
            .iter()
            .filter(|(_, e)| e.state == XaState::Prepared)
            .map(|(x, _)| *x)
            .collect();
        xids.sort();
        xids
    }

    /// Abort every branch that has not completed the prepare phase. This is
    /// what the paper's setting ❶ relies on: data sources abort unprepared
    /// subtransactions when the middleware disconnects.
    pub async fn abort_unprepared(&self) -> Vec<Xid> {
        let victims: Vec<Xid> = self
            .txns
            .borrow()
            .iter()
            .filter(|(_, e)| matches!(e.state, XaState::Active | XaState::Ended))
            .map(|(x, _)| *x)
            .collect();
        for xid in &victims {
            let _ = self.rollback(*xid).await;
        }
        victims
    }

    /// Simulate a crash: volatile WAL tail is lost and the engine stops
    /// serving requests until [`StorageEngine::restart`]. Sessions blocked in
    /// a lock wait are kicked out immediately (their connections died with
    /// the server), so no task is left parked on a queue nobody will ever
    /// promote again.
    pub fn crash(&self) {
        self.crashed.set(true);
        self.wal.truncate_to_durable();
        self.locks.cancel_all_waiters();
        // Reset the group-commit window: the epoch bump makes every parked
        // committer (leader mid-window or follower on the notify) fail
        // instead of acknowledging a commit whose record was just truncated
        // from the volatile tail.
        self.group.epoch.set(self.group.epoch.get() + 1);
        self.group.pending.set(0);
        self.group.leader.set(false);
        self.group.notify.notify_waiters();
    }

    /// Restart after a crash: branches whose prepare record is durable come
    /// back in the `Prepared` state (locks re-acquired implicitly by keeping
    /// their entries); every other branch is rolled back (setting ❷).
    pub async fn restart(&self) -> Vec<Xid> {
        self.crashed.set(false);
        let durable_prepared = self.wal.prepared_but_undecided();
        // Roll back branches that never reached a durable prepare.
        let victims: Vec<Xid> = self
            .txns
            .borrow()
            .iter()
            .filter(|(x, e)| {
                !durable_prepared.contains(x)
                    && !matches!(e.state, XaState::Committed | XaState::Aborted)
            })
            .map(|(x, _)| *x)
            .collect();
        for xid in &victims {
            let _ = self.rollback(*xid).await;
        }
        // Branches with a durable prepare survive in Prepared state.
        let mut txns = self.txns.borrow_mut();
        for xid in &durable_prepared {
            if let Some(entry) = txns.get_mut(xid) {
                entry.state = XaState::Prepared;
            }
        }
        durable_prepared
    }

    /// Reference to the write-ahead log (tests and recovery audits).
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TableId;
    use geotp_simrt::{spawn, Runtime};

    fn key(row: u64) -> Key {
        Key::new(TableId(0), row)
    }
    fn xid(n: u64) -> Xid {
        Xid::new(n, 0)
    }

    fn engine() -> Rc<StorageEngine> {
        let eng = StorageEngine::new(EngineConfig {
            lock_wait_timeout: Duration::from_secs(5),
            cost: CostModel::zero(),
            record_history: false,
            ..EngineConfig::default()
        });
        eng.load(key(1), Row::int(100));
        eng.load(key(2), Row::int(200));
        eng
    }

    #[test]
    fn read_write_commit_cycle() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = engine();
            eng.begin(xid(1)).unwrap();
            assert_eq!(
                eng.read(xid(1), key(1)).await.unwrap().int_value(),
                Some(100)
            );
            eng.add_int(xid(1), key(1), 0, -30).await.unwrap();
            eng.end(xid(1)).unwrap();
            eng.prepare(xid(1)).await.unwrap();
            eng.commit(xid(1), false).await.unwrap();
            assert_eq!(eng.peek(key(1)).unwrap().int_value(), Some(70));
            let s = eng.stats();
            assert_eq!((s.reads, s.writes, s.prepares, s.commits), (1, 1, 1, 1));
        });
    }

    #[test]
    fn rollback_undoes_all_writes_in_reverse_order() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = engine();
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 11).await.unwrap();
            eng.add_int(xid(1), key(1), 0, 22).await.unwrap();
            eng.write(xid(1), key(2), Row::int(999)).await.unwrap();
            eng.insert(xid(1), key(3), Row::int(5)).await.unwrap();
            eng.rollback(xid(1)).await.unwrap();
            assert_eq!(eng.peek(key(1)).unwrap().int_value(), Some(100));
            assert_eq!(eng.peek(key(2)).unwrap().int_value(), Some(200));
            assert!(eng.peek(key(3)).is_none());
            assert_eq!(eng.stats().aborts, 1);
        });
    }

    #[test]
    fn locks_block_concurrent_writer_until_commit() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = engine();
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 1).await.unwrap();

            let eng2 = Rc::clone(&eng);
            let other = spawn(async move {
                eng2.begin(xid(2)).unwrap();
                let started = now();
                eng2.add_int(xid(2), key(1), 0, 5).await.unwrap();
                eng2.commit(xid(2), true).await.unwrap();
                now().duration_since(started)
            });

            geotp_simrt::sleep(Duration::from_millis(80)).await;
            eng.end(xid(1)).unwrap();
            eng.prepare(xid(1)).await.unwrap();
            eng.commit(xid(1), false).await.unwrap();

            let blocked_for = other.await;
            assert!(blocked_for >= Duration::from_millis(80));
            assert_eq!(eng.peek(key(1)).unwrap().int_value(), Some(106));
        });
    }

    #[test]
    fn statement_after_prepare_is_rejected() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = engine();
            eng.begin(xid(1)).unwrap();
            eng.prepare(xid(1)).await.unwrap();
            let err = eng.read(xid(1), key(1)).await.unwrap_err();
            assert!(matches!(err, StorageError::InvalidState { .. }));
        });
    }

    #[test]
    fn two_phase_commit_requires_prepare() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = engine();
            eng.begin(xid(1)).unwrap();
            eng.end(xid(1)).unwrap();
            let err = eng.commit(xid(1), false).await.unwrap_err();
            assert!(matches!(err, StorageError::InvalidState { .. }));
            // One-phase commit from ENDED is fine (centralized transactions).
            eng.commit(xid(1), true).await.unwrap();
        });
    }

    #[test]
    fn duplicate_begin_and_unknown_xid_errors() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = engine();
            eng.begin(xid(1)).unwrap();
            assert!(matches!(
                eng.begin(xid(1)).unwrap_err(),
                StorageError::InvalidState { .. }
            ));
            assert!(matches!(
                eng.read(xid(9), key(1)).await.unwrap_err(),
                StorageError::UnknownTransaction(_)
            ));
            assert!(matches!(
                eng.commit(xid(9), true).await.unwrap_err(),
                StorageError::UnknownTransaction(_)
            ));
        });
    }

    #[test]
    fn insert_duplicate_and_delete_missing() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = engine();
            eng.begin(xid(1)).unwrap();
            assert!(matches!(
                eng.insert(xid(1), key(1), Row::int(1)).await.unwrap_err(),
                StorageError::DuplicateKey(_)
            ));
            assert!(matches!(
                eng.delete(xid(1), key(77)).await.unwrap_err(),
                StorageError::KeyNotFound(_)
            ));
            eng.delete(xid(1), key(2)).await.unwrap();
            eng.rollback(xid(1)).await.unwrap();
            assert!(
                eng.peek(key(2)).is_some(),
                "delete must be undone by rollback"
            );
        });
    }

    #[test]
    fn lock_timeout_surfaces_as_lock_failed() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = StorageEngine::new(EngineConfig {
                lock_wait_timeout: Duration::from_millis(50),
                cost: CostModel::zero(),
                record_history: false,
                ..EngineConfig::default()
            });
            eng.load(key(1), Row::int(0));
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 1).await.unwrap();
            eng.begin(xid(2)).unwrap();
            let err = eng.add_int(xid(2), key(1), 0, 1).await.unwrap_err();
            assert!(matches!(
                err,
                StorageError::LockFailed {
                    reason: crate::lock::LockError::Timeout,
                    ..
                }
            ));
        });
    }

    #[test]
    fn prepared_xids_and_abort_unprepared() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = engine();
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 1).await.unwrap();
            eng.prepare(xid(1)).await.unwrap();

            eng.begin(xid(2)).unwrap();
            eng.add_int(xid(2), key(2), 0, 1).await.unwrap();

            assert_eq!(eng.prepared_xids(), vec![xid(1)]);
            let aborted = eng.abort_unprepared().await;
            assert_eq!(aborted, vec![xid(2)]);
            assert_eq!(eng.peek(key(2)).unwrap().int_value(), Some(200));
            // The prepared branch is untouched.
            assert_eq!(eng.prepared_xids(), vec![xid(1)]);
        });
    }

    #[test]
    fn crash_loses_unprepared_work_and_keeps_prepared() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = engine();
            // Branch 1: prepared (durable vote).
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 50).await.unwrap();
            eng.prepare(xid(1)).await.unwrap();
            // Branch 2: still active.
            eng.begin(xid(2)).unwrap();
            eng.add_int(xid(2), key(2), 0, 50).await.unwrap();

            eng.crash();
            assert!(eng.is_crashed());
            assert!(matches!(
                eng.begin(xid(3)).unwrap_err(),
                StorageError::Unavailable
            ));

            let recovered = eng.restart().await;
            assert_eq!(recovered, vec![xid(1)]);
            assert_eq!(eng.state_of(xid(1)), Some(XaState::Prepared));
            // Branch 2 was rolled back, its write undone.
            assert_eq!(eng.peek(key(2)).unwrap().int_value(), Some(200));
            // The prepared branch can still be committed after recovery.
            eng.commit(xid(1), false).await.unwrap();
            assert_eq!(eng.peek(key(1)).unwrap().int_value(), Some(150));
        });
    }

    #[test]
    fn crash_kicks_out_blocked_lock_waiters() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = StorageEngine::new(EngineConfig {
                lock_wait_timeout: Duration::from_secs(60),
                cost: CostModel::zero(),
                record_history: false,
                ..EngineConfig::default()
            });
            eng.load(key(1), Row::int(0));
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 1).await.unwrap();

            let eng2 = Rc::clone(&eng);
            let blocked = spawn(async move {
                eng2.begin(xid(2)).unwrap();
                eng2.add_int(xid(2), key(1), 0, 1).await
            });
            geotp_simrt::sleep(Duration::from_millis(5)).await;
            eng.crash();
            // The waiter fails immediately with a cancellation — it must not
            // sit parked until the 60s lock timeout (its connection is dead).
            let err = blocked.await.unwrap_err();
            assert!(matches!(
                err,
                StorageError::LockFailed {
                    reason: crate::lock::LockError::Cancelled,
                    ..
                }
            ));
            assert_eq!(now().as_micros(), 5_000, "failure was immediate");
        });
    }

    #[test]
    fn contention_span_matches_hold_duration() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = engine();
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 1).await.unwrap();
            geotp_simrt::sleep(Duration::from_millis(120)).await;
            eng.commit(xid(1), true).await.unwrap();
            let s = eng.stats();
            assert_eq!(s.contention_span_samples, 1);
            assert_eq!(s.total_contention_span_micros, 120_000);
        });
    }

    fn history_engine() -> Rc<StorageEngine> {
        let eng = StorageEngine::new(EngineConfig {
            lock_wait_timeout: Duration::from_secs(5),
            cost: CostModel::zero(),
            record_history: true,
            ..EngineConfig::default()
        });
        eng.load(key(1), Row::int(100));
        eng.load(key(2), Row::int(200));
        eng
    }

    #[test]
    fn history_records_versions_in_commit_order() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = history_engine();
            // T1 reads key1@v0 and writes key2 (installs v1).
            eng.begin(xid(1)).unwrap();
            eng.read(xid(1), key(1)).await.unwrap();
            eng.add_int(xid(1), key(2), 0, 5).await.unwrap();
            eng.commit(xid(1), true).await.unwrap();
            // T2 reads key2@v1 and writes it again (installs v2).
            eng.begin(xid(2)).unwrap();
            eng.read(xid(2), key(2)).await.unwrap();
            eng.add_int(xid(2), key(2), 0, 1).await.unwrap();
            eng.commit(xid(2), true).await.unwrap();

            let history = eng.committed_history();
            assert_eq!(history.len(), 2);
            let t1 = &history[0];
            assert_eq!(t1.xid, xid(1));
            assert_eq!(t1.reads.len(), 1);
            assert_eq!(t1.reads[0].key, key(1));
            assert_eq!(t1.reads[0].observed.version, 0);
            assert_eq!(t1.writes.len(), 1);
            assert_eq!(t1.writes[0].installed.version, 1);
            let t2 = &history[1];
            // T2's read observed T1's installed version, fingerprint and all.
            assert_eq!(t2.reads[0].observed, t1.writes[0].installed);
            assert_eq!(t2.writes[0].installed.version, 2);
            assert_eq!(
                eng.committed_version(key(2)).unwrap(),
                t2.writes[0].installed
            );
        });
    }

    #[test]
    fn history_skips_own_writes_and_aborted_branches() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = history_engine();
            // Write-then-read of the same key: the read observes the branch's
            // own uncommitted data and must not be recorded.
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 9).await.unwrap();
            eng.read(xid(1), key(1)).await.unwrap();
            eng.commit(xid(1), true).await.unwrap();
            // An aborted branch leaves no history at all.
            eng.begin(xid(2)).unwrap();
            eng.read(xid(2), key(2)).await.unwrap();
            eng.add_int(xid(2), key(2), 0, 1).await.unwrap();
            eng.rollback(xid(2)).await.unwrap();

            let history = eng.committed_history();
            assert_eq!(history.len(), 1);
            assert!(history[0].reads.is_empty(), "own-write read was recorded");
            assert_eq!(history[0].writes.len(), 1);
            // The rollback did not bump key2's version.
            assert_eq!(eng.committed_version(key(2)).unwrap().version, 0);
        });
    }

    #[test]
    fn history_delete_installs_tombstone_fingerprint() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = history_engine();
            eng.begin(xid(1)).unwrap();
            eng.delete(xid(1), key(1)).await.unwrap();
            eng.commit(xid(1), true).await.unwrap();
            let v = eng.committed_version(key(1)).unwrap();
            assert_eq!(v.version, 1);
            assert_eq!(v.fingerprint, crate::history::TOMBSTONE_FINGERPRINT);
        });
    }

    #[test]
    fn read_lock_bypass_fail_point_permits_dirty_reads() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = history_engine();
            eng.fail_point_bypass_read_locks(1); // every read skips its lock
                                                 // Writer holds the exclusive lock with uncommitted data...
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 77).await.unwrap();
            // ...and a lock-bypassing reader sees it anyway (dirty read).
            eng.begin(xid(2)).unwrap();
            let dirty = eng.read(xid(2), key(1)).await.unwrap();
            assert_eq!(dirty.int_value(), Some(177));
            eng.commit(xid(2), true).await.unwrap();
            eng.rollback(xid(1)).await.unwrap();
            // The reader's recorded fingerprint does not match any committed
            // version of the key — exactly what the checker detects.
            let history = eng.committed_history();
            let observed = history[0].reads[0].observed;
            assert_eq!(observed.version, 0, "claimed the committed version");
            assert_ne!(
                observed.fingerprint,
                eng.committed_version(key(1)).unwrap().fingerprint,
                "but saw uncommitted data"
            );
        });
    }

    #[test]
    fn snapshot_table_is_sorted_and_filtered() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = history_engine();
            eng.load(Key::new(TableId(7), 3), Row::int(1));
            eng.load(Key::new(TableId(7), 1), Row::int(2));
            let snap = eng.snapshot_table(TableId(7));
            assert_eq!(snap.len(), 2);
            assert_eq!(snap[0].0.row, 1);
            assert_eq!(snap[1].0.row, 3);
            assert_eq!(eng.snapshot_table(TableId(0)).len(), 2);
        });
    }

    fn mvcc_engine(isolation: IsolationLevel) -> Rc<StorageEngine> {
        let eng = StorageEngine::new(EngineConfig {
            lock_wait_timeout: Duration::from_secs(5),
            cost: CostModel::zero(),
            record_history: true,
            isolation,
            ..EngineConfig::default()
        });
        eng.load(key(1), Row::int(100));
        eng.load(key(2), Row::int(200));
        eng
    }

    #[test]
    fn snapshot_reads_do_not_block_on_writers() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = mvcc_engine(IsolationLevel::SnapshotRead);
            // Writer holds the exclusive lock with uncommitted data...
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 77).await.unwrap();
            // ...and a snapshot reader neither blocks nor sees it.
            eng.begin(xid(2)).unwrap();
            let started = now();
            let row = eng.read(xid(2), key(1)).await.unwrap();
            assert_eq!(now(), started, "the read must not wait on any lock");
            assert_eq!(row.int_value(), Some(100));
            assert_eq!(eng.stats().snapshot_reads, 1);
            eng.commit_read_only(xid(2)).unwrap();
            eng.commit(xid(1), true).await.unwrap();
        });
    }

    #[test]
    fn snapshot_read_pins_a_repeatable_snapshot() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = mvcc_engine(IsolationLevel::SnapshotRead);
            eng.begin(xid(2)).unwrap();
            assert_eq!(
                eng.read(xid(2), key(1)).await.unwrap().int_value(),
                Some(100)
            );
            // A concurrent writer commits a new version...
            geotp_simrt::sleep(Duration::from_millis(1)).await;
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 50).await.unwrap();
            eng.commit(xid(1), true).await.unwrap();
            assert_eq!(eng.peek(key(1)).unwrap().int_value(), Some(150));
            // ...which the pinned snapshot must not observe.
            assert_eq!(
                eng.read(xid(2), key(1)).await.unwrap().int_value(),
                Some(100)
            );
            eng.commit_read_only(xid(2)).unwrap();
            // A fresh branch snapshots after the commit and sees it.
            eng.begin(xid(3)).unwrap();
            assert_eq!(
                eng.read(xid(3), key(1)).await.unwrap().int_value(),
                Some(150)
            );
            eng.commit_read_only(xid(3)).unwrap();
        });
    }

    #[test]
    fn read_committed_observes_each_new_commit() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = mvcc_engine(IsolationLevel::ReadCommitted);
            eng.begin(xid(2)).unwrap();
            assert_eq!(
                eng.read(xid(2), key(1)).await.unwrap().int_value(),
                Some(100)
            );
            geotp_simrt::sleep(Duration::from_millis(1)).await;
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 50).await.unwrap();
            eng.commit(xid(1), true).await.unwrap();
            // Non-repeatable read: the same branch sees the new version.
            assert_eq!(
                eng.read(xid(2), key(1)).await.unwrap().int_value(),
                Some(150)
            );
            eng.commit_read_only(xid(2)).unwrap();
        });
    }

    #[test]
    fn mvcc_reads_observe_own_uncommitted_writes() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = mvcc_engine(IsolationLevel::SnapshotRead);
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 5).await.unwrap();
            // Read-your-writes inside the branch, lock-free for other keys.
            assert_eq!(
                eng.read(xid(1), key(1)).await.unwrap().int_value(),
                Some(105)
            );
            eng.commit(xid(1), true).await.unwrap();
            // The own-write read is not part of the committed history.
            let history = eng.committed_history();
            assert_eq!(history.len(), 1);
            assert!(history[0].reads.is_empty());
        });
    }

    #[test]
    fn versioned_reads_record_the_real_chain_version() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = mvcc_engine(IsolationLevel::SnapshotRead);
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 1).await.unwrap();
            eng.commit(xid(1), true).await.unwrap();
            geotp_simrt::sleep(Duration::from_millis(1)).await;
            eng.begin(xid(2)).unwrap();
            eng.read(xid(2), key(1)).await.unwrap();
            eng.add_int(xid(2), key(2), 0, 1).await.unwrap();
            eng.commit(xid(2), true).await.unwrap();
            let history = eng.committed_history();
            // T2's read observed T1's installed chain version (v1), with the
            // fingerprint taken from the chain itself.
            assert_eq!(history[1].reads[0].observed, history[0].writes[0].installed);
            let chain_tip = eng.version_store().read_latest(key(1)).unwrap();
            assert_eq!(chain_tip.version, history[0].writes[0].installed.version);
            assert_eq!(
                chain_tip.fingerprint,
                history[0].writes[0].installed.fingerprint
            );
        });
    }

    #[test]
    fn snapshot_gc_reclaims_versions_behind_the_horizon() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = mvcc_engine(IsolationLevel::SnapshotRead);
            for n in 0..10 {
                geotp_simrt::sleep(Duration::from_millis(1)).await;
                eng.begin(xid(10 + n)).unwrap();
                eng.add_int(xid(10 + n), key(1), 0, 1).await.unwrap();
                eng.commit(xid(10 + n), true).await.unwrap();
            }
            // No snapshot is open: an explicit GC collapses the chain.
            eng.version_store().gc();
            assert_eq!(eng.version_store().chain_len(key(1)), 1);
            assert!(eng.version_store().stats().versions_gced >= 9);
        });
    }

    fn group_commit_engine(window: Duration) -> Rc<StorageEngine> {
        let eng = StorageEngine::new(EngineConfig {
            lock_wait_timeout: Duration::from_secs(5),
            cost: CostModel::zero(),
            record_history: false,
            group_commit_window: window,
            ..EngineConfig::default()
        });
        for n in 1..=8 {
            eng.load(key(n), Row::int(0));
        }
        eng
    }

    #[test]
    fn group_commit_amortizes_one_flush_across_committers() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = group_commit_engine(Duration::from_millis(1));
            let mut handles = Vec::new();
            for n in 1..=8 {
                let eng = Rc::clone(&eng);
                handles.push(spawn(async move {
                    eng.begin(xid(n)).unwrap();
                    eng.add_int(xid(n), key(n), 0, 1).await.unwrap();
                    eng.commit(xid(n), true).await.unwrap();
                }));
            }
            for h in handles {
                h.await;
            }
            assert_eq!(eng.stats().commits, 8);
            assert_eq!(
                eng.wal().flush_count(),
                1,
                "eight concurrent commits share one group flush"
            );
            // Acknowledgement strictly followed durability.
            assert_eq!(eng.wal().durable_len(), eng.wal().len());
        });
    }

    #[test]
    fn crash_inside_the_commit_window_aborts_unacknowledged_commits() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = group_commit_engine(Duration::from_millis(10));
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 1).await.unwrap();
            let eng2 = Rc::clone(&eng);
            let committer = spawn(async move { eng2.commit(xid(1), true).await });
            // The Commit record sits in the volatile tail, parked on the
            // commit window, when the crash hits.
            geotp_simrt::sleep(Duration::from_millis(2)).await;
            eng.crash();
            let err = committer.await.unwrap_err();
            assert!(matches!(err, StorageError::Unavailable));
            assert!(eng.stats().group_commit_aborted_waits >= 1);
            // §V-A: the unacknowledged commit rolls back on recovery.
            eng.restart().await;
            assert_eq!(eng.peek(key(1)).unwrap().int_value(), Some(0));
            assert_eq!(eng.stats().commits, 0);
        });
    }

    #[test]
    fn commit_read_only_needs_no_flush_but_keeps_history() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = mvcc_engine(IsolationLevel::SnapshotRead);
            eng.begin(xid(1)).unwrap();
            eng.read(xid(1), key(1)).await.unwrap();
            eng.commit_read_only(xid(1)).unwrap();
            assert_eq!(eng.wal().flush_count(), 0, "nothing to make durable");
            assert_eq!(eng.stats().commits, 1);
            // The reads still enter the committed history for the checker.
            let history = eng.committed_history();
            assert_eq!(history.len(), 1);
            assert_eq!(history[0].reads.len(), 1);
            assert!(history[0].writes.is_empty());
            // A branch that wrote must be refused.
            eng.begin(xid(2)).unwrap();
            eng.add_int(xid(2), key(2), 0, 1).await.unwrap();
            assert!(matches!(
                eng.commit_read_only(xid(2)).unwrap_err(),
                StorageError::InvalidState { .. }
            ));
            eng.rollback(xid(2)).await.unwrap();
        });
    }

    #[test]
    fn costs_are_charged_in_virtual_time() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let eng = StorageEngine::new(EngineConfig {
                lock_wait_timeout: Duration::from_secs(5),
                cost: CostModel {
                    statement_execute: Duration::from_millis(1),
                    prepare: Duration::from_millis(2),
                    decision_apply: Duration::from_millis(3),
                },
                record_history: false,
                ..EngineConfig::default()
            });
            eng.load(key(1), Row::int(0));
            let start = now();
            eng.begin(xid(1)).unwrap();
            eng.add_int(xid(1), key(1), 0, 1).await.unwrap();
            eng.end(xid(1)).unwrap();
            eng.prepare(xid(1)).await.unwrap();
            eng.commit(xid(1), false).await.unwrap();
            assert_eq!(now().duration_since(start), Duration::from_millis(6));
        });
    }
}
