//! Core identifiers and error types shared across the storage engine.

use std::fmt;

/// Identifier of a table within one data source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u16);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Primary key of a record: a table plus a 64-bit row key.
///
/// Composite keys (e.g. TPC-C `(w_id, d_id, c_id)`) are packed into the row
/// key by the workload layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    /// Table the record belongs to.
    pub table: TableId,
    /// Row key within the table.
    pub row: u64,
}

impl Key {
    /// Construct a key.
    pub const fn new(table: TableId, row: u64) -> Self {
        Self { table, row }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.table, self.row)
    }
}

/// Global XA transaction identifier: the coordinator-assigned global id plus
/// the branch qualifier identifying the participant (data source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xid {
    /// Global transaction id assigned by the middleware.
    pub gtrid: u64,
    /// Branch qualifier: the data source index this branch executes on.
    pub bqual: u32,
}

impl Xid {
    /// Bit position of the coordinator index inside a gtrid: the middleware
    /// embeds its node index in the upper 16 bits, giving every coordinator
    /// a disjoint gtrid space. The single source of truth for the layout —
    /// gtrid allocation and owner extraction both use it.
    pub const OWNER_SHIFT: u32 = 48;

    /// Construct an XA branch identifier.
    pub const fn new(gtrid: u64, bqual: u32) -> Self {
        Self { gtrid, bqual }
    }

    /// Index of the coordinator that allocated this branch's gtrid, so
    /// recovery can be scoped to one coordinator's transactions.
    pub const fn owner(&self) -> u32 {
        (self.gtrid >> Self::OWNER_SHIFT) as u32
    }
}

impl fmt::Display for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xid({},{})", self.gtrid, self.bqual)
    }
}

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The referenced transaction branch does not exist on this engine.
    UnknownTransaction(Xid),
    /// The transaction branch is in the wrong state for the requested action
    /// (e.g. executing a statement after `prepare`).
    InvalidState {
        /// The branch involved.
        xid: Xid,
        /// Human-readable description of the violated transition.
        reason: &'static str,
    },
    /// The record does not exist.
    KeyNotFound(Key),
    /// A record with this key already exists (duplicate insert).
    DuplicateKey(Key),
    /// Lock acquisition failed (timeout / cancelled); the branch must abort.
    LockFailed {
        /// The record that could not be locked.
        key: Key,
        /// Why the lock could not be granted.
        reason: crate::lock::LockError,
    },
    /// The engine is crashed / offline and cannot serve requests.
    Unavailable,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTransaction(xid) => write!(f, "unknown transaction {xid}"),
            StorageError::InvalidState { xid, reason } => {
                write!(f, "invalid state for {xid}: {reason}")
            }
            StorageError::KeyNotFound(key) => write!(f, "key not found: {key}"),
            StorageError::DuplicateKey(key) => write!(f, "duplicate key: {key}"),
            StorageError::LockFailed { key, reason } => {
                write!(f, "failed to lock {key}: {reason}")
            }
            StorageError::Unavailable => write!(f, "data source is unavailable"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_display_and_ordering() {
        let a = Key::new(TableId(1), 5);
        let b = Key::new(TableId(1), 9);
        let c = Key::new(TableId(2), 0);
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "t1#5");
    }

    #[test]
    fn xid_identity() {
        let x = Xid::new(42, 3);
        assert_eq!(x, Xid::new(42, 3));
        assert_ne!(x, Xid::new(42, 4));
        assert_eq!(x.to_string(), "xid(42,3)");
    }

    #[test]
    fn error_messages_render() {
        let err = StorageError::KeyNotFound(Key::new(TableId(0), 1));
        assert!(err.to_string().contains("key not found"));
    }
}
