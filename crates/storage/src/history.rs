//! Versioned access histories for serializability checking.
//!
//! When [`crate::EngineConfig::record_history`] is on, the engine maintains a
//! per-key *committed version counter* and, for every transaction branch, the
//! list of reads (key, observed version, observed value fingerprint) and
//! writes (key, installed version, installed value fingerprint) it performed.
//! Strict 2PL makes the construction sound: an exclusive writer holds its
//! lock until its commit bumps the key's version, so the committed version a
//! reader observes is exactly the version of the data it read — unless
//! isolation is broken, which is precisely what a checker built on these
//! histories detects.
//!
//! Version order per key is total and known (committed writers bump the
//! counter by one each), so a checker can derive the full Adya dependency
//! graph: `WW` (installer of version *v* precedes the installer of *v+1*),
//! `WR` (installer of *v* precedes every reader of *v*) and `RW`
//! anti-dependencies (a reader of *v* precedes the installer of *v+1*).
//! Fingerprints additionally pin each read to the committed *value* of the
//! version it claims, which catches dirty reads that version counters alone
//! cannot see. The checker itself lives in `geotp-chaos`
//! (`invariants::serializability`); this module is only the recording side.

use crate::row::{Row, Value};
use crate::types::{Key, Xid};

/// Fingerprint recorded for a deleted record (the committed "value" a delete
/// installs).
pub const TOMBSTONE_FINGERPRINT: u64 = 0x7061_7065_725f_6b76;

/// A committed version of a key together with the fingerprint of the value
/// that version holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionedValue {
    /// Committed version number. Version 0 is the bulk-loaded initial value;
    /// each committing writer installs the next version.
    pub version: u64,
    /// FNV-1a fingerprint of the row at this version
    /// ([`row_fingerprint`]; [`TOMBSTONE_FINGERPRINT`] for deletes).
    pub fingerprint: u64,
}

/// One read performed by a branch: the version (and value fingerprint) it
/// observed. Reads of the branch's own uncommitted writes are *not* recorded
/// — they create no inter-transaction dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadAccess {
    /// The record read.
    pub key: Key,
    /// The committed version and value fingerprint observed.
    pub observed: VersionedValue,
}

/// One write installed by a committed branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAccess {
    /// The record written.
    pub key: Key,
    /// The version this commit installed and the fingerprint of the
    /// committed value.
    pub installed: VersionedValue,
}

/// The recorded access history of one *committed* branch. Aborted branches
/// leave no history: their writes are undone and their reads constrain
/// nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchHistory {
    /// The branch identity (gtrid + branch qualifier).
    pub xid: Xid,
    /// Reads, in execution order, deduplicated per (key, version).
    pub reads: Vec<ReadAccess>,
    /// Writes, one per distinct key, in first-write order.
    pub writes: Vec<WriteAccess>,
}

/// Stable FNV-1a fingerprint of a row's full column contents. Identical rows
/// fingerprint identically across runs and processes (no pointer or hash-seed
/// dependence), which is what lets chaos traces embed them.
pub fn row_fingerprint(row: &Row) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for value in row.iter() {
        match value {
            Value::Int(v) => {
                eat(b"i");
                eat(&v.to_le_bytes());
            }
            Value::Float(v) => {
                eat(b"f");
                eat(&v.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                eat(b"s");
                eat(&(s.len() as u64).to_le_bytes());
                eat(s.as_bytes());
            }
            Value::Null => eat(b"n"),
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_values_and_shapes() {
        assert_eq!(row_fingerprint(&Row::int(5)), row_fingerprint(&Row::int(5)));
        assert_ne!(row_fingerprint(&Row::int(5)), row_fingerprint(&Row::int(6)));
        assert_ne!(
            row_fingerprint(&Row::from_values(vec![Value::Int(1), Value::Int(2)])),
            row_fingerprint(&Row::from_values(vec![Value::Int(2), Value::Int(1)])),
        );
        // A string "i" must not collide with the Int tag prefix.
        assert_ne!(
            row_fingerprint(&Row::from_values(vec![Value::Str("i".into())])),
            row_fingerprint(&Row::from_values(vec![Value::Int(0x69)])),
        );
        assert_ne!(row_fingerprint(&Row::new()), TOMBSTONE_FINGERPRINT);
    }
}
