//! Write-ahead log for one data source.
//!
//! The log is the durability anchor of the XA participant: a branch is
//! *prepared* only after its `Prepare` record (and everything before it) has
//! been flushed. The log survives simulated crashes and is the input to
//! [`crate::engine::StorageEngine::recover`].

use std::cell::RefCell;

use crate::row::Row;
use crate::types::{Key, Xid};

/// One log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A transaction branch started.
    Begin(Xid),
    /// A record was updated: before/after images for undo/redo.
    Update {
        /// The branch performing the update.
        xid: Xid,
        /// The record updated.
        key: Key,
        /// Value before the update (`None` if the record was inserted).
        before: Option<Row>,
        /// Value after the update (`None` if the record was deleted).
        after: Option<Row>,
    },
    /// The branch finished execution and was prepared (vote: yes).
    Prepare(Xid),
    /// The branch was committed.
    Commit(Xid),
    /// The branch was rolled back.
    Abort(Xid),
}

impl LogRecord {
    /// The transaction branch this record belongs to.
    pub fn xid(&self) -> Xid {
        match self {
            LogRecord::Begin(x)
            | LogRecord::Prepare(x)
            | LogRecord::Commit(x)
            | LogRecord::Abort(x) => *x,
            LogRecord::Update { xid, .. } => *xid,
        }
    }
}

/// Compact the log once it reaches this many records (checkpointing below).
const COMPACT_THRESHOLD: usize = 8 * 1024;

/// An append-only write-ahead log with an explicit flush watermark.
///
/// Appends go to a volatile tail; [`WriteAheadLog::flush`] moves the durable
/// watermark to the end. A simulated crash discards the volatile tail.
///
/// Like a real WAL, the log is checkpointed: once every record is durable and
/// a transaction has a durable `Commit`/`Abort` decision, its records can
/// never influence recovery again and are dropped (amortized, triggered when
/// the log grows past an internal threshold). This keeps the log — and the
/// cost of appending to it — proportional to the set of *undecided*
/// transactions instead of the whole history of the run.
#[derive(Debug, Default)]
pub struct WriteAheadLog {
    records: RefCell<Vec<LogRecord>>,
    durable_len: RefCell<usize>,
    flush_count: RefCell<u64>,
}

impl WriteAheadLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record to the volatile tail.
    pub fn append(&self, record: LogRecord) {
        self.records.borrow_mut().push(record);
    }

    /// Make every appended record durable (a solo flush: one committer, one
    /// fsync).
    pub fn flush(&self) {
        self.do_flush();
        geotp_telemetry::counter_add("storage.wal_flushes", "solo", 0, 1);
    }

    /// Make every appended record durable on behalf of `batch` concurrently
    /// committing branches (group commit: one fsync amortized across the
    /// whole commit window).
    pub fn flush_group(&self, batch: u64) {
        self.do_flush();
        geotp_telemetry::counter_add("storage.wal_flushes", "group", 0, 1);
        geotp_telemetry::observe(
            "storage.group_commit_batch",
            "",
            0,
            std::time::Duration::from_micros(batch),
        );
    }

    fn do_flush(&self) {
        let mut records = self.records.borrow_mut();
        if records.len() >= COMPACT_THRESHOLD {
            // Checkpoint: everything is durable after this flush, so records
            // of durably-decided transactions (including the decision record
            // itself) are dead for recovery purposes.
            let decided: geotp_simrt::hash::FxHashSet<Xid> = records
                .iter()
                .filter_map(|r| match r {
                    LogRecord::Commit(x) | LogRecord::Abort(x) => Some(*x),
                    _ => None,
                })
                .collect();
            if !decided.is_empty() {
                records.retain(|r| !decided.contains(&r.xid()));
            }
        }
        *self.durable_len.borrow_mut() = records.len();
        *self.flush_count.borrow_mut() += 1;
    }

    /// Number of flush (fsync) operations performed.
    pub fn flush_count(&self) -> u64 {
        *self.flush_count.borrow()
    }

    /// Number of records below the durable watermark (what a crash keeps).
    pub fn durable_len(&self) -> usize {
        *self.durable_len.borrow()
    }

    /// Total records appended (durable + volatile).
    pub fn len(&self) -> usize {
        self.records.borrow().len()
    }

    /// Whether the log holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the durable prefix (what survives a crash).
    pub fn durable_records(&self) -> Vec<LogRecord> {
        let durable = *self.durable_len.borrow();
        self.records.borrow()[..durable].to_vec()
    }

    /// Snapshot of every record including the volatile tail.
    pub fn all_records(&self) -> Vec<LogRecord> {
        self.records.borrow().clone()
    }

    /// Simulate a crash: the volatile tail is lost.
    pub fn truncate_to_durable(&self) {
        let durable = *self.durable_len.borrow();
        self.records.borrow_mut().truncate(durable);
    }

    /// Transactions whose `Prepare` record is durable but which have neither a
    /// durable `Commit` nor `Abort` record — exactly the set `XA RECOVER`
    /// reports after a restart.
    pub fn prepared_but_undecided(&self) -> Vec<Xid> {
        let durable = self.durable_records();
        let mut prepared = Vec::new();
        for rec in &durable {
            match rec {
                LogRecord::Prepare(x) if !prepared.contains(x) => {
                    prepared.push(*x);
                }
                LogRecord::Commit(x) | LogRecord::Abort(x) => {
                    prepared.retain(|p| p != x);
                }
                _ => {}
            }
        }
        prepared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TableId;

    fn xid(n: u64) -> Xid {
        Xid::new(n, 0)
    }

    #[test]
    fn append_and_flush_watermark() {
        let wal = WriteAheadLog::new();
        wal.append(LogRecord::Begin(xid(1)));
        assert_eq!(wal.durable_records().len(), 0);
        wal.flush();
        assert_eq!(wal.durable_records().len(), 1);
        wal.append(LogRecord::Prepare(xid(1)));
        assert_eq!(wal.durable_records().len(), 1);
        assert_eq!(wal.all_records().len(), 2);
        assert_eq!(wal.flush_count(), 1);
    }

    #[test]
    fn crash_discards_volatile_tail() {
        let wal = WriteAheadLog::new();
        wal.append(LogRecord::Begin(xid(1)));
        wal.flush();
        wal.append(LogRecord::Prepare(xid(1)));
        wal.truncate_to_durable();
        assert_eq!(wal.len(), 1);
        assert!(wal.prepared_but_undecided().is_empty());
    }

    #[test]
    fn prepared_but_undecided_tracks_outcomes() {
        let wal = WriteAheadLog::new();
        wal.append(LogRecord::Begin(xid(1)));
        wal.append(LogRecord::Prepare(xid(1)));
        wal.append(LogRecord::Begin(xid(2)));
        wal.append(LogRecord::Prepare(xid(2)));
        wal.append(LogRecord::Commit(xid(1)));
        wal.flush();
        assert_eq!(wal.prepared_but_undecided(), vec![xid(2)]);
    }

    #[test]
    fn checkpoint_compaction_keeps_undecided_transactions_only() {
        let wal = WriteAheadLog::new();
        // An undecided prepared branch that must survive compaction.
        wal.append(LogRecord::Begin(xid(1)));
        wal.append(LogRecord::Prepare(xid(1)));
        // Enough decided traffic to cross the compaction threshold.
        for n in 2..(2 + super::COMPACT_THRESHOLD as u64) {
            wal.append(LogRecord::Begin(xid(n)));
            wal.append(LogRecord::Commit(xid(n)));
        }
        wal.flush();
        assert_eq!(
            wal.prepared_but_undecided(),
            vec![xid(1)],
            "undecided branch survives the checkpoint"
        );
        assert!(
            wal.len() < super::COMPACT_THRESHOLD / 2,
            "decided history was compacted away (len {})",
            wal.len()
        );
        // A crash after the checkpoint still recovers the undecided branch.
        wal.truncate_to_durable();
        assert_eq!(wal.prepared_but_undecided(), vec![xid(1)]);
    }

    #[test]
    fn update_record_round_trip() {
        let key = Key::new(TableId(0), 7);
        let rec = LogRecord::Update {
            xid: xid(3),
            key,
            before: Some(Row::int(1)),
            after: Some(Row::int(2)),
        };
        assert_eq!(rec.xid(), xid(3));
        let wal = WriteAheadLog::new();
        wal.append(rec.clone());
        assert_eq!(wal.all_records(), vec![rec]);
    }
}
