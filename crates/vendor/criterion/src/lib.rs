//! Vendored stand-in for the `criterion` bench harness.
//!
//! The build environment has no network access, so the real criterion cannot
//! be fetched. This shim implements the subset the repo's microbenchmarks
//! use — `Criterion::bench_function`, `Bencher::iter` / `iter_batched`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — with a
//! simple warm-up + sampling loop that prints mean / median / min per
//! iteration. It is intentionally minimal: no outlier analysis, no plots, no
//! saved baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one routine call
/// per setup call regardless, so the variants only exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Benchmark `routine` by timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, measuring the cost
        // of one call so the sampling loop can pick a batch size.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up_time || calls == 0 {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed() / calls.max(1) as u32;
        let budget_per_sample = self.measurement_time / self.sample_size.max(1) as u32;
        let batch = if per_call.is_zero() {
            1_000
        } else {
            (budget_per_sample.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    /// Benchmark `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up_time || calls == 0 {
            let input = setup();
            black_box(routine(input));
            calls += 1;
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let out = black_box(routine(input));
            self.samples.push(start.elapsed());
            // Dropping the routine's output is excluded from the measurement,
            // matching upstream criterion's `iter_batched` semantics.
            drop(out);
        }
    }
}

/// Top-level bench registry, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget (split across samples).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{name:<55} (no samples)");
            return self;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{name:<55} mean {:>12} median {:>12} min {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(median),
            fmt_duration(min),
            samples.len()
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declare a bench group, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_and_prints() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("shim/self_test", |b| {
            b.iter(|| black_box(3u64.wrapping_mul(7)))
        });
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
