//! Vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access, so the
//! real `rand` cannot be fetched from crates.io. This crate re-implements the
//! small API surface the GeoTP reproduction uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen::<f64>()` and `Rng::gen_range` over
//! integer/float ranges — on top of a xoshiro256++ generator seeded via
//! SplitMix64.
//!
//! Determinism is the only contract: the same seed always yields the same
//! stream (within this crate; the streams differ from upstream `rand`, which
//! is fine because every consumer seeds explicitly and only compares runs
//! against other runs of this codebase).

use std::ops::{Range, RangeInclusive};

/// Types that can be produced by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire's method,
/// simplified: one widening multiply; the bias for 64-bit bounds is < 2^-64
/// per draw which is far below anything the simulation can observe).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` (only the types the workloads use).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — the standard small-state PRNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.5..=2.0f64);
            assert!((0.5..=2.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_full_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
    }
}
