//! Join handles for spawned tasks.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Shared completion slot between a spawned task and its [`JoinHandle`].
pub(crate) struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

impl<T> JoinState<T> {
    pub(crate) fn new() -> Self {
        Self {
            result: None,
            waker: None,
            finished: false,
        }
    }

    pub(crate) fn complete(state: &Rc<RefCell<Self>>, value: T) {
        let waker = {
            let mut s = state.borrow_mut();
            s.result = Some(value);
            s.finished = true;
            s.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Handle to a spawned task; awaiting it yields the task's output.
///
/// Dropping the handle detaches the task (it keeps running in the background).
///
/// Unlike tokio there is no cancellation-on-drop and no `JoinError`: the
/// runtime is single-threaded and panics propagate directly, so the output is
/// returned by value.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    pub(crate) fn new(state: Rc<RefCell<JoinState<T>>>) -> Self {
        Self { state }
    }

    /// Whether the task has already finished.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }

    /// Take the output if the task already finished, without awaiting.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut state = self.state.borrow_mut();
        if let Some(v) = state.result.take() {
            return Poll::Ready(v);
        }
        assert!(
            !state.finished,
            "JoinHandle polled after its output was already taken"
        );
        state.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use crate::{sleep, spawn, Runtime};
    use std::time::Duration;

    #[test]
    fn is_finished_and_try_take() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let h = spawn(async { 5u32 });
            assert!(!h.is_finished());
            sleep(Duration::from_millis(1)).await;
            assert!(h.is_finished());
            assert_eq!(h.try_take(), Some(5));
            assert_eq!(h.try_take(), None);
        });
    }

    #[test]
    fn detached_task_still_runs() {
        let mut rt = Runtime::new();
        let out = rt.block_on(async {
            let flag = std::rc::Rc::new(std::cell::Cell::new(false));
            let f = std::rc::Rc::clone(&flag);
            drop(spawn(async move {
                sleep(Duration::from_millis(2)).await;
                f.set(true);
            }));
            sleep(Duration::from_millis(5)).await;
            flag.get()
        });
        assert!(out);
    }
}
