//! Simulation topology: named nodes, weighted links, shard assignment.
//!
//! The topology serves two purposes. For the *model*, it names the places
//! (data sources, coordinators, client drivers) that tasks belong to. For the
//! *engine*, it bounds how early a message from one worker shard can reach
//! another: the minimum one-way link latency between two shards is the
//! conservative **lookahead** that lets each shard run ahead of its peers
//! without ever receiving a message from its past (classic conservative
//! parallel discrete-event simulation).

use crate::hash::FxHashMap;

/// Immutable description of the simulated cluster: node names, their worker
/// shard assignment, and the declared links between them.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    names: Vec<String>,
    shards: Vec<u32>,
    /// `(a, b, rtt_micros)` — links are symmetric.
    links: Vec<(u32, u32, u64)>,
    index: FxHashMap<String, u32>,
}

impl Topology {
    pub(crate) fn add_node(&mut self, name: &str) -> u32 {
        if let Some(&idx) = self.index.get(name) {
            return idx;
        }
        let idx = self.names.len() as u32;
        self.names.push(name.to_string());
        self.shards.push(0);
        self.index.insert(name.to_string(), idx);
        idx
    }

    pub(crate) fn add_link(&mut self, a: u32, b: u32, rtt_micros: u64) {
        self.links.push((a, b, rtt_micros));
    }

    pub(crate) fn set_shard(&mut self, node: u32, shard: u32) {
        self.shards[node as usize] = shard;
    }

    /// Default placement: node `i` on shard `i % workers`, in declaration
    /// order. Explicit [`crate::RuntimeBuilder::assign`] calls override this.
    pub(crate) fn assign_round_robin(&mut self, workers: u32, pinned: &[bool]) {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if !pinned[i] {
                *shard = i as u32 % workers;
            }
        }
    }

    /// Index of a declared node, or `None` if the name is unknown.
    pub fn node_index(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Name of node `idx`.
    pub fn node_name(&self, idx: u32) -> &str {
        &self.names[idx as usize]
    }

    /// Worker shard that node `idx` is assigned to.
    pub fn shard_of(&self, idx: u32) -> u32 {
        self.shards[idx as usize]
    }

    /// Number of declared nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Declared links as `(a, b, rtt_micros)`.
    pub fn links(&self) -> &[(u32, u32, u64)] {
        &self.links
    }
}

/// Minimum one-way latency from shard `src` to shard `dst`, in microseconds,
/// derived from the declared links. `u64::MAX` means no declared link crosses
/// that shard pair (no constraint — messages between them are not allowed
/// without a link anyway, and the barrier falls back to a 1µs window).
pub(crate) fn build_lookahead(topology: &Topology, workers: usize) -> Vec<u64> {
    let mut lookahead = vec![u64::MAX; workers * workers];
    for &(a, b, rtt) in topology.links() {
        let (sa, sb) = (topology.shard_of(a), topology.shard_of(b));
        if sa == sb {
            continue;
        }
        // One-way latency, conservatively floored at 1µs so zero-latency
        // links still permit the window barrier to make progress.
        let one_way = (rtt / 2).max(1);
        for (s, d) in [(sa, sb), (sb, sa)] {
            let cell = &mut lookahead[s as usize * workers + d as usize];
            *cell = (*cell).min(one_way);
        }
    }
    lookahead
}

/// A per-shard lifecycle hook pair registered via
/// [`crate::RuntimeBuilder::shard_scope`]. `enter` runs on each shard's
/// thread before any task is spawned there; `teardown` runs on the same
/// thread after the shard's event loop has finished. Hooks run outside the
/// event loop, so they cannot perturb the deterministic schedule.
pub(crate) struct ShardHooks {
    pub(crate) enter: std::sync::Arc<dyn Fn(u32) + Send + Sync>,
    pub(crate) teardown: std::sync::Arc<dyn Fn(u32) + Send + Sync>,
}

/// Run-wide metadata shared by every shard: the seed, worker count, topology
/// and the precomputed shard-to-shard lookahead matrix.
pub(crate) struct RunMeta {
    pub(crate) seed: u64,
    pub(crate) workers: usize,
    pub(crate) topology: Topology,
    /// `lookahead[src * workers + dst]`, microseconds; `u64::MAX` = no link.
    pub(crate) lookahead: Vec<u64>,
    /// Per-shard lifecycle hooks, fired in registration order on enter and
    /// reverse order on teardown.
    pub(crate) shard_hooks: Vec<ShardHooks>,
}

impl RunMeta {
    /// Conservative lookahead from shard `src` to shard `dst`: how far ahead
    /// of `src`'s clock a message to `dst` is guaranteed *not* to arrive.
    /// The 1µs floor keeps the barrier protocol live even between shards
    /// with no declared cross link (time-window fallback).
    pub(crate) fn lookahead(&self, src: u32, dst: u32) -> u64 {
        let l = self.lookahead[src as usize * self.workers + dst as usize];
        if l == u64::MAX {
            1
        } else {
            l
        }
    }

    /// The raw matrix entry (`u64::MAX` when no cross link was declared).
    /// Used for the send-time assertion that cross-shard messages respect
    /// the declared link latency.
    pub(crate) fn declared_lookahead(&self, src: u32, dst: u32) -> u64 {
        self.lookahead[src as usize * self.workers + dst as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_indices_are_stable_and_deduplicated() {
        let mut t = Topology::default();
        let a = t.add_node("coord0");
        let b = t.add_node("ds1");
        assert_eq!(t.add_node("coord0"), a);
        assert_eq!(t.node_index("ds1"), Some(b));
        assert_eq!(t.node_name(a), "coord0");
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn round_robin_respects_pins() {
        let mut t = Topology::default();
        for name in ["a", "b", "c", "d"] {
            t.add_node(name);
        }
        t.set_shard(2, 0); // pin "c" to shard 0
        t.assign_round_robin(2, &[false, false, true, false]);
        assert_eq!(
            (0..4).map(|i| t.shard_of(i)).collect::<Vec<_>>(),
            vec![0, 1, 0, 1]
        );
    }

    #[test]
    fn lookahead_is_min_one_way_over_cross_links() {
        let mut t = Topology::default();
        let a = t.add_node("a"); // shard 0
        let b = t.add_node("b"); // shard 1
        let c = t.add_node("c"); // shard 0
        t.assign_round_robin(2, &[false, false, false]);
        t.add_link(a, b, 100_000); // 50ms one-way
        t.add_link(c, b, 27_000); // 13.5ms one-way — the min
        t.add_link(a, c, 500); // same shard: ignored
        let l = build_lookahead(&t, 2);
        assert_eq!(l[1], 13_500); // 0 -> 1
        assert_eq!(l[2], 13_500); // 1 -> 0
        assert_eq!(l[0], u64::MAX);
    }

    #[test]
    fn zero_latency_link_floors_at_one_micro() {
        let mut t = Topology::default();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.assign_round_robin(2, &[false, false]);
        t.add_link(a, b, 0);
        let l = build_lookahead(&t, 2);
        assert_eq!(l[1], 1);
    }
}
