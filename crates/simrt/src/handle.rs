//! [`RuntimeHandle`] — the in-task view of the running runtime.
//!
//! Folds the previously scattered accessors (`try_now`, ad-hoc seed
//! plumbing, topology lookups) into one cheap, clonable handle obtained via
//! [`handle`] / [`try_handle`] from inside any task.

use std::rc::Rc;
use std::sync::Arc;

use crate::executor::{try_with_current_ctx, with_current_ctx, RuntimeInner};
use crate::time::SimInstant;
use crate::topology::{RunMeta, Topology};

/// A handle to the runtime the calling task runs on: virtual clock, run
/// seed, derived RNG streams, worker/shard placement and the declared
/// topology. `!Send` — it is a view of the current shard.
#[derive(Clone)]
pub struct RuntimeHandle {
    inner: Rc<RuntimeInner>,
    meta: Arc<RunMeta>,
    shard: u32,
}

/// The current runtime's handle.
///
/// # Panics
///
/// Panics if no runtime is active on this thread (use [`try_handle`] for a
/// fallible variant).
pub fn handle() -> RuntimeHandle {
    with_current_ctx(|ctx| RuntimeHandle {
        inner: Rc::clone(&ctx.inner),
        meta: Arc::clone(&ctx.meta),
        shard: ctx.shard.as_ref().map(|s| s.shard).unwrap_or(0),
    })
}

/// The current runtime's handle, or `None` when no runtime is active on
/// this thread (e.g. in plain unit tests or during teardown).
pub fn try_handle() -> Option<RuntimeHandle> {
    try_with_current_ctx(|ctx| RuntimeHandle {
        inner: Rc::clone(&ctx.inner),
        meta: Arc::clone(&ctx.meta),
        shard: ctx.shard.as_ref().map(|s| s.shard).unwrap_or(0),
    })
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RuntimeHandle {
    /// Current virtual time of this shard.
    pub fn now(&self) -> SimInstant {
        SimInstant::from_micros(self.inner.now_micros())
    }

    /// Current virtual time of this shard, in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.inner.now_micros()
    }

    /// The run's root seed, as set by [`crate::RuntimeBuilder::seed`].
    pub fn seed(&self) -> u64 {
        self.meta.seed
    }

    /// A deterministic per-component RNG seed derived from the root seed
    /// and a stable tag (e.g. `"net"`, `"client:17"`). Independent of
    /// worker count and of call order, so components can seed their own
    /// streams without threading seeds through every constructor.
    pub fn stream_seed(&self, tag: &str) -> u64 {
        let mut h = crate::hash::FxHasher::default();
        std::hash::Hasher::write(&mut h, tag.as_bytes());
        splitmix64(self.meta.seed ^ std::hash::Hasher::finish(&h))
    }

    /// Number of worker shards in this run.
    pub fn workers(&self) -> usize {
        self.meta.workers
    }

    /// The shard the calling task runs on (always 0 with one worker).
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The declared topology (empty for runtimes built via
    /// [`crate::Runtime::new`]).
    pub fn topology(&self) -> &Topology {
        &self.meta.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_reports_clock_seed_and_placement() {
        let mut rt = crate::RuntimeBuilder::new().seed(99).build();
        rt.block_on(async {
            let h = handle();
            assert_eq!(h.now_micros(), 0);
            assert_eq!(h.seed(), 99);
            assert_eq!(h.workers(), 1);
            assert_eq!(h.shard(), 0);
            crate::sleep(std::time::Duration::from_millis(3)).await;
            assert_eq!(handle().now_micros(), 3_000);
        });
    }

    #[test]
    fn try_handle_is_none_outside_a_runtime() {
        assert!(try_handle().is_none());
    }

    #[test]
    fn stream_seeds_differ_by_tag_and_depend_on_root_seed() {
        let mut rt = crate::RuntimeBuilder::new().seed(7).build();
        let (a, b, a2) = rt.block_on(async {
            let h = handle();
            (
                h.stream_seed("net"),
                h.stream_seed("client:0"),
                h.stream_seed("net"),
            )
        });
        assert_ne!(a, b);
        assert_eq!(a, a2);
        let mut rt2 = crate::RuntimeBuilder::new().seed(8).build();
        let a_other = rt2.block_on(async { handle().stream_seed("net") });
        assert_ne!(a, a_other);
    }
}
