//! The discrete-event executor: ready queue, virtual clock and timer wheel.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;

use crate::task::{JoinHandle, JoinState};
use crate::time::SimInstant;

/// Identifier of a spawned task within one runtime.
pub(crate) type TaskId = u64;

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// A timer registration: wake `waker` once the virtual clock reaches `deadline`.
struct TimerEntry {
    deadline: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// The waker handed to tasks: pushing the task id back onto the shared ready
/// queue. The queue lives behind an `Arc<Mutex<..>>` purely to satisfy the
/// `Send + Sync` bound on [`Wake`]; the runtime itself is single-threaded.
struct QueueWaker {
    task_id: TaskId,
    queue: Arc<Mutex<VecDeque<TaskId>>>,
}

impl Wake for QueueWaker {
    fn wake(self: Arc<Self>) {
        self.queue.lock().push_back(self.task_id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.lock().push_back(self.task_id);
    }
}

/// Counters describing what one `block_on` call did. Exposed so the experiment
/// harness can report simulator "resource" usage (substitute for Fig. 6a).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Total number of task polls performed.
    pub polls: u64,
    /// Total number of tasks spawned (including the root task).
    pub tasks_spawned: u64,
    /// Total number of timer registrations.
    pub timers_registered: u64,
    /// Number of times the virtual clock jumped forward.
    pub clock_advances: u64,
}

pub(crate) struct RuntimeInner {
    now_micros: Cell<u64>,
    next_task_id: Cell<TaskId>,
    next_timer_seq: Cell<u64>,
    tasks: RefCell<HashMap<TaskId, LocalFuture>>,
    /// Tasks spawned while another task is being polled are parked here first
    /// because `tasks` is mutably borrowed during the poll.
    pending_spawns: RefCell<Vec<(TaskId, LocalFuture)>>,
    ready: Arc<Mutex<VecDeque<TaskId>>>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    metrics: RefCell<RunMetrics>,
}

impl RuntimeInner {
    fn new() -> Self {
        Self {
            now_micros: Cell::new(0),
            next_task_id: Cell::new(0),
            next_timer_seq: Cell::new(0),
            tasks: RefCell::new(HashMap::new()),
            pending_spawns: RefCell::new(Vec::new()),
            ready: Arc::new(Mutex::new(VecDeque::new())),
            timers: RefCell::new(BinaryHeap::new()),
            metrics: RefCell::new(RunMetrics::default()),
        }
    }

    pub(crate) fn now_micros(&self) -> u64 {
        self.now_micros.get()
    }

    /// Register a timer waking `waker` at `deadline_micros` (virtual time).
    pub(crate) fn register_timer(&self, deadline_micros: u64, waker: Waker) {
        let seq = self.next_timer_seq.get();
        self.next_timer_seq.set(seq + 1);
        self.metrics.borrow_mut().timers_registered += 1;
        self.timers.borrow_mut().push(Reverse(TimerEntry {
            deadline: deadline_micros,
            seq,
            waker,
        }));
    }

    fn alloc_task_id(&self) -> TaskId {
        let id = self.next_task_id.get();
        self.next_task_id.set(id + 1);
        id
    }

    fn waker_for(&self, task_id: TaskId) -> Waker {
        Waker::from(Arc::new(QueueWaker {
            task_id,
            queue: Arc::clone(&self.ready),
        }))
    }

    fn spawn_inner(&self, fut: LocalFuture) -> TaskId {
        let id = self.alloc_task_id();
        self.metrics.borrow_mut().tasks_spawned += 1;
        // If `tasks` is currently borrowed we are inside a poll: defer.
        match self.tasks.try_borrow_mut() {
            Ok(mut tasks) => {
                tasks.insert(id, fut);
            }
            Err(_) => {
                self.pending_spawns.borrow_mut().push((id, fut));
            }
        }
        self.ready.lock().push_back(id);
        id
    }

    fn drain_pending_spawns(&self) {
        let mut pending = self.pending_spawns.borrow_mut();
        if pending.is_empty() {
            return;
        }
        let mut tasks = self.tasks.borrow_mut();
        for (id, fut) in pending.drain(..) {
            tasks.insert(id, fut);
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<RuntimeInner>>> = const { RefCell::new(None) };
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Rc<RuntimeInner>) -> R) -> R {
    CURRENT.with(|cur| {
        let borrow = cur.borrow();
        let inner = borrow
            .as_ref()
            .expect("geotp-simrt: no runtime is active on this thread; wrap the call in Runtime::block_on");
        f(inner)
    })
}

struct CurrentGuard {
    prev: Option<Rc<RuntimeInner>>,
}

impl CurrentGuard {
    fn enter(inner: Rc<RuntimeInner>) -> Self {
        CURRENT.with(|cur| {
            let mut slot = cur.borrow_mut();
            assert!(
                slot.is_none(),
                "geotp-simrt: nested Runtime::block_on is not supported"
            );
            let prev = slot.replace(inner);
            CurrentGuard { prev }
        })
    }
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|cur| {
            *cur.borrow_mut() = self.prev.take();
        });
    }
}

/// The simulated-time runtime. Create one per experiment / test and call
/// [`Runtime::block_on`] with the root future.
pub struct Runtime {
    inner: Rc<RuntimeInner>,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime {
    /// Create a fresh runtime with the virtual clock at zero.
    pub fn new() -> Self {
        Self {
            inner: Rc::new(RuntimeInner::new()),
        }
    }

    /// Current virtual time of this runtime in microseconds since start.
    pub fn now_micros(&self) -> u64 {
        self.inner.now_micros()
    }

    /// Counters accumulated so far (polls, spawns, timers, clock advances).
    pub fn metrics(&self) -> RunMetrics {
        *self.inner.metrics.borrow()
    }

    /// Drive `root` to completion, advancing virtual time as needed.
    ///
    /// Background tasks spawned with [`spawn`] keep running while the root is
    /// pending; once the root completes they are abandoned (dropped when the
    /// runtime is dropped), mirroring tokio's `block_on` semantics.
    ///
    /// # Panics
    ///
    /// Panics if the root future is still pending while no task is runnable
    /// and no timer is registered (a genuine deadlock in the simulated
    /// system), or if `block_on` is re-entered on the same thread.
    pub fn block_on<F: Future>(&mut self, root: F) -> F::Output {
        /// Reserved task id for the root future (normal ids count up from 0).
        const ROOT_ID: TaskId = TaskId::MAX;

        let _guard = CurrentGuard::enter(Rc::clone(&self.inner));
        let inner = &self.inner;

        let mut root = Box::pin(root);
        let root_waker = inner.waker_for(ROOT_ID);
        inner.ready.lock().push_back(ROOT_ID);

        loop {
            let next = inner.ready.lock().pop_front();
            match next {
                Some(ROOT_ID) => {
                    inner.metrics.borrow_mut().polls += 1;
                    let mut cx = Context::from_waker(&root_waker);
                    if let Poll::Ready(out) = root.as_mut().poll(&mut cx) {
                        return out;
                    }
                    inner.drain_pending_spawns();
                }
                Some(task_id) => {
                    let fut = inner.tasks.borrow_mut().remove(&task_id);
                    let Some(mut fut) = fut else {
                        // Stale wake for a task that already completed.
                        continue;
                    };
                    inner.metrics.borrow_mut().polls += 1;
                    let waker = inner.waker_for(task_id);
                    let mut cx = Context::from_waker(&waker);
                    match fut.as_mut().poll(&mut cx) {
                        Poll::Ready(()) => { /* task finished, drop it */ }
                        Poll::Pending => {
                            inner.tasks.borrow_mut().insert(task_id, fut);
                        }
                    }
                    inner.drain_pending_spawns();
                }
                None => {
                    // No runnable task: advance the clock to the next timer.
                    let mut timers = inner.timers.borrow_mut();
                    let Some(Reverse(head)) = timers.peek() else {
                        panic!(
                            "geotp-simrt: simulation deadlock at t={}us — the root task is \
                             pending but no task is runnable and no timer is registered",
                            inner.now_micros()
                        );
                    };
                    let deadline = head.deadline;
                    debug_assert!(deadline >= inner.now_micros());
                    if deadline > inner.now_micros() {
                        inner.now_micros.set(deadline);
                        inner.metrics.borrow_mut().clock_advances += 1;
                    }
                    // Fire every timer whose deadline has been reached.
                    while let Some(Reverse(entry)) = timers.peek() {
                        if entry.deadline > inner.now_micros() {
                            break;
                        }
                        let Reverse(entry) = timers.pop().unwrap();
                        entry.waker.wake();
                    }
                }
            }
        }
    }
}

/// Spawn a new asynchronous task onto the currently running runtime.
///
/// The returned [`JoinHandle`] can be awaited for the task's output. Unlike
/// tokio, futures do not need to be `Send`: the runtime is single-threaded.
///
/// # Panics
///
/// Panics if called outside [`Runtime::block_on`].
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let state = Rc::new(RefCell::new(JoinState::new()));
    let state_clone = Rc::clone(&state);
    with_current(|inner| {
        inner.spawn_inner(Box::pin(async move {
            let out = fut.await;
            JoinState::complete(&state_clone, out);
        }));
    });
    JoinHandle::new(state)
}

/// Current virtual time of the active runtime, as a [`SimInstant`].
pub(crate) fn current_now() -> SimInstant {
    with_current(|inner| SimInstant::from_micros(inner.now_micros()))
}

/// Register a wake-up at `deadline` (virtual) for `waker` on the active runtime.
pub(crate) fn current_register_timer(deadline: SimInstant, waker: Waker) {
    with_current(|inner| inner.register_timer(deadline.as_micros(), waker));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sleep, yield_now};
    use std::time::Duration;

    #[test]
    fn block_on_returns_value() {
        let mut rt = Runtime::new();
        let v = rt.block_on(async { 7 });
        assert_eq!(v, 7);
    }

    #[test]
    fn virtual_time_advances_with_sleep() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            sleep(Duration::from_millis(250)).await;
        });
        assert_eq!(rt.now_micros(), 250_000);
    }

    #[test]
    fn spawned_tasks_run_concurrently_in_virtual_time() {
        let mut rt = Runtime::new();
        let elapsed = rt.block_on(async {
            let start = crate::now();
            let a = spawn(async {
                sleep(Duration::from_millis(100)).await;
            });
            let b = spawn(async {
                sleep(Duration::from_millis(100)).await;
            });
            a.await;
            b.await;
            crate::now().duration_since(start)
        });
        // Two concurrent 100ms sleeps overlap: total virtual time is 100ms.
        assert_eq!(elapsed, Duration::from_millis(100));
    }

    #[test]
    fn sequential_sleeps_accumulate() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            sleep(Duration::from_millis(10)).await;
            sleep(Duration::from_millis(20)).await;
            sleep(Duration::from_millis(30)).await;
        });
        assert_eq!(rt.now_micros(), 60_000);
    }

    #[test]
    fn join_handle_returns_output() {
        let mut rt = Runtime::new();
        let out = rt.block_on(async {
            let h = spawn(async {
                sleep(Duration::from_millis(5)).await;
                "done"
            });
            h.await
        });
        assert_eq!(out, "done");
    }

    #[test]
    fn yield_now_reschedules_fairly() {
        let mut rt = Runtime::new();
        let order = rt.block_on(async {
            let log = Rc::new(RefCell::new(Vec::new()));
            let l1 = Rc::clone(&log);
            let l2 = Rc::clone(&log);
            let h1 = spawn(async move {
                for i in 0..3 {
                    l1.borrow_mut().push(format!("a{i}"));
                    yield_now().await;
                }
            });
            let h2 = spawn(async move {
                for i in 0..3 {
                    l2.borrow_mut().push(format!("b{i}"));
                    yield_now().await;
                }
            });
            h1.await;
            h2.await;
            Rc::try_unwrap(log).unwrap().into_inner()
        });
        // FIFO ready queue interleaves the two tasks deterministically.
        assert_eq!(order, vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn metrics_are_recorded() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            spawn(async {
                sleep(Duration::from_millis(1)).await;
            })
            .await;
        });
        let m = rt.metrics();
        assert!(m.polls >= 2);
        assert_eq!(m.tasks_spawned, 1);
        assert!(m.timers_registered >= 1);
        assert!(m.clock_advances >= 1);
    }

    #[test]
    #[should_panic(expected = "simulation deadlock")]
    fn deadlock_is_detected() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            // A future that is never woken.
            std::future::pending::<()>().await;
        });
    }

    #[test]
    fn background_task_abandoned_after_root_completes() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            spawn(async {
                sleep(Duration::from_secs(3600)).await;
            });
            sleep(Duration::from_millis(1)).await;
        });
        // Root returned after 1ms; the hour-long background sleep never ran to completion.
        assert_eq!(rt.now_micros(), 1_000);
    }

    #[test]
    fn determinism_same_program_same_schedule() {
        fn run_once() -> (u64, Vec<u32>) {
            let mut rt = Runtime::new();
            let log = rt.block_on(async {
                let log = Rc::new(RefCell::new(Vec::new()));
                let mut handles = Vec::new();
                for i in 0..10u32 {
                    let log = Rc::clone(&log);
                    handles.push(spawn(async move {
                        sleep(Duration::from_millis((10 - i) as u64)).await;
                        log.borrow_mut().push(i);
                    }));
                }
                for h in handles {
                    h.await;
                }
                Rc::try_unwrap(log).unwrap().into_inner()
            });
            (rt.now_micros(), log)
        }
        assert_eq!(run_once(), run_once());
    }
}
