//! The discrete-event executor: ready queue, virtual clock and timer wheel.
//!
//! ## Hot-path design
//!
//! The executor is the inner loop of every experiment, so its per-poll cost is
//! kept allocation-free:
//!
//! * **Task slab** — tasks live in a `Vec<TaskSlot>` indexed by slot, with a
//!   free list and per-slot generation counters (so a stale wake for a
//!   finished task can never poll an unrelated task that reused the slot).
//!   Polling takes the future out of its slot and puts it back — two pointer
//!   moves — instead of the remove/insert pair a `HashMap` would cost.
//! * **Cached wakers** — each task's `Waker` is created once at spawn and
//!   cached in its slot; a poll clones it (one atomic refcount bump) instead
//!   of allocating a fresh `Arc` per poll.
//! * **`Cell` metrics** — the run counters are plain `Cell`s, not a `RefCell`
//!   of the whole struct, so bumping a counter is a load+store.
//! * **Batch timer firing** — expired timers are collected from the
//!   hierarchical wheel (see [`crate::wheel`]) into a reusable scratch buffer
//!   under a single `RefCell` borrow.
//!
//! ## One loop, two modes
//!
//! [`RuntimeInner::run_window`] is the poll loop shared by both execution
//! modes. Single-worker runs ([`Runtime::block_on`] with `workers(1)`, the
//! default) call it once with no time limit — byte-for-byte the historical
//! single-threaded schedule. Multi-worker runs (built via
//! [`crate::RuntimeBuilder::workers`]) give every worker shard its own
//! `RuntimeInner` and drive the same loop window-by-window under the
//! conservative barrier protocol in [`crate::shard`].

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::mailbox::{DeliverHook, Envelope};
use crate::shard::ShardLink;
use crate::task::{JoinHandle, JoinState};
use crate::time::SimInstant;
use crate::topology::RunMeta;
use crate::wheel::{TimerEntry, TimerWheel, CLASS_DELIVERY, CLASS_NORMAL};

/// Identifier of a spawned task within one runtime: slab slot in the upper
/// bits, slot generation in the lower 32 (so ids of finished tasks are never
/// confused with the slot's next occupant).
pub(crate) type TaskId = u64;

const ROOT_ID: TaskId = TaskId::MAX;

fn task_id(slot: u32, generation: u32) -> TaskId {
    ((slot as u64) << 32) | generation as u64
}

fn split_id(id: TaskId) -> (u32, u32) {
    ((id >> 32) as u32, id as u32)
}

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// The waker handed to tasks: pushing the task id back onto the shared ready
/// queue. The queue lives behind an `Arc<Mutex<..>>` purely to satisfy the
/// `Send + Sync` bound on [`Wake`]; each shard's runtime is single-threaded
/// and the mutex is never contended.
struct QueueWaker {
    task_id: TaskId,
    queue: Arc<Mutex<VecDeque<TaskId>>>,
}

impl Wake for QueueWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.lock().unwrap().push_back(self.task_id);
    }
}

/// Counters describing what one `block_on` call did. Exposed so the experiment
/// harness can report simulator "resource" usage (substitute for Fig. 6a).
/// In multi-worker runs the counters are summed across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Total number of task polls performed.
    pub polls: u64,
    /// Total number of tasks spawned (including the root task).
    pub tasks_spawned: u64,
    /// Total number of timer registrations.
    pub timers_registered: u64,
    /// Number of times the virtual clock jumped forward.
    pub clock_advances: u64,
}

impl RunMetrics {
    /// Element-wise sum, for merging per-shard counters.
    pub(crate) fn merge(&mut self, other: RunMetrics) {
        self.polls += other.polls;
        self.tasks_spawned += other.tasks_spawned;
        self.timers_registered += other.timers_registered;
        self.clock_advances += other.clock_advances;
    }
}

/// One slab slot. `fut` is `None` both while the task is being polled (the
/// future is taken out so polling holds no borrow of the slab) and after the
/// task finished (until the slot is reused).
struct TaskSlot {
    fut: Option<LocalFuture>,
    /// The task's cached waker, created once at spawn.
    waker: Waker,
    generation: u32,
    /// Whether the slot currently belongs to a live task. Distinguishes
    /// "being polled right now" from "free" when `fut` is `None`.
    occupied: bool,
}

/// The root future's polling context, threaded through [`RuntimeInner::run_window`]
/// by reference so `block_on` keeps its non-`'static` signature.
pub(crate) struct RootCtx<'a, F: Future> {
    pub(crate) fut: Pin<&'a mut F>,
    pub(crate) waker: &'a Waker,
    pub(crate) out: &'a mut Option<F::Output>,
}

/// Why [`RuntimeInner::run_window`] returned.
pub(crate) enum WindowPause {
    /// Nothing runnable before the window limit (the caller re-reads the
    /// next pending deadline when reporting to the barrier).
    Blocked,
    /// The root future completed; its output is in `RootCtx::out`.
    RootDone,
    /// `should_stop` returned true.
    Stopped,
}

pub(crate) struct RuntimeInner {
    now_micros: Cell<u64>,
    tasks: RefCell<Vec<TaskSlot>>,
    free_slots: RefCell<Vec<u32>>,
    ready: Arc<Mutex<VecDeque<TaskId>>>,
    timers: RefCell<TimerWheel>,
    /// Scratch buffer for expired timers (reused across clock advances).
    fired: RefCell<Vec<TimerEntry>>,
    /// Mailbox delivery hooks bound on this shard, by mailbox id.
    mailboxes: RefCell<crate::hash::FxHashMap<u64, DeliverHook>>,
    /// Envelopes delivered before their mailbox was bound.
    pending_mail: RefCell<crate::hash::FxHashMap<u64, Vec<Envelope>>>,
    polls: Cell<u64>,
    tasks_spawned: Cell<u64>,
    timers_registered: Cell<u64>,
    clock_advances: Cell<u64>,
}

impl RuntimeInner {
    pub(crate) fn new() -> Self {
        Self {
            now_micros: Cell::new(0),
            tasks: RefCell::new(Vec::new()),
            free_slots: RefCell::new(Vec::new()),
            ready: Arc::new(Mutex::new(VecDeque::new())),
            timers: RefCell::new(TimerWheel::new()),
            fired: RefCell::new(Vec::new()),
            mailboxes: RefCell::new(crate::hash::FxHashMap::default()),
            pending_mail: RefCell::new(crate::hash::FxHashMap::default()),
            polls: Cell::new(0),
            tasks_spawned: Cell::new(0),
            timers_registered: Cell::new(0),
            clock_advances: Cell::new(0),
        }
    }

    pub(crate) fn now_micros(&self) -> u64 {
        self.now_micros.get()
    }

    pub(crate) fn metrics(&self) -> RunMetrics {
        RunMetrics {
            polls: self.polls.get(),
            tasks_spawned: self.tasks_spawned.get(),
            timers_registered: self.timers_registered.get(),
            clock_advances: self.clock_advances.get(),
        }
    }

    /// Register a timer waking `waker` at `deadline_micros` (virtual time).
    pub(crate) fn register_timer(&self, deadline_micros: u64, waker: Waker) {
        self.timers_registered.set(self.timers_registered.get() + 1);
        self.timers
            .borrow_mut()
            .push(deadline_micros, CLASS_NORMAL, waker);
    }

    /// Register a message-delivery wake-up. Delivery-class timers sort
    /// before ordinary timers at an equal deadline, so a message arriving
    /// at `t` wakes its receiver ahead of local timers for `t` on every
    /// worker layout.
    pub(crate) fn register_delivery(&self, deadline_micros: u64, waker: Waker) {
        self.timers_registered.set(self.timers_registered.get() + 1);
        self.timers
            .borrow_mut()
            .push(deadline_micros, CLASS_DELIVERY, waker);
    }

    /// Whether any task is queued to run right now.
    pub(crate) fn has_ready(&self) -> bool {
        !self.ready.lock().unwrap().is_empty()
    }

    /// Earliest pending timer deadline on this shard.
    pub(crate) fn next_timer_deadline(&self) -> Option<u64> {
        self.timers.borrow_mut().next_deadline()
    }

    fn waker_for(&self, task_id: TaskId) -> Waker {
        Waker::from(Arc::new(QueueWaker {
            task_id,
            queue: Arc::clone(&self.ready),
        }))
    }

    /// Bind a mailbox delivery hook, replaying any envelopes that arrived
    /// before the owning task bound the mailbox (sorted by delivery key so
    /// the replay order is canonical).
    pub(crate) fn bind_mailbox(&self, id: u64, hook: DeliverHook) {
        let prev = self.mailboxes.borrow_mut().insert(id, Rc::clone(&hook));
        assert!(prev.is_none(), "mailbox {id} bound twice");
        if let Some(mut early) = self.pending_mail.borrow_mut().remove(&id) {
            early.sort_by_key(|e| (e.deliver_at, e.src_node, e.seq));
            for env in early {
                hook(self, env);
            }
        }
    }

    /// Hand an envelope to its mailbox's delivery hook (stashing it if the
    /// mailbox is not bound yet). Called at send time for local traffic and
    /// at window barriers for cross-shard traffic — the hook itself is
    /// identical in both cases, which is what keeps delivery semantics
    /// independent of the worker layout.
    pub(crate) fn deliver(&self, env: Envelope) {
        let hook = self.mailboxes.borrow().get(&env.mailbox).cloned();
        match hook {
            Some(hook) => hook(self, env),
            None => self
                .pending_mail
                .borrow_mut()
                .entry(env.mailbox)
                .or_default()
                .push(env),
        }
    }

    pub(crate) fn push_root_ready(&self) {
        self.ready.lock().unwrap().push_back(ROOT_ID);
    }

    pub(crate) fn root_waker(&self) -> Waker {
        self.waker_for(ROOT_ID)
    }

    /// Insert a task into the slab and schedule it. Safe to call from inside
    /// a poll: polling never holds the slab borrow (the future is taken out
    /// of its slot first), so there is no deferred-spawn side channel.
    fn spawn_inner(&self, fut: LocalFuture) -> TaskId {
        self.tasks_spawned.set(self.tasks_spawned.get() + 1);
        let mut tasks = self.tasks.borrow_mut();
        let id = match self.free_slots.borrow_mut().pop() {
            Some(slot) => {
                let entry = &mut tasks[slot as usize];
                debug_assert!(!entry.occupied && entry.fut.is_none());
                // The generation was bumped when the slot was freed, so the
                // cached waker must be rebuilt for the new id.
                let id = task_id(slot, entry.generation);
                entry.fut = Some(fut);
                entry.waker = self.waker_for(id);
                entry.occupied = true;
                id
            }
            None => {
                let slot = tasks.len() as u32;
                let id = task_id(slot, 0);
                tasks.push(TaskSlot {
                    fut: Some(fut),
                    waker: self.waker_for(id),
                    generation: 0,
                    occupied: true,
                });
                id
            }
        };
        drop(tasks);
        self.ready.lock().unwrap().push_back(id);
        id
    }

    /// The executor loop: poll ready tasks; when none are runnable, advance
    /// the virtual clock to the next timer strictly below `limit` and fire
    /// every expired timer. Returns when the window limit is reached
    /// (`Blocked`), the root completes (`RootDone`), or `should_stop` fires
    /// (`Stopped`). With `limit == None` and a never-true `should_stop`
    /// this is exactly the historical single-threaded `block_on` loop.
    pub(crate) fn run_window<F: Future>(
        &self,
        limit: Option<u64>,
        root: &mut Option<RootCtx<'_, F>>,
        mut should_stop: impl FnMut() -> bool,
    ) -> WindowPause {
        loop {
            if should_stop() {
                return WindowPause::Stopped;
            }
            let next = self.ready.lock().unwrap().pop_front();
            match next {
                Some(ROOT_ID) => {
                    // A stale root wake after completion is ignored.
                    let Some(rc) = root.as_mut() else { continue };
                    self.polls.set(self.polls.get() + 1);
                    let mut cx = Context::from_waker(rc.waker);
                    if let Poll::Ready(out) = rc.fut.as_mut().poll(&mut cx) {
                        *rc.out = Some(out);
                        return WindowPause::RootDone;
                    }
                }
                Some(id) => {
                    let (slot, generation) = split_id(id);
                    // Take the future out of its slot; a stale wake (finished
                    // task, reused slot, or a wake that raced an earlier poll
                    // in this batch) finds either a mismatched generation or
                    // an empty slot and is ignored.
                    let taken = {
                        let mut tasks = self.tasks.borrow_mut();
                        match tasks.get_mut(slot as usize) {
                            Some(entry) if entry.generation == generation => {
                                entry.fut.take().map(|fut| (fut, entry.waker.clone()))
                            }
                            _ => None,
                        }
                    };
                    let Some((mut fut, waker)) = taken else {
                        continue;
                    };
                    self.polls.set(self.polls.get() + 1);
                    let mut cx = Context::from_waker(&waker);
                    match fut.as_mut().poll(&mut cx) {
                        Poll::Ready(()) => {
                            // Free the slot: bump the generation so any waker
                            // still floating around for this task goes stale,
                            // then recycle the slot.
                            let mut tasks = self.tasks.borrow_mut();
                            let entry = &mut tasks[slot as usize];
                            entry.generation = entry.generation.wrapping_add(1);
                            entry.occupied = false;
                            drop(tasks);
                            self.free_slots.borrow_mut().push(slot);
                        }
                        Poll::Pending => {
                            self.tasks.borrow_mut()[slot as usize].fut = Some(fut);
                        }
                    }
                }
                None => {
                    // No runnable task: advance the clock to the next timer
                    // and fire every expired timer under one borrow.
                    let mut timers = self.timers.borrow_mut();
                    let Some(deadline) = timers.next_deadline() else {
                        return WindowPause::Blocked;
                    };
                    if let Some(limit) = limit {
                        if deadline >= limit {
                            return WindowPause::Blocked;
                        }
                    }
                    debug_assert!(deadline >= self.now_micros());
                    if deadline > self.now_micros() {
                        self.now_micros.set(deadline);
                        self.clock_advances.set(self.clock_advances.get() + 1);
                    }
                    let mut fired = self.fired.borrow_mut();
                    timers.expire(self.now_micros(), &mut fired);
                    drop(timers);
                    for entry in fired.drain(..) {
                        entry.waker.wake();
                    }
                }
            }
        }
    }
}

/// Everything the thread-local "current runtime" carries: the shard's
/// executor, run-wide metadata (seed, workers, topology), and — in
/// multi-worker mode — the shard's link to the barrier coordinator.
pub(crate) struct CurrentCtx {
    pub(crate) inner: Rc<RuntimeInner>,
    pub(crate) meta: Arc<RunMeta>,
    pub(crate) shard: Option<ShardLink>,
}

thread_local! {
    static CURRENT: RefCell<Option<CurrentCtx>> = const { RefCell::new(None) };
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Rc<RuntimeInner>) -> R) -> R {
    with_current_ctx(|ctx| f(&ctx.inner))
}

pub(crate) fn with_current_ctx<R>(f: impl FnOnce(&CurrentCtx) -> R) -> R {
    CURRENT.with(|cur| {
        let borrow = cur.borrow();
        let ctx = borrow.as_ref().expect(
            "geotp-simrt: no runtime is active on this thread; wrap the call in Runtime::block_on",
        );
        f(ctx)
    })
}

pub(crate) fn try_with_current_ctx<R>(f: impl FnOnce(&CurrentCtx) -> R) -> Option<R> {
    CURRENT.with(|cur| cur.borrow().as_ref().map(f))
}

pub(crate) struct CurrentGuard {
    prev: Option<CurrentCtx>,
}

impl CurrentGuard {
    pub(crate) fn enter(ctx: CurrentCtx) -> Self {
        CURRENT.with(|cur| {
            let mut slot = cur.borrow_mut();
            assert!(
                slot.is_none(),
                "geotp-simrt: nested Runtime::block_on is not supported"
            );
            let prev = slot.replace(ctx);
            CurrentGuard { prev }
        })
    }
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|cur| {
            *cur.borrow_mut() = self.prev.take();
        });
    }
}

/// A node-affine task registered on the builder, to be spawned at t=0 on
/// the node's shard (before the root future's first poll).
pub(crate) struct PendingSpawn {
    pub(crate) node: u32,
    pub(crate) thunk: Box<dyn FnOnce() + Send>,
}

enum Mode {
    /// One worker: the historical single-threaded executor.
    Single(Rc<RuntimeInner>),
    /// `workers > 1`: per-shard executors under the conservative barrier.
    Sharded {
        ran: bool,
        /// Per-shard metrics (index = shard) and the max shard clock,
        /// recorded once `block_on` returns.
        result: Option<(Vec<RunMetrics>, u64)>,
    },
}

/// The simulated-time runtime. Construct via [`Runtime::new`] (single
/// worker, no topology — the historical entry point) or through
/// [`crate::RuntimeBuilder`] for topology-aware, optionally multi-worker
/// execution, then call [`Runtime::block_on`] with the root future.
pub struct Runtime {
    meta: Arc<RunMeta>,
    pending: Vec<PendingSpawn>,
    mode: Mode,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime {
    /// Create a fresh single-worker runtime with the virtual clock at zero.
    ///
    /// Thin shim over [`crate::RuntimeBuilder`] kept for the existing call
    /// sites; equivalent to `RuntimeBuilder::new().build()`.
    pub fn new() -> Self {
        crate::RuntimeBuilder::new().build()
    }

    pub(crate) fn from_parts(meta: Arc<RunMeta>, pending: Vec<PendingSpawn>) -> Self {
        let mode = if meta.workers > 1 {
            Mode::Sharded {
                ran: false,
                result: None,
            }
        } else {
            Mode::Single(Rc::new(RuntimeInner::new()))
        };
        Self {
            meta,
            pending,
            mode,
        }
    }

    /// Current virtual time in microseconds since start. For multi-worker
    /// runs this is the maximum across shards, available once `block_on`
    /// returned.
    pub fn now_micros(&self) -> u64 {
        match &self.mode {
            Mode::Single(inner) => inner.now_micros(),
            Mode::Sharded { result, .. } => result.as_ref().map(|(_, now)| *now).unwrap_or(0),
        }
    }

    /// Counters accumulated so far (polls, spawns, timers, clock advances).
    /// For multi-worker runs the per-shard counters are summed, available
    /// once `block_on` returned.
    pub fn metrics(&self) -> RunMetrics {
        self.shard_metrics()
            .into_iter()
            .fold(RunMetrics::default(), |mut acc, m| {
                acc.merge(m);
                acc
            })
    }

    /// Per-shard counters, indexed by shard. In single-worker mode this is a
    /// one-element vector; in sharded mode it is available once `block_on`
    /// returned (empty before). The spread across shards is the load-balance
    /// signal the parallel bench gates on: `sum(polls) / max(polls)` bounds
    /// the achievable parallel speedup.
    pub fn shard_metrics(&self) -> Vec<RunMetrics> {
        match &self.mode {
            Mode::Single(inner) => vec![inner.metrics()],
            Mode::Sharded { result, .. } => {
                result.as_ref().map(|(m, _)| m.clone()).unwrap_or_default()
            }
        }
    }

    /// The number of worker shards this runtime executes on.
    pub fn workers(&self) -> usize {
        self.meta.workers
    }

    /// Drive `root` to completion, advancing virtual time as needed.
    ///
    /// Background tasks spawned with [`spawn`] keep running while the root is
    /// pending; once the root completes they are abandoned (dropped when the
    /// runtime is dropped), mirroring tokio's `block_on` semantics.
    ///
    /// # Panics
    ///
    /// Panics if the root future is still pending while no task is runnable
    /// and no timer is registered (a genuine deadlock in the simulated
    /// system), or if `block_on` is re-entered on the same thread. A
    /// multi-worker runtime additionally panics when `block_on` is called
    /// twice (per-shard state does not outlive the worker threads).
    pub fn block_on<F: Future>(&mut self, root: F) -> F::Output {
        let pending = std::mem::take(&mut self.pending);
        match &mut self.mode {
            Mode::Single(inner) => {
                let inner = Rc::clone(inner);
                let _guard = CurrentGuard::enter(CurrentCtx {
                    inner: Rc::clone(&inner),
                    meta: Arc::clone(&self.meta),
                    shard: None,
                });
                for hooks in &self.meta.shard_hooks {
                    (hooks.enter)(0);
                }
                // Node-affine tasks enter the ready queue ahead of the root,
                // matching the per-shard startup order of multi-worker runs.
                for spawn in pending {
                    (spawn.thunk)();
                }
                let mut root = Box::pin(root);
                let root_waker = inner.root_waker();
                inner.push_root_ready();
                let mut out = None;
                let mut root_ctx = Some(RootCtx {
                    fut: root.as_mut(),
                    waker: &root_waker,
                    out: &mut out,
                });
                match inner.run_window(None, &mut root_ctx, || false) {
                    WindowPause::RootDone => {
                        for hooks in self.meta.shard_hooks.iter().rev() {
                            (hooks.teardown)(0);
                        }
                        out.expect("root future completed")
                    }
                    WindowPause::Blocked => panic!(
                        "geotp-simrt: simulation deadlock at t={}us — the root task is \
                         pending but no task is runnable and no timer is registered",
                        inner.now_micros()
                    ),
                    WindowPause::Stopped => unreachable!("single mode never stops early"),
                }
            }
            Mode::Sharded { ran, result } => {
                assert!(
                    !*ran,
                    "geotp-simrt: a multi-worker Runtime supports exactly one block_on"
                );
                *ran = true;
                let (out, metrics, now) =
                    crate::shard::run_sharded(Arc::clone(&self.meta), pending, root);
                *result = Some((metrics, now));
                out
            }
        }
    }
}

/// Spawn a new asynchronous task onto the currently running runtime (the
/// calling thread's shard, in multi-worker mode).
///
/// The returned [`JoinHandle`] can be awaited for the task's output. Unlike
/// tokio, futures do not need to be `Send`: each shard is single-threaded.
///
/// # Panics
///
/// Panics if called outside [`Runtime::block_on`].
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let state = Rc::new(RefCell::new(JoinState::new()));
    let state_clone = Rc::clone(&state);
    with_current(|inner| {
        inner.spawn_inner(Box::pin(async move {
            let out = fut.await;
            JoinState::complete(&state_clone, out);
        }));
    });
    JoinHandle::new(state)
}

/// Current virtual time of the active runtime, as a [`SimInstant`].
pub(crate) fn current_now() -> SimInstant {
    with_current(|inner| SimInstant::from_micros(inner.now_micros()))
}

/// Like [`current_now`], but `None` when no runtime is active on this thread.
pub(crate) fn try_current_now() -> Option<SimInstant> {
    try_with_current_ctx(|ctx| SimInstant::from_micros(ctx.inner.now_micros()))
}

/// Register a wake-up at `deadline` (virtual) for `waker` on the active runtime.
pub(crate) fn current_register_timer(deadline: SimInstant, waker: Waker) {
    with_current(|inner| inner.register_timer(deadline.as_micros(), waker));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sleep, yield_now};
    use std::time::Duration;

    #[test]
    fn block_on_returns_value() {
        let mut rt = Runtime::new();
        let v = rt.block_on(async { 7 });
        assert_eq!(v, 7);
    }

    #[test]
    fn virtual_time_advances_with_sleep() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            sleep(Duration::from_millis(250)).await;
        });
        assert_eq!(rt.now_micros(), 250_000);
    }

    #[test]
    fn spawned_tasks_run_concurrently_in_virtual_time() {
        let mut rt = Runtime::new();
        let elapsed = rt.block_on(async {
            let start = crate::now();
            let a = spawn(async {
                sleep(Duration::from_millis(100)).await;
            });
            let b = spawn(async {
                sleep(Duration::from_millis(100)).await;
            });
            a.await;
            b.await;
            crate::now().duration_since(start)
        });
        // Two concurrent 100ms sleeps overlap: total virtual time is 100ms.
        assert_eq!(elapsed, Duration::from_millis(100));
    }

    #[test]
    fn sequential_sleeps_accumulate() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            sleep(Duration::from_millis(10)).await;
            sleep(Duration::from_millis(20)).await;
            sleep(Duration::from_millis(30)).await;
        });
        assert_eq!(rt.now_micros(), 60_000);
    }

    #[test]
    fn join_handle_returns_output() {
        let mut rt = Runtime::new();
        let out = rt.block_on(async {
            let h = spawn(async {
                sleep(Duration::from_millis(5)).await;
                "done"
            });
            h.await
        });
        assert_eq!(out, "done");
    }

    #[test]
    fn yield_now_reschedules_fairly() {
        let mut rt = Runtime::new();
        let order = rt.block_on(async {
            let log = Rc::new(RefCell::new(Vec::new()));
            let l1 = Rc::clone(&log);
            let l2 = Rc::clone(&log);
            let h1 = spawn(async move {
                for i in 0..3 {
                    l1.borrow_mut().push(format!("a{i}"));
                    yield_now().await;
                }
            });
            let h2 = spawn(async move {
                for i in 0..3 {
                    l2.borrow_mut().push(format!("b{i}"));
                    yield_now().await;
                }
            });
            h1.await;
            h2.await;
            Rc::try_unwrap(log).unwrap().into_inner()
        });
        // FIFO ready queue interleaves the two tasks deterministically.
        assert_eq!(order, vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn metrics_are_recorded() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            spawn(async {
                sleep(Duration::from_millis(1)).await;
            })
            .await;
        });
        let m = rt.metrics();
        assert!(m.polls >= 2);
        assert_eq!(m.tasks_spawned, 1);
        assert!(m.timers_registered >= 1);
        assert!(m.clock_advances >= 1);
    }

    #[test]
    #[should_panic(expected = "simulation deadlock")]
    fn deadlock_is_detected() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            // A future that is never woken.
            std::future::pending::<()>().await;
        });
    }

    #[test]
    fn background_task_abandoned_after_root_completes() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            spawn(async {
                sleep(Duration::from_secs(3600)).await;
            });
            sleep(Duration::from_millis(1)).await;
        });
        // Root returned after 1ms; the hour-long background sleep never ran to completion.
        assert_eq!(rt.now_micros(), 1_000);
    }

    #[test]
    fn determinism_same_program_same_schedule() {
        fn run_once() -> (u64, Vec<u32>) {
            let mut rt = Runtime::new();
            let log = rt.block_on(async {
                let log = Rc::new(RefCell::new(Vec::new()));
                let mut handles = Vec::new();
                for i in 0..10u32 {
                    let log = Rc::clone(&log);
                    handles.push(spawn(async move {
                        sleep(Duration::from_millis((10 - i) as u64)).await;
                        log.borrow_mut().push(i);
                    }));
                }
                for h in handles {
                    h.await;
                }
                Rc::try_unwrap(log).unwrap().into_inner()
            });
            (rt.now_micros(), log)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn slots_are_reused_without_cross_talk() {
        // Spawn waves of short-lived tasks so slots recycle, interleaved with
        // a long-lived task; generation checks must keep wakes routed to the
        // right occupant.
        let mut rt = Runtime::new();
        let total = rt.block_on(async {
            let counter = Rc::new(Cell::new(0u32));
            let c_long = Rc::clone(&counter);
            let long = spawn(async move {
                sleep(Duration::from_millis(50)).await;
                c_long.set(c_long.get() + 1_000);
            });
            for _wave in 0..10 {
                let mut handles = Vec::new();
                for _ in 0..8 {
                    let c = Rc::clone(&counter);
                    handles.push(spawn(async move {
                        sleep(Duration::from_millis(1)).await;
                        c.set(c.get() + 1);
                    }));
                }
                for h in handles {
                    h.await;
                }
            }
            long.await;
            counter.get()
        });
        assert_eq!(total, 1_080);
        // The slab stayed small: 8 concurrent short tasks + 1 long task fit
        // in at most a handful of slots despite 81 spawns.
        let m = rt.metrics();
        assert_eq!(m.tasks_spawned, 81);
    }

    #[test]
    fn spawning_from_inside_a_poll_runs_in_fifo_order() {
        let mut rt = Runtime::new();
        let order = rt.block_on(async {
            let log = Rc::new(RefCell::new(Vec::new()));
            let l = Rc::clone(&log);
            let outer = spawn(async move {
                let l_inner = Rc::clone(&l);
                l.borrow_mut().push("outer-start");
                // Spawned while `outer` is being polled: the slab must accept
                // the insert mid-poll (no deferred side channel).
                let inner = spawn(async move {
                    l_inner.borrow_mut().push("inner");
                });
                yield_now().await;
                inner.await;
                l.borrow_mut().push("outer-end");
            });
            outer.await;
            Rc::try_unwrap(log).unwrap().into_inner()
        });
        assert_eq!(order, vec!["outer-start", "inner", "outer-end"]);
    }
}
