//! Virtual time: instants and the `sleep` primitive.

use std::future::Future;
use std::ops::{Add, AddAssign, Sub};
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

use crate::executor::{current_now, current_register_timer};

/// A point in virtual time, measured in microseconds since the runtime started.
///
/// Mirrors `std::time::Instant` but is driven entirely by the simulated clock,
/// so arithmetic on it is exact and reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant {
    micros: u64,
}

impl SimInstant {
    /// The runtime's epoch (virtual time zero).
    pub const ZERO: SimInstant = SimInstant { micros: 0 };

    /// Construct from a raw microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        Self { micros }
    }

    /// Raw microsecond count since the runtime epoch.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Duration elapsed from `earlier` to `self`; zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimInstant) -> Duration {
        Duration::from_micros(self.micros.saturating_sub(earlier.micros))
    }

    /// Duration from this instant until the current virtual time.
    ///
    /// # Panics
    /// Panics if called outside a running [`crate::Runtime`].
    pub fn elapsed(self) -> Duration {
        now().duration_since(self)
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, dur: Duration) -> Option<SimInstant> {
        let extra: u64 = dur.as_micros().try_into().ok()?;
        self.micros.checked_add(extra).map(SimInstant::from_micros)
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, dur: Duration) -> SimInstant {
        let extra = dur.as_micros().min(u64::MAX as u128) as u64;
        SimInstant::from_micros(self.micros.saturating_sub(extra))
    }
}

impl Add<Duration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: Duration) -> SimInstant {
        self.checked_add(rhs)
            .expect("SimInstant overflow when adding Duration")
    }
}

impl AddAssign<Duration> for SimInstant {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = Duration;
    fn sub(self, rhs: SimInstant) -> Duration {
        self.duration_since(rhs)
    }
}

impl Sub<Duration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: Duration) -> SimInstant {
        self.saturating_sub(rhs)
    }
}

/// Current virtual time of the active runtime.
///
/// # Panics
/// Panics if called outside [`crate::Runtime::block_on`].
pub fn now() -> SimInstant {
    current_now()
}

/// Current virtual time of the active runtime, or `None` when no runtime is
/// running on this thread (e.g. inspecting collected telemetry after
/// `block_on` returned).
#[deprecated(
    since = "0.6.0",
    note = "use geotp_simrt::try_handle().map(|h| h.now()) — the RuntimeHandle \
            also carries the run seed, shard placement and topology"
)]
pub fn try_now() -> Option<SimInstant> {
    crate::executor::try_current_now()
}

/// Future returned by [`sleep`] / [`sleep_until`].
#[derive(Debug)]
pub struct Sleep {
    deadline: Option<SimInstant>,
    requested: Duration,
    /// Whether a timer has already been registered for this sleep. A sleep
    /// registers exactly one timer: combinators such as `join_all` re-poll
    /// pending children on every wake-up, and re-registering on each poll
    /// would let stale duplicate timers feed further spurious wake-ups — a
    /// quadratic poll storm over long simulations. Futures never migrate
    /// between tasks in this runtime, so the first registered waker stays
    /// valid.
    registered: bool,
}

impl Sleep {
    /// The absolute deadline, once the sleep has been polled at least once.
    pub fn deadline(&self) -> Option<SimInstant> {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let deadline = match self.deadline {
            Some(d) => d,
            None => {
                let d = now() + self.requested;
                self.deadline = Some(d);
                d
            }
        };
        if now() >= deadline {
            Poll::Ready(())
        } else {
            if !self.registered {
                current_register_timer(deadline, cx.waker().clone());
                self.registered = true;
            }
            Poll::Pending
        }
    }
}

/// Sleep for `dur` of virtual time. The deadline is captured lazily at the
/// first poll, matching tokio's behaviour.
pub fn sleep(dur: Duration) -> Sleep {
    Sleep {
        deadline: None,
        requested: dur,
        registered: false,
    }
}

/// Sleep until the given virtual instant (resolves immediately if already past).
pub fn sleep_until(deadline: SimInstant) -> Sleep {
    Sleep {
        deadline: Some(deadline),
        requested: Duration::ZERO,
        registered: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn instant_arithmetic() {
        let a = SimInstant::from_micros(1_000);
        let b = a + Duration::from_millis(5);
        assert_eq!(b.as_micros(), 6_000);
        assert_eq!(b - a, Duration::from_millis(5));
        assert_eq!(a - b, Duration::ZERO); // saturating
        assert_eq!(b - Duration::from_millis(10), SimInstant::ZERO);
    }

    #[test]
    fn sleep_until_past_is_immediate() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            sleep(Duration::from_millis(10)).await;
            let before = now();
            sleep_until(SimInstant::from_micros(1)).await;
            assert_eq!(now(), before);
        });
    }

    #[test]
    fn zero_sleep_completes_without_advancing() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            sleep(Duration::ZERO).await;
        });
        assert_eq!(rt.now_micros(), 0);
    }

    #[test]
    fn elapsed_tracks_virtual_time() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let start = now();
            sleep(Duration::from_micros(1234)).await;
            assert_eq!(start.elapsed(), Duration::from_micros(1234));
        });
    }
}
