//! Unbounded multi-producer single-consumer channel.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Shared<T> {
    queue: VecDeque<T>,
    recv_waker: Option<Waker>,
    sender_count: usize,
    receiver_alive: bool,
}

/// Error returned by [`Sender::send`] when the receiver has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mpsc receiver dropped; message could not be delivered")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Sending half of an unbounded channel (cloneable).
pub struct Sender<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(Shared {
        queue: VecDeque::new(),
        recv_waker: None,
        sender_count: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            shared: Rc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.borrow_mut().sender_count += 1;
        Sender {
            shared: Rc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut shared = self.shared.borrow_mut();
            shared.sender_count -= 1;
            if shared.sender_count == 0 {
                shared.recv_waker.take()
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue a message; wakes the receiver if it is waiting.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let waker = {
            let mut shared = self.shared.borrow_mut();
            if !shared.receiver_alive {
                return Err(SendError(value));
            }
            shared.queue.push_back(value);
            shared.recv_waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }

    /// Whether the receiver has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.shared.borrow().receiver_alive
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.borrow_mut().receiver_alive = false;
    }
}

impl<T> Receiver<T> {
    /// Receive the next message; resolves to `None` once all senders are
    /// dropped and the queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.shared.borrow_mut().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.borrow().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut shared = self.receiver.shared.borrow_mut();
        if let Some(v) = shared.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if shared.sender_count == 0 {
            return Poll::Ready(None);
        }
        shared.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sleep, spawn, Runtime};
    use std::time::Duration;

    #[test]
    fn messages_arrive_in_order() {
        let mut rt = Runtime::new();
        let got = rt.block_on(async {
            let (tx, mut rx) = unbounded();
            spawn(async move {
                for i in 0..5 {
                    sleep(Duration::from_millis(1)).await;
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_returns_none_when_all_senders_dropped() {
        let mut rt = Runtime::new();
        let got = rt.block_on(async {
            let (tx, mut rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(7).unwrap();
            drop(tx2);
            (rx.recv().await, rx.recv().await)
        });
        assert_eq!(got, (Some(7), None));
    }

    #[test]
    fn send_after_receiver_dropped_errors() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.is_closed());
            assert!(tx.send(1).is_err());
        });
    }

    #[test]
    fn try_recv_and_len() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (tx, mut rx) = unbounded();
            assert!(rx.is_empty());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Some(1));
            assert_eq!(rx.try_recv(), Some(2));
            assert_eq!(rx.try_recv(), None);
        });
    }
}
