//! Counting semaphore with FIFO fairness, used for connection-pool admission.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct State {
    permits: usize,
    waiters: VecDeque<(usize, Waker)>,
    granted: Vec<usize>,
    next_waiter_id: usize,
    closed: bool,
}

/// An async counting semaphore. Permits are released when the
/// [`SemaphorePermit`] guard is dropped.
pub struct Semaphore {
    state: Rc<RefCell<State>>,
}

/// Error returned by [`Semaphore::acquire`] after [`Semaphore::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireError;

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semaphore has been closed")
    }
}

impl std::error::Error for AcquireError {}

/// RAII guard returned by a successful acquire; releases its permit on drop.
pub struct SemaphorePermit {
    state: Rc<RefCell<State>>,
}

impl Drop for SemaphorePermit {
    fn drop(&mut self) {
        release_one(&self.state);
    }
}

fn release_one(state: &Rc<RefCell<State>>) {
    let waker = {
        let mut s = state.borrow_mut();
        if let Some((id, waker)) = s.waiters.pop_front() {
            s.granted.push(id);
            Some(waker)
        } else {
            s.permits += 1;
            None
        }
    };
    if let Some(w) = waker {
        w.wake();
    }
}

impl Semaphore {
    /// Create a semaphore with `permits` available permits.
    pub fn new(permits: usize) -> Self {
        Self {
            state: Rc::new(RefCell::new(State {
                permits,
                waiters: VecDeque::new(),
                granted: Vec::new(),
                next_waiter_id: 0,
                closed: false,
            })),
        }
    }

    /// Number of currently available permits.
    pub fn available_permits(&self) -> usize {
        self.state.borrow().permits
    }

    /// Add `n` new permits to the semaphore.
    pub fn add_permits(&self, n: usize) {
        for _ in 0..n {
            release_one(&self.state);
        }
    }

    /// Close the semaphore: pending and future acquires fail.
    pub fn close(&self) {
        let wakers: Vec<Waker> = {
            let mut s = self.state.borrow_mut();
            s.closed = true;
            s.waiters.drain(..).map(|(_, w)| w).collect()
        };
        for w in wakers {
            w.wake();
        }
    }

    /// Acquire one permit, waiting (FIFO) if none is available.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            state: Rc::clone(&self.state),
            waiter_id: None,
        }
    }

    /// Try to acquire one permit without waiting.
    pub fn try_acquire(&self) -> Option<SemaphorePermit> {
        let mut s = self.state.borrow_mut();
        if s.closed || s.permits == 0 {
            return None;
        }
        s.permits -= 1;
        drop(s);
        Some(SemaphorePermit {
            state: Rc::clone(&self.state),
        })
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    state: Rc<RefCell<State>>,
    waiter_id: Option<usize>,
}

impl Future for Acquire {
    type Output = Result<SemaphorePermit, AcquireError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.borrow_mut();
        if s.closed {
            return Poll::Ready(Err(AcquireError));
        }
        match self.waiter_id {
            None => {
                if s.permits > 0 {
                    s.permits -= 1;
                    drop(s);
                    return Poll::Ready(Ok(SemaphorePermit {
                        state: Rc::clone(&self.state),
                    }));
                }
                let id = s.next_waiter_id;
                s.next_waiter_id += 1;
                s.waiters.push_back((id, cx.waker().clone()));
                drop(s);
                self.waiter_id = Some(id);
                Poll::Pending
            }
            Some(id) => {
                if let Some(pos) = s.granted.iter().position(|g| *g == id) {
                    s.granted.swap_remove(pos);
                    drop(s);
                    return Poll::Ready(Ok(SemaphorePermit {
                        state: Rc::clone(&self.state),
                    }));
                }
                if let Some(entry) = s.waiters.iter_mut().find(|(wid, _)| *wid == id) {
                    entry.1 = cx.waker().clone();
                }
                Poll::Pending
            }
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(id) = self.waiter_id {
            let mut s = self.state.borrow_mut();
            s.waiters.retain(|(wid, _)| *wid != id);
            if let Some(pos) = s.granted.iter().position(|g| *g == id) {
                // We were granted a permit but never consumed it: hand it back.
                s.granted.swap_remove(pos);
                drop(s);
                release_one(&self.state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{now, sleep, spawn, Runtime};
    use std::time::Duration;

    #[test]
    fn limits_concurrency() {
        let mut rt = Runtime::new();
        let elapsed_ms = rt.block_on(async {
            let sem = Rc::new(Semaphore::new(2));
            let start = now();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let sem = Rc::clone(&sem);
                handles.push(spawn(async move {
                    let _permit = sem.acquire().await.unwrap();
                    sleep(Duration::from_millis(10)).await;
                }));
            }
            for h in handles {
                h.await;
            }
            now().duration_since(start).as_millis()
        });
        // 4 jobs of 10ms with concurrency 2 => 20ms of virtual time.
        assert_eq!(elapsed_ms, 20);
    }

    #[test]
    fn try_acquire_and_add_permits() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let sem = Semaphore::new(1);
            let p = sem.try_acquire().unwrap();
            assert!(sem.try_acquire().is_none());
            drop(p);
            assert!(sem.try_acquire().is_some()); // dropped immediately again
            sem.add_permits(2);
            assert_eq!(sem.available_permits(), 3);
        });
    }

    #[test]
    fn close_fails_pending_acquires() {
        let mut rt = Runtime::new();
        let res = rt.block_on(async {
            let sem = Rc::new(Semaphore::new(0));
            let sem2 = Rc::clone(&sem);
            let h = spawn(async move { sem2.acquire().await });
            sleep(Duration::from_millis(1)).await;
            sem.close();
            h.await
        });
        assert!(res.is_err());
    }
}
