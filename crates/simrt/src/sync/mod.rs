//! Asynchronous coordination primitives for the simulated runtime.
//!
//! These mirror the tokio primitives the middleware would use in a real
//! deployment: one-shot channels for request/response RPC, unbounded mpsc
//! channels for server mailboxes, [`Notify`] for event signalling and
//! [`Semaphore`] for connection-pool style admission.

pub mod mpsc;
pub mod notify;
pub mod oneshot;
pub mod semaphore;

pub use notify::Notify;
pub use semaphore::{AcquireError, Semaphore, SemaphorePermit};
