//! Event notification primitive, modelled on `tokio::sync::Notify`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

#[derive(Default)]
struct State {
    /// One stored permit: a `notify_one` with no waiter is remembered so the
    /// next `notified().await` returns immediately.
    permit: bool,
    waiters: VecDeque<(usize, Waker)>,
    /// Waiter ids that have been explicitly woken and should complete.
    woken: Vec<usize>,
    next_waiter_id: usize,
}

/// Notifies one or many waiting tasks.
#[derive(Default)]
pub struct Notify {
    state: Rc<RefCell<State>>,
}

impl Notify {
    /// Create a new `Notify` with no stored permit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wake a single waiting task, or store a permit if none is waiting.
    pub fn notify_one(&self) {
        let waker = {
            let mut s = self.state.borrow_mut();
            if let Some((id, waker)) = s.waiters.pop_front() {
                s.woken.push(id);
                Some(waker)
            } else {
                s.permit = true;
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Wake every task currently waiting (does not store a permit).
    pub fn notify_waiters(&self) {
        let wakers: Vec<Waker> = {
            let mut s = self.state.borrow_mut();
            let drained: Vec<(usize, Waker)> = s.waiters.drain(..).collect();
            for (id, _) in &drained {
                s.woken.push(*id);
            }
            drained.into_iter().map(|(_, w)| w).collect()
        };
        for w in wakers {
            w.wake();
        }
    }

    /// Wait for a notification.
    pub fn notified(&self) -> Notified {
        Notified {
            state: Rc::clone(&self.state),
            waiter_id: None,
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    state: Rc<RefCell<State>>,
    waiter_id: Option<usize>,
}

impl Future for Notified {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.state.borrow_mut();
        match self.waiter_id {
            None => {
                if s.permit {
                    s.permit = false;
                    return Poll::Ready(());
                }
                let id = s.next_waiter_id;
                s.next_waiter_id += 1;
                s.waiters.push_back((id, cx.waker().clone()));
                drop(s);
                self.waiter_id = Some(id);
                Poll::Pending
            }
            Some(id) => {
                if let Some(pos) = s.woken.iter().position(|w| *w == id) {
                    s.woken.swap_remove(pos);
                    return Poll::Ready(());
                }
                // Refresh the stored waker in case the future moved tasks.
                if let Some(entry) = s.waiters.iter_mut().find(|(wid, _)| *wid == id) {
                    entry.1 = cx.waker().clone();
                }
                Poll::Pending
            }
        }
    }
}

impl Drop for Notified {
    fn drop(&mut self) {
        if let Some(id) = self.waiter_id {
            let mut s = self.state.borrow_mut();
            s.waiters.retain(|(wid, _)| *wid != id);
            // If we were woken but never polled to completion, pass the wake on
            // to the next waiter so the notification is not lost.
            if let Some(pos) = s.woken.iter().position(|w| *w == id) {
                s.woken.swap_remove(pos);
                if let Some((next_id, waker)) = s.waiters.pop_front() {
                    s.woken.push(next_id);
                    drop(s);
                    waker.wake();
                } else {
                    s.permit = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sleep, spawn, Runtime};
    use std::cell::Cell;
    use std::time::Duration;

    #[test]
    fn stored_permit_completes_immediately() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let n = Notify::new();
            n.notify_one();
            n.notified().await; // must not hang
        });
        assert_eq!(rt.now_micros(), 0);
    }

    #[test]
    fn notify_one_wakes_single_waiter() {
        let mut rt = Runtime::new();
        let woken = rt.block_on(async {
            let n = Rc::new(Notify::new());
            let count = Rc::new(Cell::new(0u32));
            for _ in 0..3 {
                let n = Rc::clone(&n);
                let count = Rc::clone(&count);
                spawn(async move {
                    n.notified().await;
                    count.set(count.get() + 1);
                });
            }
            sleep(Duration::from_millis(1)).await;
            n.notify_one();
            sleep(Duration::from_millis(1)).await;
            count.get()
        });
        assert_eq!(woken, 1);
    }

    #[test]
    fn cancelled_waiter_leaves_no_dangling_entry() {
        // A task awaiting `notified()` is cancelled (here: by a timeout racing
        // it, the same shape an injected crash produces). Its queue entry must
        // be removed on drop, and a later `notify_one` must wake the *other*
        // waiter instead of being swallowed by the dead one.
        let mut rt = Runtime::new();
        let woken = rt.block_on(async {
            let n = Rc::new(Notify::new());
            let n1 = Rc::clone(&n);
            // First waiter: cancelled after 5ms by the timeout.
            let cancelled = spawn(async move {
                crate::timeout(Duration::from_millis(5), n1.notified())
                    .await
                    .is_ok()
            });
            let n2 = Rc::clone(&n);
            let count = Rc::new(Cell::new(0u32));
            let c2 = Rc::clone(&count);
            spawn(async move {
                n2.notified().await;
                c2.set(c2.get() + 1);
            });
            sleep(Duration::from_millis(10)).await;
            assert!(!cancelled.await, "first waiter must have timed out");
            assert_eq!(n.state.borrow().waiters.len(), 1, "dead entry removed");
            n.notify_one();
            sleep(Duration::from_millis(1)).await;
            assert!(n.state.borrow().waiters.is_empty());
            assert!(n.state.borrow().woken.is_empty(), "no stale woken ids");
            count.get()
        });
        assert_eq!(woken, 1);
    }

    #[test]
    fn wake_passed_on_when_woken_waiter_is_dropped_before_poll() {
        // A waiter is woken by `notify_one` but its future is dropped before
        // it gets polled again (the owning task was cancelled in the same
        // virtual instant). The notification must not be lost: it moves to the
        // next waiter, or becomes a stored permit when none is queued.
        let mut rt = Runtime::new();
        rt.block_on(async {
            let n = Rc::new(Notify::new());
            let mut first = Box::pin(n.notified());
            // Register the waiter.
            assert!(
                crate::race(&mut first, std::future::ready(())).await == crate::Either::Right(())
            );
            n.notify_one();
            // Dropped while "woken but not yet re-polled".
            drop(first);
            assert!(n.state.borrow().woken.is_empty());
            // The wake survived as the stored permit.
            n.notified().await;
        });
        assert_eq!(rt.now_micros(), 0);
    }

    #[test]
    fn notify_waiters_wakes_all_current_waiters() {
        let mut rt = Runtime::new();
        let woken = rt.block_on(async {
            let n = Rc::new(Notify::new());
            let count = Rc::new(Cell::new(0u32));
            for _ in 0..4 {
                let n = Rc::clone(&n);
                let count = Rc::clone(&count);
                spawn(async move {
                    n.notified().await;
                    count.set(count.get() + 1);
                });
            }
            sleep(Duration::from_millis(1)).await;
            n.notify_waiters();
            sleep(Duration::from_millis(1)).await;
            // A waiter registering after notify_waiters must not be woken.
            let n2 = Rc::clone(&n);
            spawn(async move {
                n2.notified().await;
                unreachable!("late waiter must not be notified");
            });
            sleep(Duration::from_millis(1)).await;
            count.get()
        });
        assert_eq!(woken, 4);
    }
}
