//! One-shot channel: send exactly one value from one task to another.
//!
//! Besides the plain [`channel`] constructor there is a [`Pool`] that recycles
//! the channel's shared node across uses. High-rate callers that create one
//! channel per event (the lock manager creates one per *contended* lock
//! acquisition) otherwise pay an `Rc` allocation and deallocation per channel;
//! with a pool the steady state allocates nothing.

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Shared<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_dropped: bool,
    receiver_dropped: bool,
}

impl<T> Shared<T> {
    fn fresh() -> Self {
        Self {
            value: None,
            waker: None,
            sender_dropped: false,
            receiver_dropped: false,
        }
    }
}

type Node<T> = Rc<RefCell<Shared<T>>>;
type FreeList<T> = Rc<RefCell<Vec<Node<T>>>>;

/// Upper bound on nodes a [`Pool`] keeps around. Beyond this, surplus nodes
/// are simply dropped; the bound only exists so a one-off burst of contention
/// cannot pin memory forever.
const POOL_MAX: usize = 256;

/// A recycling allocator for one-shot channel nodes.
///
/// [`Pool::channel`] behaves exactly like [`channel`], except that the shared
/// node is taken from (and, when both halves are gone, returned to) a free
/// list owned by the pool. Nodes are recycled only once the *last* half drops,
/// so a pooled channel can never observe another use's state.
pub struct Pool<T> {
    free: FreeList<T>,
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Pool<T> {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self {
            free: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Number of nodes currently cached.
    pub fn cached(&self) -> usize {
        self.free.borrow().len()
    }

    /// Create a channel whose node is recycled through this pool.
    pub fn channel(&self) -> (Sender<T>, Receiver<T>) {
        let shared = match self.free.borrow_mut().pop() {
            Some(node) => {
                *node.borrow_mut() = Shared::fresh();
                node
            }
            None => Rc::new(RefCell::new(Shared::fresh())),
        };
        (
            Sender {
                shared: Rc::clone(&shared),
                sent: false,
                pool: Some(Rc::clone(&self.free)),
            },
            Receiver {
                shared,
                pool: Some(Rc::clone(&self.free)),
            },
        )
    }
}

/// Return `shared` to `pool` if the caller is the last half alive. Called from
/// both halves' `Drop` impls; whichever drops second sees a strong count of 1
/// (its own reference) and recycles the node.
fn recycle<T>(pool: &Option<FreeList<T>>, shared: &Node<T>) {
    let Some(free) = pool else { return };
    if Rc::strong_count(shared) == 1 {
        let mut free = free.borrow_mut();
        if free.len() < POOL_MAX {
            free.push(Rc::clone(shared));
        }
    }
}

/// Sending half; consumed by [`Sender::send`].
pub struct Sender<T> {
    shared: Rc<RefCell<Shared<T>>>,
    sent: bool,
    pool: Option<FreeList<T>>,
}

/// Receiving half; awaiting it yields `Result<T, RecvError>`.
pub struct Receiver<T> {
    shared: Rc<RefCell<Shared<T>>>,
    pool: Option<FreeList<T>>,
}

/// Error returned when the sender was dropped without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oneshot sender dropped without sending a value")
    }
}

impl std::error::Error for RecvError {}

/// Create a new one-shot channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(Shared {
        value: None,
        waker: None,
        sender_dropped: false,
        receiver_dropped: false,
    }));
    (
        Sender {
            shared: Rc::clone(&shared),
            sent: false,
            pool: None,
        },
        Receiver { shared, pool: None },
    )
}

impl<T> Sender<T> {
    /// Send `value` to the receiver. Returns `Err(value)` if the receiver was
    /// already dropped.
    pub fn send(mut self, value: T) -> Result<(), T> {
        let waker = {
            let mut shared = self.shared.borrow_mut();
            if shared.receiver_dropped {
                return Err(value);
            }
            shared.value = Some(value);
            shared.waker.take()
        };
        self.sent = true;
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }

    /// Whether the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        self.shared.borrow().receiver_dropped
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if !self.sent {
            let waker = {
                let mut shared = self.shared.borrow_mut();
                shared.sender_dropped = true;
                shared.waker.take()
            };
            if let Some(w) = waker {
                w.wake();
            }
        }
        recycle(&self.pool, &self.shared);
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.borrow_mut().receiver_dropped = true;
        recycle(&self.pool, &self.shared);
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut shared = self.shared.borrow_mut();
        if let Some(v) = shared.value.take() {
            return Poll::Ready(Ok(v));
        }
        if shared.sender_dropped {
            return Poll::Ready(Err(RecvError));
        }
        shared.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sleep, spawn, Runtime};
    use std::time::Duration;

    #[test]
    fn send_then_receive() {
        let mut rt = Runtime::new();
        let v = rt.block_on(async {
            let (tx, rx) = channel();
            spawn(async move {
                sleep(Duration::from_millis(3)).await;
                tx.send(99).unwrap();
            });
            rx.await.unwrap()
        });
        assert_eq!(v, 99);
    }

    #[test]
    fn dropped_sender_yields_error() {
        let mut rt = Runtime::new();
        let res = rt.block_on(async {
            let (tx, rx) = channel::<u8>();
            drop(tx);
            rx.await
        });
        assert_eq!(res, Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (tx, rx) = channel::<u8>();
            drop(rx);
            assert!(tx.is_closed());
            assert_eq!(tx.send(1), Err(1));
        });
    }

    #[test]
    fn pooled_channels_recycle_their_node() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let pool = Pool::new();
            let (tx, rx) = pool.channel();
            tx.send(5).unwrap();
            assert_eq!(rx.await, Ok(5));
            assert_eq!(pool.cached(), 1, "node returned after both halves died");
            // The recycled node starts from a clean slate.
            let (tx2, rx2) = pool.channel();
            assert_eq!(pool.cached(), 0);
            tx2.send(6).unwrap();
            assert_eq!(rx2.await, Ok(6));
            assert_eq!(pool.cached(), 1);
        });
    }

    #[test]
    fn pooled_channel_recycles_on_abandoned_receiver() {
        // Timeout path: the receiver is dropped first, the sender later.
        let mut rt = Runtime::new();
        rt.block_on(async {
            let pool = Pool::new();
            let (tx, rx) = pool.channel();
            drop(rx);
            assert_eq!(pool.cached(), 0, "sender still alive");
            assert_eq!(tx.send(9), Err(9));
            assert_eq!(pool.cached(), 1);
            // And the reverse order: sender dropped without sending.
            let (tx2, rx2) = pool.channel();
            drop(tx2);
            assert_eq!(rx2.await, Err(RecvError));
            assert_eq!(pool.cached(), 1);
        });
    }

    #[test]
    fn pool_is_bounded() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let pool = Pool::<u8>::new();
            let channels: Vec<_> = (0..(POOL_MAX + 50)).map(|_| pool.channel()).collect();
            drop(channels);
            assert_eq!(pool.cached(), POOL_MAX);
        });
    }
}
