//! One-shot channel: send exactly one value from one task to another.

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Shared<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_dropped: bool,
    receiver_dropped: bool,
}

/// Sending half; consumed by [`Sender::send`].
pub struct Sender<T> {
    shared: Rc<RefCell<Shared<T>>>,
    sent: bool,
}

/// Receiving half; awaiting it yields `Result<T, RecvError>`.
pub struct Receiver<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// Error returned when the sender was dropped without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oneshot sender dropped without sending a value")
    }
}

impl std::error::Error for RecvError {}

/// Create a new one-shot channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(Shared {
        value: None,
        waker: None,
        sender_dropped: false,
        receiver_dropped: false,
    }));
    (
        Sender {
            shared: Rc::clone(&shared),
            sent: false,
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send `value` to the receiver. Returns `Err(value)` if the receiver was
    /// already dropped.
    pub fn send(mut self, value: T) -> Result<(), T> {
        let waker = {
            let mut shared = self.shared.borrow_mut();
            if shared.receiver_dropped {
                return Err(value);
            }
            shared.value = Some(value);
            shared.waker.take()
        };
        self.sent = true;
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }

    /// Whether the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        self.shared.borrow().receiver_dropped
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.sent {
            return;
        }
        let waker = {
            let mut shared = self.shared.borrow_mut();
            shared.sender_dropped = true;
            shared.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.borrow_mut().receiver_dropped = true;
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut shared = self.shared.borrow_mut();
        if let Some(v) = shared.value.take() {
            return Poll::Ready(Ok(v));
        }
        if shared.sender_dropped {
            return Poll::Ready(Err(RecvError));
        }
        shared.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sleep, spawn, Runtime};
    use std::time::Duration;

    #[test]
    fn send_then_receive() {
        let mut rt = Runtime::new();
        let v = rt.block_on(async {
            let (tx, rx) = channel();
            spawn(async move {
                sleep(Duration::from_millis(3)).await;
                tx.send(99).unwrap();
            });
            rx.await.unwrap()
        });
        assert_eq!(v, 99);
    }

    #[test]
    fn dropped_sender_yields_error() {
        let mut rt = Runtime::new();
        let res = rt.block_on(async {
            let (tx, rx) = channel::<u8>();
            drop(tx);
            rx.await
        });
        assert_eq!(res, Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (tx, rx) = channel::<u8>();
            drop(rx);
            assert!(tx.is_closed());
            assert_eq!(tx.send(1), Err(1));
        });
    }
}
