//! The topology-aware front door: [`RuntimeBuilder`].
//!
//! ```
//! use std::time::Duration;
//! use geotp_simrt::RuntimeBuilder;
//!
//! let mut builder = RuntimeBuilder::new()
//!     .node("coord0")
//!     .node("ds1")
//!     .link("coord0", "ds1", Duration::from_millis(27))
//!     .workers(1)
//!     .seed(42);
//! let (tx, rx) = builder.mailbox::<u32>("ds1");
//! let mut rt = builder
//!     .spawn_node("ds1", move || async move {
//!         let mailbox = rx.bind();
//!         let msg = mailbox.recv().await;
//!         assert_eq!(msg.payload, 7);
//!     })
//!     .build();
//! rt.block_on(async move {
//!     let tx = tx.bind_src("coord0");
//!     tx.send(13_500, 7); // one-way WAN latency, in virtual µs
//!     geotp_simrt::sleep(Duration::from_millis(20)).await;
//! });
//! ```

use std::future::Future;
use std::sync::Arc;
use std::time::Duration;

use crate::executor::{PendingSpawn, Runtime};
use crate::mailbox::{MailboxSender, MailboxToken};
use crate::topology::{build_lookahead, RunMeta, ShardHooks, Topology};

/// Builder for a [`Runtime`]: declare the cluster's nodes and links, choose
/// the worker count and seed, register node-affine tasks and mailboxes, then
/// [`RuntimeBuilder::build`].
///
/// With `workers(1)` (the default) the runtime is the classic single-threaded
/// discrete-event executor; the topology is carried as metadata only, so the
/// schedule is byte-identical with or without node/link declarations. With
/// `workers(n)` nodes are partitioned across `n` shards (round-robin in
/// declaration order unless pinned via [`RuntimeBuilder::assign`]) and the
/// declared link latencies become the conservative lookahead of the barrier
/// protocol in [`crate::shard`].
pub struct RuntimeBuilder {
    topology: Topology,
    pinned: Vec<bool>,
    workers: usize,
    seed: u64,
    pending: Vec<PendingSpawn>,
    next_mailbox: u64,
    shard_hooks: Vec<ShardHooks>,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeBuilder {
    pub fn new() -> Self {
        Self {
            topology: Topology::default(),
            pinned: Vec::new(),
            workers: 1,
            seed: 0,
            pending: Vec::new(),
            next_mailbox: 0,
            shard_hooks: Vec::new(),
        }
    }

    /// Like [`RuntimeBuilder::new`], but the worker count defaults from the
    /// `GEOTP_WORKERS` environment variable (unset or invalid → 1). The
    /// standard entry point for harnesses that should honour the CI
    /// worker-count matrix.
    pub fn from_env() -> Self {
        let workers = std::env::var("GEOTP_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or(1);
        Self::new().workers(workers)
    }

    fn intern(&mut self, name: &str) -> u32 {
        let idx = self.topology.add_node(name);
        if idx as usize == self.pinned.len() {
            self.pinned.push(false);
        }
        idx
    }

    /// Declare a node (data source, coordinator, client driver…). Declaring
    /// the same name twice is idempotent; declaration order determines the
    /// default shard placement.
    pub fn node(mut self, name: &str) -> Self {
        self.intern(name);
        self
    }

    /// Declare a symmetric link between two nodes with round-trip time
    /// `rtt`. Auto-declares unknown endpoints. The link's one-way latency
    /// (floored at 1µs) bounds how early messages can cross between the
    /// endpoints' shards.
    pub fn link(mut self, a: &str, b: &str, rtt: Duration) -> Self {
        let a = self.intern(a);
        let b = self.intern(b);
        self.topology.add_link(a, b, rtt.as_micros() as u64);
        self
    }

    /// Pin `node` to a specific worker shard, overriding round-robin
    /// placement. Useful for keeping chatty zero-latency neighbours
    /// co-resident.
    pub fn assign(mut self, node: &str, shard: u32) -> Self {
        let idx = self.intern(node);
        self.topology.set_shard(idx, shard);
        self.pinned[idx as usize] = true;
        self
    }

    /// Number of worker shards. `1` (the default) is the historical
    /// single-threaded executor.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "workers must be >= 1");
        self.workers = workers;
        self
    }

    /// Root seed for the run; per-component RNG streams derive from it via
    /// [`crate::RuntimeHandle::stream_seed`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Register a task with affinity to `node`: at start-of-run it is
    /// spawned on the node's shard, before the root future's first poll,
    /// in declaration order. The closure runs on the shard's thread, so the
    /// future it returns may freely hold `Rc`/`RefCell` state created there.
    pub fn spawn_node<F, Fut>(mut self, node: &str, f: F) -> Self
    where
        F: FnOnce() -> Fut + Send + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        let node = self.intern(node);
        self.pending.push(PendingSpawn {
            node,
            thunk: Box::new(move || {
                drop(crate::spawn(f()));
            }),
        });
        self
    }

    /// Register a per-shard lifecycle hook pair. `enter(shard)` runs on each
    /// shard's thread after the runtime context is active but before any
    /// node-affine task (or the root future) is polled; `teardown(shard)`
    /// runs on the same thread once the shard's event loop has finished,
    /// while its thread-local state is still alive. Hooks run strictly
    /// outside the event loop — they see virtual time frozen and cannot
    /// perturb the deterministic schedule.
    ///
    /// The canonical use is per-shard telemetry collection: install a fresh
    /// thread-local collector on enter, deposit it into a shared merge sink
    /// on teardown (see `geotp_telemetry`'s `RuntimeBuilderTelemetryExt`).
    /// Hooks fire once per `block_on`; runtimes using them should be driven
    /// by a single `block_on` call.
    pub fn shard_scope(
        mut self,
        enter: impl Fn(u32) + Send + Sync + 'static,
        teardown: impl Fn(u32) + Send + Sync + 'static,
    ) -> Self {
        self.shard_hooks.push(ShardHooks {
            enter: Arc::new(enter),
            teardown: Arc::new(teardown),
        });
        self
    }

    /// Allocate a mailbox owned by `node`. Returns the `Send + Clone`
    /// sending half and the one-shot token the owning task uses to
    /// [`MailboxToken::bind`] the receiving half on its shard. (`&mut self`
    /// so handles can be captured by later `spawn_node` closures.)
    pub fn mailbox<T: Send + 'static>(
        &mut self,
        node: &str,
    ) -> (MailboxSender<T>, MailboxToken<T>) {
        let owner = self.intern(node);
        let id = self.next_mailbox;
        self.next_mailbox += 1;
        (MailboxSender::new(id, owner), MailboxToken::new(id, owner))
    }

    /// Finalize shard placement and produce the [`Runtime`].
    pub fn build(mut self) -> Runtime {
        self.topology
            .assign_round_robin(self.workers as u32, &self.pinned);
        for (i, &pinned) in self.pinned.iter().enumerate() {
            if pinned {
                let shard = self.topology.shard_of(i as u32);
                assert!(
                    (shard as usize) < self.workers,
                    "node '{}' pinned to shard {shard} but workers = {}",
                    self.topology.node_name(i as u32),
                    self.workers
                );
            }
        }
        let lookahead = build_lookahead(&self.topology, self.workers);
        let meta = Arc::new(RunMeta {
            seed: self.seed,
            workers: self.workers,
            topology: self.topology,
            lookahead,
            shard_hooks: self.shard_hooks,
        });
        Runtime::from_parts(meta, self.pending)
    }
}
