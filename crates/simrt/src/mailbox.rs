//! Typed, latency-stamped mailboxes: the only channel that crosses shards.
//!
//! A [`Mailbox<T>`] is owned by one node and receives messages of type `T`
//! from any node, each stamped with a delivery delay at send time. Delivery
//! order is a pure function of `(deliver_at, src_node, seq)` — never of
//! which worker shard ran first — so a run's observable behaviour is
//! identical at any worker count.
//!
//! Mechanics: `send` computes the absolute `deliver_at`. Same-shard sends
//! hand the envelope to the receiving runtime immediately; cross-shard sends
//! park it in the shard's outbox, which the window barrier routes at the next
//! synchronization point (conservative lookahead guarantees the barrier
//! happens before `deliver_at`). On the receiving shard the envelope enters
//! the mailbox's pending heap and a *delivery-class* timer is registered at
//! `deliver_at`; delivery timers fire before ordinary timers at the same
//! instant, so a message wakes its receiver ahead of the receiver's own
//! same-instant timeouts in both single- and multi-worker modes.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::executor::{with_current_ctx, RuntimeInner};

/// A message in flight: payload plus the delivery key that totally orders it.
pub(crate) struct Envelope {
    pub(crate) mailbox: u64,
    pub(crate) dst_shard: u32,
    pub(crate) deliver_at: u64,
    pub(crate) src_node: u32,
    pub(crate) seq: u64,
    pub(crate) payload: Box<dyn Any + Send>,
}

/// Per-mailbox delivery hook installed on the owning shard's runtime: takes
/// the envelope, downcasts the payload and registers the delivery timer.
pub(crate) type DeliverHook = Rc<dyn Fn(&RuntimeInner, Envelope)>;

/// Wakes the mailbox's pending `recv` when a delivery timer fires. Lives
/// behind `Arc<Mutex<..>>` only to satisfy `Wake`'s bounds; it is only ever
/// touched from the owning shard's thread.
struct Signal {
    waker: Mutex<Option<Waker>>,
}

impl Wake for Signal {
    fn wake(self: Arc<Self>) {
        if let Some(w) = self.waker.lock().unwrap().take() {
            w.wake();
        }
    }
}

struct MsgEntry<T> {
    deliver_at: u64,
    src_node: u32,
    seq: u64,
    payload: T,
}

impl<T> MsgEntry<T> {
    fn key(&self) -> (u64, u32, u64) {
        (self.deliver_at, self.src_node, self.seq)
    }
}

impl<T> PartialEq for MsgEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for MsgEntry<T> {}
impl<T> PartialOrd for MsgEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for MsgEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

struct MailState<T> {
    heap: BinaryHeap<Reverse<MsgEntry<T>>>,
    signal: Arc<Signal>,
}

/// A received message with its provenance.
pub struct Delivery<T> {
    /// Virtual time (µs) the message became visible to the receiver.
    pub at_micros: u64,
    /// Topology index of the sending node.
    pub src_node: u32,
    pub payload: T,
}

/// The receiving half of a mailbox, created by binding a [`MailboxToken`]
/// on the owning node's shard. `!Send`: it lives on its shard.
pub struct Mailbox<T> {
    state: Rc<RefCell<MailState<T>>>,
}

impl<T: 'static> Mailbox<T> {
    /// Receive the next message, in `(deliver_at, src_node, seq)` order,
    /// waiting (in virtual time) until one is deliverable.
    pub fn recv(&self) -> RecvFuture<'_, T> {
        RecvFuture { mailbox: self }
    }
}

/// Future returned by [`Mailbox::recv`].
pub struct RecvFuture<'a, T> {
    mailbox: &'a Mailbox<T>,
}

impl<T: 'static> Future for RecvFuture<'_, T> {
    type Output = Delivery<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let now = crate::executor::current_now().as_micros();
        let mut state = self.mailbox.state.borrow_mut();
        if let Some(Reverse(head)) = state.heap.peek() {
            if head.deliver_at <= now {
                let Reverse(entry) = state.heap.pop().unwrap();
                return Poll::Ready(Delivery {
                    at_micros: entry.deliver_at,
                    src_node: entry.src_node,
                    payload: entry.payload,
                });
            }
        }
        // Not deliverable yet: the delivery-class timer registered when the
        // envelope arrived will fire the signal at `deliver_at`; park the
        // task waker there. (If no message is pending at all, a future
        // delivery installs the timer and finds this waker.)
        *state.signal.waker.lock().unwrap() = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Capability to bind a mailbox on its owning node's shard. `Send`, so the
/// builder can hand it into a `spawn_node` closure.
pub struct MailboxToken<T> {
    id: u64,
    owner: u32,
    _marker: PhantomData<fn() -> T>,
}

// The token carries no T values, only the right to create the mailbox.
unsafe impl<T> Send for MailboxToken<T> {}

impl<T: 'static> MailboxToken<T> {
    pub(crate) fn new(id: u64, owner: u32) -> Self {
        Self {
            id,
            owner,
            _marker: PhantomData,
        }
    }

    /// Bind the mailbox on the current shard. Must be called from a task
    /// running on the owning node's shard (asserted), exactly once.
    pub fn bind(self) -> Mailbox<T> {
        let state = Rc::new(RefCell::new(MailState::<T> {
            heap: BinaryHeap::new(),
            signal: Arc::new(Signal {
                waker: Mutex::new(None),
            }),
        }));
        let hook_state = Rc::clone(&state);
        let hook: DeliverHook = Rc::new(move |inner: &RuntimeInner, env: Envelope| {
            let payload = *env
                .payload
                .downcast::<T>()
                .expect("mailbox payload type mismatch");
            let mut st = hook_state.borrow_mut();
            st.heap.push(Reverse(MsgEntry {
                deliver_at: env.deliver_at,
                src_node: env.src_node,
                seq: env.seq,
                payload,
            }));
            let signal = Arc::clone(&st.signal);
            drop(st);
            // One delivery-class timer per message: wakes the receiver at
            // deliver_at, ahead of ordinary timers at the same instant.
            inner.register_delivery(env.deliver_at, Waker::from(signal));
        });
        with_current_ctx(|ctx| {
            if let Some(shard) = &ctx.shard {
                assert_eq!(
                    shard.shard,
                    ctx.meta.topology.shard_of(self.owner),
                    "mailbox for node '{}' bound on the wrong shard",
                    ctx.meta.topology.node_name(self.owner)
                );
            }
            ctx.inner.bind_mailbox(self.id, hook);
        });
        Mailbox { state }
    }
}

/// The sending half: `Send + Clone`, addressable from any node. Call
/// [`MailboxSender::bind_src`] on the sending node's shard to obtain a
/// [`BoundSender`] that stamps messages with that node's identity.
pub struct MailboxSender<T> {
    id: u64,
    dst_node: u32,
    _marker: PhantomData<fn(T)>,
}

unsafe impl<T> Send for MailboxSender<T> {}

impl<T> Clone for MailboxSender<T> {
    fn clone(&self) -> Self {
        Self {
            id: self.id,
            dst_node: self.dst_node,
            _marker: PhantomData,
        }
    }
}

impl<T: Send + 'static> MailboxSender<T> {
    pub(crate) fn new(id: u64, dst_node: u32) -> Self {
        Self {
            id,
            dst_node,
            _marker: PhantomData,
        }
    }

    /// Resolve this sender for messages originating at node `src` (a name
    /// declared on the builder). Must be called on `src`'s shard.
    pub fn bind_src(&self, src: &str) -> BoundSender<T> {
        let (src_node, dst_shard) = with_current_ctx(|ctx| {
            let src_node = ctx
                .meta
                .topology
                .node_index(src)
                .unwrap_or_else(|| panic!("unknown source node '{src}'"));
            if let Some(shard) = &ctx.shard {
                assert_eq!(
                    shard.shard,
                    ctx.meta.topology.shard_of(src_node),
                    "bind_src('{src}') called on the wrong shard"
                );
            }
            (src_node, ctx.meta.topology.shard_of(self.dst_node))
        });
        BoundSender {
            id: self.id,
            dst_node: self.dst_node,
            dst_shard,
            src_node,
            next_seq: Cell::new(0),
            _marker: PhantomData,
        }
    }
}

/// A sender bound to a source node: stamps each message with
/// `(deliver_at, src_node, seq)` and routes it locally or via the shard
/// outbox. `!Send` (per-shard sequence counter); one per (source, mailbox).
pub struct BoundSender<T> {
    id: u64,
    dst_node: u32,
    dst_shard: u32,
    src_node: u32,
    next_seq: Cell<u64>,
    _marker: PhantomData<fn(T)>,
}

impl<T: Send + 'static> BoundSender<T> {
    /// Send `payload`, arriving `delay_micros` of virtual time from now.
    ///
    /// Cross-shard sends must respect the declared link latency: `delay`
    /// below the topology's one-way lookahead for the shard pair is a bug in
    /// the model (the barrier protocol relies on it) and panics.
    pub fn send(&self, delay_micros: u64, payload: T) {
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        with_current_ctx(|ctx| {
            let deliver_at = ctx.inner.now_micros() + delay_micros;
            let env = Envelope {
                mailbox: self.id,
                dst_shard: self.dst_shard,
                deliver_at,
                src_node: self.src_node,
                seq,
                payload: Box::new(payload),
            };
            match &ctx.shard {
                Some(link) if link.shard != self.dst_shard => {
                    let min = ctx.meta.declared_lookahead(link.shard, self.dst_shard);
                    assert!(
                        min != u64::MAX,
                        "no link declared between the shards of '{}' and '{}'",
                        ctx.meta.topology.node_name(self.src_node),
                        ctx.meta.topology.node_name(self.dst_node),
                    );
                    assert!(
                        delay_micros >= min,
                        "cross-shard send with delay {delay_micros}us below the \
                         declared one-way link latency {min}us",
                    );
                    link.outbox.borrow_mut().push(env);
                }
                // Same shard (or single-worker mode): deliver immediately;
                // the delivery-class timer provides the time gating.
                _ => ctx.inner.deliver(env),
            }
        });
    }

    /// Topology index of the destination node.
    pub fn dst_node(&self) -> u32 {
        self.dst_node
    }
}
