//! Conservative multi-worker execution: per-shard executors under a
//! window barrier.
//!
//! ## Protocol
//!
//! Each worker shard owns a full [`RuntimeInner`] (ready queue, clock, timer
//! wheel). Execution alternates between *barriers* and *windows*:
//!
//! 1. At a barrier every shard reports its next local event time (its clock
//!    if a task is runnable, else its earliest timer) and hands over the
//!    cross-shard envelopes it produced in the last window.
//! 2. The last shard to arrive resolves the round: envelopes are sorted by
//!    the canonical delivery key `(deliver_at, src_node, seq, mailbox)` and
//!    routed to their destination shards, each shard's *effective* next
//!    event `eff_i` is the min of its report and its routed-in mail, and
//!    every shard `j` receives a window end
//!    `W_j = min over i≠j of (eff_i + lookahead(i → j))`.
//! 3. Each shard delivers its routed mail and runs freely up to (but not
//!    including) `W_j`, then returns to step 1.
//!
//! Because a cross-shard message sent at time `t` arrives no earlier than
//! `t + lookahead`, no shard inside its window can receive mail from its
//! past — every interleaving of worker threads yields the same per-shard
//! event sequence, so runs are bit-reproducible at any worker count. The
//! shard holding the global-minimum event always has `W_j` strictly above
//! it (lookahead is floored at 1µs), so the protocol cannot livelock.
//!
//! Termination: when the root future (driven by shard 0 on the caller's
//! thread) completes, a stop flag turns the next barrier verdict into
//! `Stop` for every shard, abandoning background tasks exactly like
//! single-worker `block_on`. If every shard reports "no events" while the
//! root is still pending, the verdict is `Deadlock` and shard 0 raises the
//! same diagnostic the single-worker runtime uses. A panicking worker
//! flips the verdict to `Abort` so no peer blocks forever, and the panic
//! is re-thrown on the caller's thread.

use std::cell::RefCell;
use std::future::Future;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::executor::{
    CurrentCtx, CurrentGuard, PendingSpawn, RootCtx, RunMetrics, RuntimeInner, WindowPause,
};
use crate::mailbox::Envelope;
use crate::topology::RunMeta;

/// A shard's connection to the barrier: its id, the shared coordinator and
/// the outbox collecting cross-shard envelopes produced during a window.
pub(crate) struct ShardLink {
    pub(crate) shard: u32,
    #[allow(dead_code)] // reserved for in-task barrier introspection
    pub(crate) ctl: Arc<Control>,
    pub(crate) outbox: Rc<RefCell<Vec<Envelope>>>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Running,
    Stop,
    Deadlock,
    Abort,
}

struct BarrierState {
    epoch: u64,
    arrived: usize,
    /// Per-shard next-event report for the current round.
    reports: Vec<Option<u64>>,
    /// Envelopes handed over this round, pending routing.
    staged: Vec<Envelope>,
    /// Routed envelopes awaiting pickup by their destination shard.
    inboxes: Vec<Vec<Envelope>>,
    /// Window end per shard, valid for the verdict `Running`.
    windows: Vec<u64>,
    verdict: Verdict,
}

/// What a shard should do after a barrier round.
enum Directive {
    Run { window: u64, inbox: Vec<Envelope> },
    Stop,
    Deadlock,
    Abort,
}

pub(crate) struct Control {
    meta: Arc<RunMeta>,
    stop: AtomicBool,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

impl Control {
    fn new(meta: Arc<RunMeta>) -> Self {
        let workers = meta.workers;
        Self {
            meta,
            stop: AtomicBool::new(false),
            state: Mutex::new(BarrierState {
                epoch: 0,
                arrived: 0,
                reports: vec![None; workers],
                staged: Vec::new(),
                inboxes: (0..workers).map(|_| Vec::new()).collect(),
                windows: vec![0; workers],
                verdict: Verdict::Running,
            }),
            cv: Condvar::new(),
        }
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Called on worker panic so peers waiting at the barrier don't hang.
    fn abort(&self) {
        let mut state = self.state.lock().unwrap();
        state.verdict = Verdict::Abort;
        self.cv.notify_all();
    }

    /// Report this shard's next event and outbox, wait for the round to
    /// resolve, and collect the directive. The last arriver resolves the
    /// round for everyone; resolution is a pure function of the reports and
    /// staged envelopes, so thread arrival order cannot affect the outcome.
    fn arrive(&self, shard: u32, next: Option<u64>, outbox: Vec<Envelope>) -> Directive {
        let workers = self.meta.workers;
        let mut state = self.state.lock().unwrap();
        if state.verdict == Verdict::Abort {
            return Directive::Abort;
        }
        let my_epoch = state.epoch;
        state.reports[shard as usize] = next;
        state.staged.extend(outbox);
        state.arrived += 1;
        if state.arrived == workers {
            state.arrived = 0;
            // Canonical routing order: key on the full delivery tuple so the
            // inbox contents (and therefore replay order for not-yet-bound
            // mailboxes) are independent of which shard staged first.
            let mut staged = std::mem::take(&mut state.staged);
            staged.sort_by_key(|e| (e.deliver_at, e.src_node, e.seq, e.mailbox));
            for env in staged {
                state.inboxes[env.dst_shard as usize].push(env);
            }
            let eff: Vec<Option<u64>> = (0..workers)
                .map(|i| {
                    let mail = state.inboxes[i].iter().map(|e| e.deliver_at).min();
                    match (state.reports[i], mail) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    }
                })
                .collect();
            if self.stop.load(Ordering::SeqCst) {
                state.verdict = Verdict::Stop;
            } else if eff.iter().all(Option::is_none) {
                state.verdict = Verdict::Deadlock;
            } else {
                state.verdict = Verdict::Running;
                for j in 0..workers {
                    state.windows[j] = (0..workers)
                        .filter(|&i| i != j)
                        .filter_map(|i| {
                            eff[i]
                                .map(|e| e.saturating_add(self.meta.lookahead(i as u32, j as u32)))
                        })
                        .min()
                        .unwrap_or(u64::MAX);
                }
            }
            state.epoch += 1;
            self.cv.notify_all();
        } else {
            while state.epoch == my_epoch && state.verdict != Verdict::Abort {
                state = self.cv.wait(state).unwrap();
            }
        }
        match state.verdict {
            Verdict::Running => Directive::Run {
                window: state.windows[shard as usize],
                inbox: std::mem::take(&mut state.inboxes[shard as usize]),
            },
            Verdict::Stop => Directive::Stop,
            Verdict::Deadlock => Directive::Deadlock,
            Verdict::Abort => Directive::Abort,
        }
    }
}

/// Sets the abort verdict if the owning thread unwinds, so peer shards
/// parked at the barrier wake up instead of hanging.
struct AbortOnPanic(Arc<Control>);

impl Drop for AbortOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

enum Outcome {
    Stopped,
    Deadlock,
    Aborted,
}

/// Drive one shard: barrier → deliver inbox → run window → repeat.
fn drive_shard<F: Future>(
    shard: u32,
    inner: &RuntimeInner,
    ctl: &Control,
    outbox: &RefCell<Vec<Envelope>>,
    mut root: Option<RootCtx<'_, F>>,
) -> Outcome {
    loop {
        let next = if inner.has_ready() {
            Some(inner.now_micros())
        } else {
            inner.next_timer_deadline()
        };
        let mail = std::mem::take(&mut *outbox.borrow_mut());
        match ctl.arrive(shard, next, mail) {
            Directive::Run { window, inbox } => {
                for env in inbox {
                    inner.deliver(env);
                }
                // An unbounded window means no peer has any event: run until
                // locally blocked — but return to the barrier the moment a
                // cross-shard envelope is produced, since an idle peer may be
                // waiting on exactly that message. (Deterministic: outbox
                // occupancy is a pure function of this shard's execution.)
                let unbounded = window == u64::MAX;
                let pause = inner.run_window(Some(window), &mut root, || {
                    unbounded && !outbox.borrow().is_empty()
                });
                if let WindowPause::RootDone = pause {
                    root = None;
                    ctl.request_stop();
                }
            }
            Directive::Stop => return Outcome::Stopped,
            Directive::Deadlock => return Outcome::Deadlock,
            Directive::Abort => return Outcome::Aborted,
        }
    }
}

/// Body of worker shards 1..N (shard 0 runs on the caller's thread).
fn worker_main(
    shard: u32,
    meta: Arc<RunMeta>,
    ctl: Arc<Control>,
    thunks: Vec<Box<dyn FnOnce() + Send>>,
) -> (RunMetrics, u64) {
    let inner = Rc::new(RuntimeInner::new());
    let outbox = Rc::new(RefCell::new(Vec::new()));
    let _abort = AbortOnPanic(Arc::clone(&ctl));
    let _guard = CurrentGuard::enter(CurrentCtx {
        inner: Rc::clone(&inner),
        meta: Arc::clone(&meta),
        shard: Some(ShardLink {
            shard,
            ctl: Arc::clone(&ctl),
            outbox: Rc::clone(&outbox),
        }),
    });
    for hooks in &meta.shard_hooks {
        (hooks.enter)(shard);
    }
    for thunk in thunks {
        thunk();
    }
    let mut no_root: Option<RootCtx<'static, std::future::Ready<()>>> = None;
    drive_shard(shard, &inner, &ctl, &outbox, no_root.take());
    for hooks in meta.shard_hooks.iter().rev() {
        (hooks.teardown)(shard);
    }
    (inner.metrics(), inner.now_micros())
}

/// Run `root` across `meta.workers` shards. Shard 0 (and the root future)
/// stays on the calling thread; shards 1..N get their own threads. Returns
/// the root's output, the per-shard metrics (index = shard) and the max
/// shard clock.
pub(crate) fn run_sharded<F: Future>(
    meta: Arc<RunMeta>,
    pending: Vec<PendingSpawn>,
    root: F,
) -> (F::Output, Vec<RunMetrics>, u64) {
    let workers = meta.workers;
    let ctl = Arc::new(Control::new(Arc::clone(&meta)));
    let mut per_shard: Vec<Vec<Box<dyn FnOnce() + Send>>> =
        (0..workers).map(|_| Vec::new()).collect();
    for spawn in pending {
        let shard = meta.topology.shard_of(spawn.node) as usize;
        per_shard[shard].push(spawn.thunk);
    }
    let mut shards = per_shard.into_iter();
    let shard0_thunks = shards.next().expect("workers >= 1");

    let mut out: Option<F::Output> = None;
    let (metrics, now) = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, thunks) in shards.enumerate() {
            let shard = (i + 1) as u32;
            let meta = Arc::clone(&meta);
            let ctl = Arc::clone(&ctl);
            handles.push(s.spawn(move || worker_main(shard, meta, ctl, thunks)));
        }

        let inner = Rc::new(RuntimeInner::new());
        let outbox = Rc::new(RefCell::new(Vec::new()));
        let _abort = AbortOnPanic(Arc::clone(&ctl));
        let _guard = CurrentGuard::enter(CurrentCtx {
            inner: Rc::clone(&inner),
            meta: Arc::clone(&meta),
            shard: Some(ShardLink {
                shard: 0,
                ctl: Arc::clone(&ctl),
                outbox: Rc::clone(&outbox),
            }),
        });
        for hooks in &meta.shard_hooks {
            (hooks.enter)(0);
        }
        for thunk in shard0_thunks {
            thunk();
        }
        let mut root = Box::pin(root);
        let root_waker = inner.root_waker();
        inner.push_root_ready();
        let mut root_ctx = Some(RootCtx {
            fut: root.as_mut(),
            waker: &root_waker,
            out: &mut out,
        });
        let outcome = drive_shard(0, &inner, &ctl, &outbox, root_ctx.take());
        for hooks in meta.shard_hooks.iter().rev() {
            (hooks.teardown)(0);
        }
        let now0 = inner.now_micros();
        let mut metrics = vec![inner.metrics()];
        let mut now = now0;
        let mut worker_panic = None;
        for handle in handles {
            match handle.join() {
                Ok((m, n)) => {
                    metrics.push(m);
                    now = now.max(n);
                }
                Err(payload) => worker_panic = Some(payload),
            }
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
        match outcome {
            Outcome::Stopped => {}
            Outcome::Deadlock => panic!(
                "geotp-simrt: simulation deadlock at t={now0}us — the root task is \
                 pending but no task is runnable and no timer is registered"
            ),
            Outcome::Aborted => panic!("geotp-simrt: a worker shard aborted"),
        }
        (metrics, now)
    });
    (out.expect("root future completed"), metrics, now)
}
