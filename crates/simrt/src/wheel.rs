//! Hierarchical timer wheel: the executor's pending-timer store.
//!
//! Replaces the earlier `BinaryHeap<Reverse<TimerEntry>>` with the classic
//! hashed hierarchical wheel (as in tokio's time driver and Varghese &
//! Lauck's original design): `LEVELS` levels of 64 slots each, where level
//! `L` has slot granularity `64^L` microseconds. Insertion and removal are
//! O(1); finding the next deadline scans at most 64 occupancy bits per
//! level.
//!
//! ## Semantics (kept bit-compatible with the heap)
//!
//! * Timers fire in `(deadline, class, seq)` order, where `seq` is the
//!   registration sequence number. Legacy timers all use
//!   [`CLASS_NORMAL`], so their firing order is exactly the heap's
//!   `(deadline, seq)` order and recorded poll counts do not move.
//! * [`TimerWheel::next_deadline`] reports the *exact* minimum pending
//!   deadline — never a slot boundary — so the executor's single
//!   clock-jump-per-advance accounting (`clock_advances`) is unchanged.
//! * Cancellation ([`TimerWheel::cancel`]) is lazy: the entry is
//!   tombstoned and physically removed when its slot is next scanned.
//!   A cancelled timer is invisible to `next_deadline`, so it never
//!   causes a clock advance. Legacy `Sleep` never cancels (stale wakers
//!   are absorbed by task generations), keeping the hot path free of
//!   bookkeeping: when no tombstone exists the per-fire overhead is one
//!   `is_empty` check.
//!
//! ## Delivery class
//!
//! Cross-node mailbox deliveries register with [`CLASS_DELIVERY`] (0),
//! which sorts before [`CLASS_NORMAL`] (1) at an equal deadline. This is
//! the cross-shard determinism anchor: a message arriving at instant `t`
//! wakes its receiver *before* any local timer scheduled for `t`,
//! regardless of registration order — and therefore regardless of whether
//! the sender lived on the same shard (registered at send time) or a
//! remote one (registered at the window barrier).

use std::task::Waker;

use crate::hash::FxHashSet;

/// Slot-index bits per level.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Number of levels. Capacity is `64^LEVELS` µs ≈ 51 simulated days;
/// deadlines beyond that horizon go to the unsorted overflow list.
const LEVELS: usize = 7;
/// Horizon covered by the levels, relative to `elapsed`.
const CAPACITY: u64 = 1 << (BITS * LEVELS as u32);

/// Firing class for cross-node message deliveries (sorts first).
pub(crate) const CLASS_DELIVERY: u8 = 0;
/// Firing class for ordinary timers (`sleep` etc.).
pub(crate) const CLASS_NORMAL: u8 = 1;

/// Opaque handle for cancelling a registered timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// One registered timer.
pub(crate) struct TimerEntry {
    pub(crate) deadline: u64,
    pub(crate) class: u8,
    pub(crate) seq: u64,
    pub(crate) waker: Waker,
}

impl TimerEntry {
    fn key(&self) -> (u64, u8, u64) {
        (self.deadline, self.class, self.seq)
    }
}

struct Level {
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
    slots: [Vec<TimerEntry>; SLOTS],
}

impl Level {
    fn new() -> Self {
        Self {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// Where `scan_candidate` found the minimum pending deadline.
enum Candidate {
    /// In a wheel slot (level, slot index, exact min deadline within it).
    Slot(usize, usize, u64),
    /// In the overflow list (min deadline).
    Overflow(u64),
}

/// The wheel. Single-threaded; owned by one shard's `RuntimeInner`.
pub(crate) struct TimerWheel {
    /// Wheel-relative "now": the last instant `expire` completed at. All
    /// live entries have `deadline >= elapsed`.
    elapsed: u64,
    next_seq: u64,
    /// Live (non-tombstoned) entry count across levels and overflow.
    len: usize,
    levels: Vec<Level>,
    /// Entries beyond `elapsed + CAPACITY`, unsorted; migrated into the
    /// levels as `elapsed` advances.
    overflow: Vec<TimerEntry>,
    /// Sequence numbers cancelled but not yet physically removed.
    tombstones: FxHashSet<u64>,
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        Self {
            elapsed: 0,
            next_seq: 0,
            len: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: Vec::new(),
            tombstones: FxHashSet::default(),
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Level an entry with `deadline` belongs to, relative to `elapsed`.
    /// `LEVELS` means "overflow".
    fn level_for(&self, deadline: u64) -> usize {
        let masked = deadline ^ self.elapsed;
        if masked == 0 {
            0
        } else {
            (63 - masked.leading_zeros() as usize) / BITS as usize
        }
    }

    fn slot_for(deadline: u64, level: usize) -> usize {
        ((deadline >> (BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
    }

    /// Register a timer; returns a handle usable with [`Self::cancel`].
    pub(crate) fn push(&mut self, deadline: u64, class: u8, waker: Waker) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_entry(TimerEntry {
            deadline,
            class,
            seq,
            waker,
        });
        self.len += 1;
        TimerId(seq)
    }

    fn push_entry(&mut self, entry: TimerEntry) {
        debug_assert!(
            entry.deadline >= self.elapsed,
            "timer registered in the past: deadline={} elapsed={}",
            entry.deadline,
            self.elapsed
        );
        let level = self.level_for(entry.deadline);
        if level >= LEVELS {
            self.overflow.push(entry);
            return;
        }
        let slot = Self::slot_for(entry.deadline, level);
        let lvl = &mut self.levels[level];
        lvl.slots[slot].push(entry);
        lvl.occupied |= 1 << slot;
    }

    /// Cancel a pending timer. Lazy: the entry is dropped when its slot is
    /// next scanned, and it is never reported by [`Self::next_deadline`].
    /// Cancelling an already-fired timer never mis-fires or blocks anything
    /// (sequence numbers are unique), but it leaves a stale tombstone and
    /// may undercount [`Self::len`]; callers should cancel only pending
    /// timers.
    #[allow(dead_code)] // timer-wheel API surface; exercised by the unit suite
    pub(crate) fn cancel(&mut self, id: TimerId) {
        if id.0 < self.next_seq && self.tombstones.insert(id.0) {
            self.len = self.len.saturating_sub(1);
        }
    }

    /// Drop tombstoned entries from one slot; clears the occupancy bit if
    /// the slot empties. Returns whether the slot still holds entries.
    fn purge_slot(&mut self, level: usize, slot: usize) -> bool {
        if !self.tombstones.is_empty() {
            let tombstones = &mut self.tombstones;
            self.levels[level].slots[slot].retain(|e| !tombstones.remove(&e.seq));
        }
        if self.levels[level].slots[slot].is_empty() {
            self.levels[level].occupied &= !(1u64 << slot);
            false
        } else {
            true
        }
    }

    /// Exact minimum pending deadline, or `None` when no live timer exists.
    pub(crate) fn next_deadline(&mut self) -> Option<u64> {
        self.scan_candidate().map(|c| match c {
            Candidate::Slot(_, _, d) | Candidate::Overflow(d) => d,
        })
    }

    fn scan_candidate(&mut self) -> Option<Candidate> {
        for level in 0..LEVELS {
            let cur = Self::slot_for(self.elapsed, level);
            // No-wrap invariant: every live entry's slot index at its level
            // is >= the current position, so scanning the bits >= `cur`
            // covers the whole level.
            debug_assert_eq!(
                self.levels[level].occupied & ((1u64 << cur) - 1),
                0,
                "stale timer slot behind the wheel cursor at level {level}"
            );
            let mut mask = self.levels[level].occupied >> cur << cur;
            while mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if !self.purge_slot(level, slot) {
                    continue;
                }
                let min = self.levels[level].slots[slot]
                    .iter()
                    .map(|e| e.deadline)
                    .min()
                    .expect("purged slot is non-empty");
                return Some(Candidate::Slot(level, slot, min));
            }
        }
        if !self.tombstones.is_empty() {
            let tombstones = &mut self.tombstones;
            self.overflow.retain(|e| !tombstones.remove(&e.seq));
        }
        self.overflow
            .iter()
            .map(|e| e.deadline)
            .min()
            .map(Candidate::Overflow)
    }

    /// Advance wheel time to `now`, appending every entry with
    /// `deadline <= now` to `out` in `(deadline, class, seq)` order.
    pub(crate) fn expire(&mut self, now: u64, out: &mut Vec<TimerEntry>) {
        debug_assert!(now >= self.elapsed);
        let start = out.len();
        while let Some(candidate) = self.scan_candidate() {
            match candidate {
                Candidate::Slot(_, _, d) | Candidate::Overflow(d) if d > now => break,
                Candidate::Slot(0, slot, d) => {
                    // Level-0 slots hold exactly one deadline; all due.
                    self.elapsed = d;
                    let drained = std::mem::take(&mut self.levels[0].slots[slot]);
                    self.levels[0].occupied &= !(1u64 << slot);
                    self.len -= drained.len();
                    out.extend(drained);
                }
                Candidate::Slot(level, slot, d) => {
                    // Cascade: advance to the slot's minimum deadline and
                    // re-insert its entries; they land at lower levels
                    // (the minimum lands at level 0) and the loop repeats.
                    self.elapsed = d;
                    let drained = std::mem::take(&mut self.levels[level].slots[slot]);
                    self.levels[level].occupied &= !(1u64 << slot);
                    for entry in drained {
                        self.push_entry(entry);
                    }
                }
                Candidate::Overflow(d) => {
                    // The whole wheel is empty up to the overflow horizon:
                    // jump to the overflow minimum and migrate every entry
                    // that now fits within the level horizon.
                    self.elapsed = d;
                    let overflow = std::mem::take(&mut self.overflow);
                    for entry in overflow {
                        self.push_entry(entry);
                    }
                }
            }
        }
        if now > self.elapsed {
            // `now` lies strictly between pending deadlines (every due entry
            // was already fired above). Crossing slot boundaries can leave
            // entries parked at a coarser level than the new `elapsed`
            // warrants, so re-place whatever sits in each level's new cursor
            // slot; re-pushed entries always land at a strictly lower level.
            self.elapsed = now;
            for level in (1..LEVELS).rev() {
                let cur = Self::slot_for(now, level);
                if self.levels[level].occupied & (1u64 << cur) != 0 {
                    let drained = std::mem::take(&mut self.levels[level].slots[cur]);
                    self.levels[level].occupied &= !(1u64 << cur);
                    for entry in drained {
                        self.push_entry(entry);
                    }
                }
            }
            if self
                .overflow
                .iter()
                .any(|e| e.deadline < now.saturating_add(CAPACITY))
            {
                let overflow = std::mem::take(&mut self.overflow);
                for entry in overflow {
                    self.push_entry(entry);
                }
            }
        }
        out[start..].sort_unstable_by_key(|e| e.key());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::task::Wake;

    struct NoopWaker;
    impl Wake for NoopWaker {
        fn wake(self: Arc<Self>) {}
    }

    fn waker() -> Waker {
        Waker::from(Arc::new(NoopWaker))
    }

    /// Waker that records fires, for end-to-end checks.
    struct CountWaker(AtomicU64);
    impl Wake for CountWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn fire_upto(wheel: &mut TimerWheel, now: u64) -> Vec<(u64, u8, u64)> {
        let mut out = Vec::new();
        wheel.expire(now, &mut out);
        out.iter().map(|e| (e.deadline, e.class, e.seq)).collect()
    }

    #[test]
    fn fires_in_deadline_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(20, CLASS_NORMAL, waker());
        w.push(10, CLASS_NORMAL, waker());
        w.push(10, CLASS_NORMAL, waker());
        assert_eq!(w.next_deadline(), Some(10));
        assert_eq!(fire_upto(&mut w, 10), vec![(10, 1, 1), (10, 1, 2)]);
        assert_eq!(w.next_deadline(), Some(20));
        assert_eq!(fire_upto(&mut w, 20), vec![(20, 1, 0)]);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn delivery_class_fires_before_normal_at_equal_deadline() {
        let mut w = TimerWheel::new();
        w.push(50, CLASS_NORMAL, waker()); // seq 0
        w.push(50, CLASS_DELIVERY, waker()); // seq 1
        assert_eq!(fire_upto(&mut w, 50), vec![(50, 0, 1), (50, 1, 0)]);
    }

    #[test]
    fn cascade_boundaries_are_exact() {
        // Deadlines straddling every level boundary: 64^1, 64^2, 64^3.
        let mut boundaries = Vec::new();
        for level in 1..4u32 {
            let b = 1u64 << (BITS * level);
            boundaries.extend([b - 1, b, b + 1]);
        }
        let mut w = TimerWheel::new();
        for &d in &boundaries {
            w.push(d, CLASS_NORMAL, waker());
        }
        let mut sorted = boundaries.clone();
        sorted.sort();
        for &d in &sorted {
            assert_eq!(w.next_deadline(), Some(d), "next_deadline before {d}");
            let fired = fire_upto(&mut w, d);
            assert_eq!(fired.len(), 1, "exactly one timer due at {d}");
            assert_eq!(fired[0].0, d);
        }
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn far_future_timers_take_the_overflow_path() {
        let mut w = TimerWheel::new();
        let far = CAPACITY * 3 + 12_345; // beyond the 64^7 horizon
        w.push(far, CLASS_NORMAL, waker());
        w.push(far + 7, CLASS_NORMAL, waker());
        assert_eq!(w.overflow.len(), 2, "entries beyond horizon overflow");
        assert_eq!(w.next_deadline(), Some(far));
        assert_eq!(fire_upto(&mut w, far), vec![(far, 1, 0)]);
        // The second migrated into the levels when the clock jumped.
        assert!(w.overflow.is_empty());
        assert_eq!(w.next_deadline(), Some(far + 7));
        assert_eq!(fire_upto(&mut w, far + 7), vec![(far + 7, 1, 1)]);
    }

    #[test]
    fn cancellation_is_invisible_to_next_deadline() {
        let mut w = TimerWheel::new();
        let a = w.push(100, CLASS_NORMAL, waker());
        w.push(200, CLASS_NORMAL, waker());
        assert_eq!(w.next_deadline(), Some(100));
        w.cancel(a);
        assert_eq!(w.len(), 1);
        // The cancelled timer must not be reported (it would otherwise
        // cause a spurious clock advance to t=100).
        assert_eq!(w.next_deadline(), Some(200));
        assert_eq!(fire_upto(&mut w, 200), vec![(200, 1, 1)]);
        // Cancel-after-fire is a no-op.
        let b = w.push(300, CLASS_NORMAL, waker());
        assert_eq!(fire_upto(&mut w, 300), vec![(300, 1, 2)]);
        w.cancel(b);
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn cancelled_overflow_entry_is_dropped() {
        let mut w = TimerWheel::new();
        let far = w.push(CAPACITY + 99, CLASS_NORMAL, waker());
        w.cancel(far);
        assert_eq!(w.next_deadline(), None);
        assert!(w.overflow.is_empty(), "tombstone purged from overflow");
    }

    #[test]
    fn wakers_fire_on_expire() {
        let counter = Arc::new(CountWaker(AtomicU64::new(0)));
        let mut w = TimerWheel::new();
        for d in [5u64, 5, 9] {
            w.push(d, CLASS_NORMAL, Waker::from(Arc::clone(&counter)));
        }
        let mut out = Vec::new();
        w.expire(5, &mut out);
        for e in out.drain(..) {
            e.waker.wake();
        }
        assert_eq!(counter.0.load(Ordering::Relaxed), 2);
        w.expire(9, &mut out);
        for e in out.drain(..) {
            e.waker.wake();
        }
        assert_eq!(counter.0.load(Ordering::Relaxed), 3);
    }

    /// Differential test: the wheel must agree with a sorted reference
    /// model on a long, deterministic pseudo-random schedule that mixes
    /// short/medium/far deadlines, classes, and cancellations.
    #[test]
    fn matches_reference_model_on_random_schedule() {
        // Tiny deterministic PRNG (splitmix64) — simrt has no deps.
        struct Rng(u64);
        impl Rng {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            }
        }
        let mut rng = Rng(0xfeed_f00d);
        let mut wheel = TimerWheel::new();
        // Reference: Vec of (deadline, class, seq), kept live until fired.
        let mut model: Vec<(u64, u8, u64)> = Vec::new();
        let mut ids: Vec<(TimerId, (u64, u8, u64))> = Vec::new();
        let mut now = 0u64;
        for round in 0..2_000 {
            // Register 0..4 timers at varied horizons.
            for _ in 0..(rng.next() % 4) {
                let horizon = match rng.next() % 10 {
                    0..=5 => rng.next() % 1_000,           // level 0-1
                    6..=7 => rng.next() % 5_000_000,       // mid levels
                    8 => rng.next() % (CAPACITY / 2),      // high levels
                    _ => CAPACITY + rng.next() % CAPACITY, // overflow
                };
                let deadline = now + horizon;
                let class = (rng.next() % 2) as u8;
                let id = wheel.push(deadline, class, waker());
                let key = (deadline, class, id.0);
                model.push(key);
                ids.push((id, key));
            }
            // Occasionally cancel a random live timer.
            if round % 7 == 0 && !ids.is_empty() {
                let pick = (rng.next() % ids.len() as u64) as usize;
                let (id, key) = ids.swap_remove(pick);
                wheel.cancel(id);
                model.retain(|k| *k != key);
            }
            assert_eq!(wheel.len(), model.len(), "round {round} len");
            let expect_next = model.iter().map(|k| k.0).min();
            assert_eq!(wheel.next_deadline(), expect_next, "round {round} next");
            // Every few rounds, advance to the next deadline and fire.
            if let Some(d) = expect_next {
                if round % 3 != 0 {
                    now = d;
                    let mut out = Vec::new();
                    wheel.expire(now, &mut out);
                    let fired: Vec<_> = out.iter().map(|e| e.key()).collect();
                    let mut expect: Vec<_> = model.iter().copied().filter(|k| k.0 <= now).collect();
                    expect.sort_unstable();
                    assert_eq!(fired, expect, "round {round} fire order");
                    model.retain(|k| k.0 > now);
                    ids.retain(|(_, k)| k.0 > now);
                }
            }
        }
    }
}
