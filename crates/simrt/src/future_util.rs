//! Small future combinators: `timeout`, `race`, `join_all`, `yield_now`.

use std::fmt;
use std::future::{poll_fn, Future};
use std::pin::Pin;
use std::task::Poll;
use std::time::Duration;

use crate::time::sleep;

/// Error returned by [`timeout`] when the deadline elapsed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl fmt::Display for Elapsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "operation timed out (virtual deadline elapsed)")
    }
}

impl std::error::Error for Elapsed {}

/// Run `fut` with a virtual-time deadline of `dur`.
///
/// Returns `Ok(output)` if the future completes first, `Err(Elapsed)` if the
/// timer fires first. The inner future is dropped on timeout, cancelling it.
pub async fn timeout<F: Future>(dur: Duration, fut: F) -> Result<F::Output, Elapsed> {
    let mut fut = Box::pin(fut);
    let mut deadline = Box::pin(sleep(dur));
    poll_fn(move |cx| {
        if let Poll::Ready(out) = fut.as_mut().poll(cx) {
            return Poll::Ready(Ok(out));
        }
        if deadline.as_mut().poll(cx).is_ready() {
            return Poll::Ready(Err(Elapsed));
        }
        Poll::Pending
    })
    .await
}

/// Allocation-free [`timeout`] for `Unpin` futures.
///
/// `timeout` boxes both the inner future and its deadline sleep (two heap
/// allocations per call) because it must pin an arbitrary future. Callers on
/// hot paths whose future is already `Unpin` — like the lock manager awaiting
/// a grant `Receiver` — can use this combinator instead: the state lives
/// inline in the returned future.
pub fn timeout_unpin<F: Future + Unpin>(dur: Duration, fut: F) -> Timeout<F> {
    Timeout {
        fut,
        deadline: sleep(dur),
    }
}

/// Future returned by [`timeout_unpin`].
#[derive(Debug)]
pub struct Timeout<F> {
    fut: F,
    deadline: crate::time::Sleep,
}

impl<F: Future + Unpin> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut std::task::Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Poll::Ready(out) = Pin::new(&mut this.fut).poll(cx) {
            return Poll::Ready(Ok(out));
        }
        if Pin::new(&mut this.deadline).poll(cx).is_ready() {
            return Poll::Ready(Err(Elapsed));
        }
        Poll::Pending
    }
}

/// Result of [`race`]: which future finished first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The left future finished first.
    Left(A),
    /// The right future finished first.
    Right(B),
}

/// Poll two futures concurrently and return the output of whichever finishes
/// first (left wins ties). The loser is dropped/cancelled.
pub async fn race<A: Future, B: Future>(a: A, b: B) -> Either<A::Output, B::Output> {
    let mut a = Box::pin(a);
    let mut b = Box::pin(b);
    poll_fn(move |cx| {
        if let Poll::Ready(out) = a.as_mut().poll(cx) {
            return Poll::Ready(Either::Left(out));
        }
        if let Poll::Ready(out) = b.as_mut().poll(cx) {
            return Poll::Ready(Either::Right(out));
        }
        Poll::Pending
    })
    .await
}

/// Await a set of futures concurrently, returning their outputs in input order.
pub async fn join_all<F: Future>(futures: Vec<F>) -> Vec<F::Output> {
    let mut slots: Vec<Option<F::Output>> = Vec::with_capacity(futures.len());
    let mut pinned: Vec<Pin<Box<F>>> = Vec::with_capacity(futures.len());
    for f in futures {
        slots.push(None);
        pinned.push(Box::pin(f));
    }
    poll_fn(move |cx| {
        let mut all_done = true;
        for (i, fut) in pinned.iter_mut().enumerate() {
            if slots[i].is_none() {
                match fut.as_mut().poll(cx) {
                    Poll::Ready(out) => slots[i] = Some(out),
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(slots.iter_mut().map(|s| s.take().unwrap()).collect())
        } else {
            Poll::Pending
        }
    })
    .await
}

/// Yield control back to the scheduler once, allowing other ready tasks to run.
pub async fn yield_now() {
    let mut yielded = false;
    poll_fn(move |cx| {
        if yielded {
            Poll::Ready(())
        } else {
            yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{now, sleep, spawn, Runtime};

    #[test]
    fn timeout_ok_when_future_finishes_first() {
        let mut rt = Runtime::new();
        let out = rt.block_on(async {
            timeout(Duration::from_millis(100), async {
                sleep(Duration::from_millis(10)).await;
                5
            })
            .await
        });
        assert_eq!(out, Ok(5));
        assert_eq!(rt.now_micros(), 10_000);
    }

    #[test]
    fn timeout_elapsed_when_deadline_first() {
        let mut rt = Runtime::new();
        let out = rt.block_on(async {
            timeout(Duration::from_millis(10), async {
                sleep(Duration::from_millis(100)).await;
                5
            })
            .await
        });
        assert_eq!(out, Err(Elapsed));
        assert_eq!(rt.now_micros(), 10_000);
    }

    #[test]
    fn timeout_unpin_matches_timeout_semantics() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            // Completes first.
            let (tx, rx) = crate::sync::oneshot::channel();
            spawn(async move {
                sleep(Duration::from_millis(3)).await;
                tx.send(11u8).unwrap();
            });
            assert_eq!(
                timeout_unpin(Duration::from_millis(10), rx).await,
                Ok(Ok(11))
            );
            // Deadline first: inner future dropped (sender observes closure).
            let (tx2, rx2) = crate::sync::oneshot::channel::<u8>();
            assert_eq!(
                timeout_unpin(Duration::from_millis(5), rx2).await,
                Err(Elapsed)
            );
            assert!(tx2.is_closed(), "timed-out receiver was cancelled");
        });
        assert_eq!(rt.now_micros(), 8_000);
    }

    #[test]
    fn race_returns_first_winner() {
        let mut rt = Runtime::new();
        let out = rt.block_on(async {
            race(
                async {
                    sleep(Duration::from_millis(30)).await;
                    "slow"
                },
                async {
                    sleep(Duration::from_millis(5)).await;
                    "fast"
                },
            )
            .await
        });
        assert_eq!(out, Either::Right("fast"));
    }

    #[test]
    fn join_all_preserves_order_and_overlaps() {
        let mut rt = Runtime::new();
        let (outs, elapsed) = rt.block_on(async {
            let start = now();
            let futs: Vec<_> = (0..5u64)
                .map(|i| async move {
                    sleep(Duration::from_millis(10 * (5 - i))).await;
                    i
                })
                .collect();
            let outs = join_all(futs).await;
            (outs, now().duration_since(start))
        });
        assert_eq!(outs, vec![0, 1, 2, 3, 4]);
        assert_eq!(elapsed, Duration::from_millis(50));
    }

    #[test]
    fn join_all_empty() {
        let mut rt = Runtime::new();
        let outs: Vec<u8> =
            rt.block_on(async { join_all(Vec::<std::future::Ready<u8>>::new()).await });
        assert!(outs.is_empty());
    }

    #[test]
    fn timeout_on_spawned_work() {
        let mut rt = Runtime::new();
        let ok = rt.block_on(async {
            let handle = spawn(async {
                sleep(Duration::from_millis(2)).await;
                42
            });
            timeout(Duration::from_millis(5), handle).await
        });
        assert_eq!(ok, Ok(42));
    }
}
