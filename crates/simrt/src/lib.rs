//! # geotp-simrt — deterministic simulated async runtime
//!
//! A single-threaded, discrete-event async runtime with a **virtual clock**.
//! It is the substrate on which the whole GeoTP reproduction runs: WAN round
//! trips, LAN hops, lock waits and execution costs are all expressed as
//! virtual-time sleeps, so a 320-virtual-second experiment finishes in a small
//! fraction of that wall-clock time and every run is exactly reproducible.
//!
//! The runtime intentionally mirrors a small subset of the tokio API surface
//! (`spawn`, `sleep`, `timeout`, `oneshot`, `mpsc`, `Notify`, `Semaphore`) so
//! that the higher layers read like ordinary async Rust service code.
//!
//! ## Semantics
//!
//! * Tasks are polled from a FIFO ready queue; a task that returns `Pending`
//!   is only re-polled after one of its wakers fires.
//! * When no task is runnable, the clock jumps to the earliest pending timer
//!   deadline (classic discrete-event semantics). If there is no pending timer
//!   either and the root future has not completed, the runtime panics with a
//!   "simulation deadlock" diagnostic — in a correct system something must
//!   always either be runnable or waiting on time.
//! * All APIs are `!Send`-friendly: futures may freely hold `Rc`/`RefCell`.
//!
//! ## Example
//!
//! ```
//! use std::time::Duration;
//!
//! let mut rt = geotp_simrt::Runtime::new();
//! let total = rt.block_on(async {
//!     let handle = geotp_simrt::spawn(async {
//!         geotp_simrt::sleep(Duration::from_millis(50)).await;
//!         21u64
//!     });
//!     geotp_simrt::sleep(Duration::from_millis(10)).await;
//!     handle.await + 21
//! });
//! assert_eq!(total, 42);
//! // Virtual time advanced by exactly 50ms even though the test ran instantly.
//! ```

mod builder;
mod executor;
mod future_util;
mod handle;
pub mod hash;
mod mailbox;
mod shard;
pub mod sync;
mod task;
mod time;
mod topology;
mod wheel;

pub use builder::RuntimeBuilder;
pub use executor::{spawn, RunMetrics, Runtime};
pub use future_util::{
    join_all, race, timeout, timeout_unpin, yield_now, Either, Elapsed, Timeout,
};
pub use handle::{handle, try_handle, RuntimeHandle};
pub use mailbox::{BoundSender, Delivery, Mailbox, MailboxSender, MailboxToken, RecvFuture};
pub use task::JoinHandle;
pub use time::{now, sleep, sleep_until, SimInstant, Sleep};
pub use topology::Topology;

#[allow(deprecated)]
pub use time::try_now;

/// Convenience: build a fresh [`Runtime`] and run `fut` to completion on it.
///
/// Equivalent to `Runtime::new().block_on(fut)`; useful in tests and examples.
pub fn run<F: std::future::Future>(fut: F) -> F::Output {
    Runtime::new().block_on(fut)
}
