//! Deterministic fast hashing for the simulation's hot maps.
//!
//! `std`'s default `HashMap` hasher (SipHash with a per-map random key) costs
//! tens of nanoseconds per lookup and randomizes iteration order between
//! runs. The simulator's maps are keyed by small fixed-size ids (record keys,
//! transaction ids, node ids) under no adversarial-input threat, so we use an
//! Fx-style multiply-xor hasher instead: a few cycles per key, and — because
//! there is no random seed — fully deterministic across processes, which
//! keeps every run of a seeded experiment bit-identical.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox/rustc multiply-xor hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the deterministic fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the deterministic fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_hash_is_stable() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1_000u64 {
            m.insert(i, (i * 3) as u32);
        }
        assert_eq!(m.len(), 1_000);
        assert_eq!(m.get(&500), Some(&1_500));
        // Determinism: the same key always hashes identically (no RandomState).
        let h1 = {
            let mut h = FxHasher::default();
            h.write_u64(42);
            h.finish()
        };
        let h2 = {
            let mut h = FxHasher::default();
            h.write_u64(42);
            h.finish()
        };
        assert_eq!(h1, h2);
        assert_ne!(h1, 0);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is longer than eight bytes");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is longer than eight bytes");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is longer than eight byteX");
        assert_ne!(a.finish(), c.finish());
    }
}
