//! Scheduler-independence tests for the sharded runtime: the observable
//! behaviour of a topology workload (every message delivery, with its
//! virtual timestamp and provenance) must be identical at any worker count,
//! including worker counts above the node count (idle shards).

use std::sync::{Arc, Mutex};
use std::time::Duration;

use geotp_simrt::RuntimeBuilder;

#[derive(Clone, Copy)]
struct Token {
    id: u64,
    hops_left: u32,
}

/// Delivery record: (virtual µs, receiver, sender node, token id, hops_left).
type Record = (u64, u32, u32, u64, u32);

const REGIONS: usize = 5;
const TOKENS_PER_REGION: u64 = 3;
const HOPS: u32 = 12;

/// Forward delay: ring one-way latency (10ms) plus a deterministic per-hop
/// jitter, so deliveries land at irregular instants.
fn fwd_delay(id: u64, hops_left: u32) -> u64 {
    10_000
        + id.wrapping_mul(2_654_435_761)
            .wrapping_add(hops_left as u64 * 40_503)
            % 5_000
}

/// Run the token-ring workload: each region launches tokens around a ring of
/// WAN links, every hop is recorded, and each token's final holder notifies
/// the coordinator (the root future). Returns the sorted delivery log.
fn run_token_ring(workers: usize) -> Vec<Record> {
    let log: Arc<Mutex<Vec<Record>>> = Arc::new(Mutex::new(Vec::new()));

    let mut builder = RuntimeBuilder::new()
        .workers(workers)
        .seed(7)
        .assign("coord", 0);
    for i in 0..REGIONS {
        let next = (i + 1) % REGIONS;
        builder = builder
            .link(
                &format!("r{i}"),
                &format!("r{next}"),
                Duration::from_millis(20),
            )
            .link("coord", &format!("r{i}"), Duration::from_millis(30));
    }

    let token_mailboxes: Vec<_> = (0..REGIONS)
        .map(|i| builder.mailbox::<Token>(&format!("r{i}")))
        .collect();
    let (done_tx, done_rx) = builder.mailbox::<u64>("coord");

    let mut token_rx = Vec::new();
    let token_tx: Vec<_> = token_mailboxes
        .into_iter()
        .map(|(tx, rx)| {
            token_rx.push(rx);
            tx
        })
        .collect();

    for (i, rx) in token_rx.into_iter().enumerate() {
        let name = format!("r{i}");
        let next_tx = token_tx[(i + 1) % REGIONS].clone();
        let done_tx = done_tx.clone();
        let log = Arc::clone(&log);
        builder = builder.spawn_node(&name.clone(), move || async move {
            let mailbox = rx.bind();
            let next = next_tx.bind_src(&name);
            let done = done_tx.bind_src(&name);
            for k in 0..TOKENS_PER_REGION {
                let id = i as u64 * 100 + k;
                next.send(
                    fwd_delay(id, HOPS),
                    Token {
                        id,
                        hops_left: HOPS,
                    },
                );
            }
            loop {
                let d = mailbox.recv().await;
                log.lock().unwrap().push((
                    d.at_micros,
                    i as u32,
                    d.src_node,
                    d.payload.id,
                    d.payload.hops_left,
                ));
                if d.payload.hops_left == 1 {
                    done.send(15_000, d.payload.id);
                } else {
                    let fwd = Token {
                        id: d.payload.id,
                        hops_left: d.payload.hops_left - 1,
                    };
                    next.send(fwd_delay(fwd.id, fwd.hops_left), fwd);
                }
            }
        });
    }

    let root_log = Arc::clone(&log);
    let mut rt = builder.build();
    rt.block_on(async move {
        let mailbox = done_rx.bind();
        for _ in 0..REGIONS as u64 * TOKENS_PER_REGION {
            let d = mailbox.recv().await;
            root_log
                .lock()
                .unwrap()
                .push((d.at_micros, u32::MAX, d.src_node, d.payload, 0));
        }
    });

    // Abandoned region tasks (still owned by the runtime) keep clones of
    // the Arc alive, so read the log rather than unwrapping it.
    let mut out = log.lock().unwrap().clone();
    out.sort_unstable();
    out
}

#[test]
fn token_ring_is_deterministic_across_worker_counts() {
    let baseline = run_token_ring(1);
    // Every token hop plus every completion notification was recorded.
    let expected = REGIONS as u64 * TOKENS_PER_REGION * (HOPS as u64 + 1);
    assert_eq!(baseline.len() as u64, expected);
    for workers in [2, 4, 8] {
        let other = run_token_ring(workers);
        assert_eq!(
            baseline, other,
            "delivery log diverged at workers={workers}"
        );
    }
}

#[test]
fn same_instant_messages_order_by_sender_then_seq() {
    let mut builder = RuntimeBuilder::new();
    let (tx, rx) = builder.mailbox::<&'static str>("sink");
    let tx_b = tx.clone();
    let mut rt = builder
        .node("sink")
        .node("a")
        .node("b")
        .spawn_node("b", move || async move {
            // Declared second, sends first — sender order must still win.
            let tx = tx_b.bind_src("b");
            tx.send(1_000, "b0");
            tx.send(1_000, "b1");
        })
        .spawn_node("a", {
            let tx = tx.clone();
            move || async move {
                let tx = tx.bind_src("a");
                tx.send(1_000, "a0");
            }
        })
        .build();
    let order = rt.block_on(async move {
        let mailbox = rx.bind();
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(mailbox.recv().await.payload);
        }
        got
    });
    // Node "a" has the lower topology index: (deliver_at, src_node, seq).
    assert_eq!(order, vec!["a0", "b0", "b1"]);
}

#[test]
#[should_panic(expected = "simulation deadlock")]
fn sharded_deadlock_is_detected() {
    let mut rt = RuntimeBuilder::new()
        .node("a")
        .node("b")
        .link("a", "b", Duration::from_millis(10))
        .workers(2)
        .build();
    rt.block_on(std::future::pending::<()>());
}

#[test]
#[should_panic(expected = "worker shard boom")]
fn worker_panic_propagates_to_the_caller() {
    let mut rt = RuntimeBuilder::new()
        .node("a")
        .node("b")
        .link("a", "b", Duration::from_millis(10))
        .workers(2)
        .spawn_node("b", || async {
            geotp_simrt::sleep(Duration::from_millis(1)).await;
            panic!("worker shard boom");
        })
        .build();
    rt.block_on(async {
        geotp_simrt::sleep(Duration::from_secs(1)).await;
    });
}

#[test]
#[should_panic(expected = "below the declared one-way link latency")]
fn cross_shard_send_below_lookahead_panics() {
    let mut builder = RuntimeBuilder::new()
        .node("a")
        .node("b")
        .link("a", "b", Duration::from_millis(20))
        .workers(2);
    let (tx, _rx) = builder.mailbox::<u8>("b");
    let mut rt = builder
        .spawn_node("a", move || async move {
            let tx = tx.bind_src("a");
            tx.send(1_000, 7); // 1ms < the 10ms one-way latency of the link
        })
        .build();
    rt.block_on(async {
        geotp_simrt::sleep(Duration::from_millis(50)).await;
    });
}
