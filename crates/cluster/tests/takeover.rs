//! End-to-end tier tests: crash takeover, epoch fencing (both orders) and
//! open-loop scale-out.

use std::rc::Rc;
use std::time::Duration;

use geotp_cluster::{
    build_tier, run_open_loop, ClusterConfig, CoordinatorCluster, MembershipConfig, OpenLoopConfig,
    TierLayout,
};
use geotp_datasource::{DsConnection, DsOperation, StatementRequest};
use geotp_middleware::{ClientOp, GlobalKey, Partitioner, Protocol, TransactionSpec};
use geotp_net::NodeId;
use geotp_simrt::Runtime;
use geotp_storage::{CostModel, EngineConfig, Row, StorageError, TableId, Xid};
use rand::Rng;

const ROWS_PER_NODE: u64 = 100;

fn gk(row: u64) -> GlobalKey {
    GlobalKey::new(TableId(0), row)
}

fn layout(coordinators: usize, ds_rtts_ms: Vec<u64>) -> TierLayout {
    TierLayout {
        seed: 7,
        coordinators,
        ds_rtts_ms,
        control_rtt_ms: 2,
        engine: EngineConfig {
            lock_wait_timeout: Duration::from_secs(2),
            cost: CostModel::zero(),
            record_history: false,
            ..EngineConfig::default()
        },
        agent_lan_rtt: Duration::ZERO,
    }
}

fn build(coordinators: usize, ds_rtts_ms: Vec<u64>) -> Rc<CoordinatorCluster> {
    let nodes = ds_rtts_ms.len() as u32;
    let (net, sources) = build_tier(&layout(coordinators, ds_rtts_ms));
    for ds in &sources {
        for row in 0..ROWS_PER_NODE {
            let global = ds.index() as u64 * ROWS_PER_NODE + row;
            ds.load(gk(global).storage_key(), Row::int(1_000));
        }
    }
    let mut config = ClusterConfig::new(
        coordinators,
        Protocol::geotp(),
        Partitioner::Range {
            rows_per_node: ROWS_PER_NODE,
            nodes,
        },
    );
    config.analysis_cost = Duration::ZERO;
    config.log_flush_cost = Duration::ZERO;
    config.membership = MembershipConfig {
        lease: Duration::from_millis(1_500),
        heartbeat_interval: Duration::from_millis(500),
    };
    CoordinatorCluster::build(config, net, &sources)
}

fn transfer_spec() -> TransactionSpec {
    TransactionSpec::single_round(vec![
        ClientOp::add(gk(1), -100),
        ClientOp::add(gk(101), 100),
    ])
}

/// The §V-A window across coordinators: dm1 crashes right after flushing a
/// COMMIT decision; the supervisor fences dm1 and dm0 adopts the prepared
/// branches, driving them to the durable (commit) outcome.
#[test]
fn crashed_coordinator_is_fenced_and_its_commit_is_adopted() {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let cluster = build(2, vec![10, 100]);
        cluster.crash_after_next_flush(1);
        let outcome = cluster
            .middleware(1)
            .run_transaction(&transfer_spec())
            .await;
        assert!(!outcome.committed, "the client never got an answer");
        assert!(cluster.middleware(1).is_crashed());

        let reports = cluster.supervise_once().await;
        assert_eq!(reports.len(), 1);
        let report = reports[0];
        assert_eq!((report.dead, report.by), (1, 0));
        assert_eq!(
            report.adopted_committed, 2,
            "both prepared branches follow the durable commit decision"
        );
        assert_eq!(report.adopted_aborted, 0);
        assert!(report.fencing_epoch > cluster.epoch(1));
        assert_eq!(cluster.takeover_count(), 1);

        // The transfer landed atomically despite the coordinator death.
        assert_eq!(
            cluster.sources()[0]
                .engine()
                .peek(gk(1).storage_key())
                .unwrap()
                .int_value(),
            Some(900)
        );
        assert_eq!(
            cluster.sources()[1]
                .engine()
                .peek(gk(101).storage_key())
                .unwrap()
                .int_value(),
            Some(1_100)
        );
        // Nothing is left in doubt anywhere.
        for ds in cluster.sources() {
            assert!(ds.engine().prepared_xids().is_empty());
            assert!(ds.engine().unfinished_xids().is_empty());
        }
        // Sessions that belonged to dm1 re-home onto dm0.
        for session in 0..64u64 {
            assert_eq!(cluster.router().route(session), Some(0));
        }
    });
}

/// Drive two branches of a dm1-owned gtrid to the prepared state through
/// dm1's own (epoch-stamped) connections, without any flushed decision.
async fn prepare_in_doubt(cluster: &Rc<CoordinatorCluster>, gtrid: u64) -> Vec<DsConnection> {
    let dm1 = NodeId::middleware(1);
    let epoch = cluster.epoch(1);
    let mut conns = Vec::new();
    for (i, ds) in cluster.sources().iter().enumerate() {
        let conn = DsConnection::new(
            dm1,
            Rc::clone(ds),
            Rc::clone(cluster.middleware(1).network()),
        )
        .with_epoch(epoch);
        let xid = Xid::new(gtrid, i as u32);
        let resp = conn
            .execute(StatementRequest {
                xid,
                begin: true,
                ops: vec![DsOperation::AddInt {
                    key: gk(i as u64 * ROWS_PER_NODE).storage_key(),
                    col: 0,
                    delta: 500,
                }],
                is_last: false,
                decentralized_prepare: false,
                early_abort: false,
                peers: vec![1 - i as u32],
                trace_parent: None,
            })
            .await;
        assert!(resp.outcome.is_ok());
        assert_eq!(
            conn.prepare(xid).await,
            geotp_datasource::PrepareVote::Prepared
        );
        conns.push(conn);
    }
    conns
}

/// Epoch fencing, order A: takeover completes first, the stale coordinator's
/// COMMIT/ROLLBACK arrive afterwards — every data source rejects them and the
/// adopted outcome (abort: no durable decision) stands.
#[test]
fn stale_decisions_after_takeover_are_rejected_by_every_source() {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let cluster = build(2, vec![10, 100]);
        let gtrid = (1u64 << 48) | 7;
        let conns = prepare_in_doubt(&cluster, gtrid).await;

        // dm1 goes silent (say, GC pause); the cluster declares it dead and
        // dm0 adopts. No decision was durable, so the branches abort.
        cluster.membership().declare_dead(1);
        let report = cluster.take_over(1, 0).await;
        assert_eq!(report.adopted_aborted, 2);
        assert_eq!(report.adopted_committed, 0);

        // The walking-dead dm1 wakes up and tries to finish "its"
        // transaction. The commit log is sealed...
        let fenced = cluster
            .commit_log(1)
            .try_flush_decision(gtrid, geotp_middleware::Decision::Commit, cluster.epoch(1))
            .await;
        assert!(fenced.is_err(), "the sealed log rejects the stale epoch");
        // ...and every data source rejects both COMMIT and ROLLBACK.
        for (i, conn) in conns.iter().enumerate() {
            let xid = Xid::new(gtrid, i as u32);
            assert!(
                matches!(
                    conn.commit(xid, false).await,
                    Err(StorageError::InvalidState { .. })
                ),
                "ds{i} accepted a fenced COMMIT"
            );
            assert!(
                matches!(
                    conn.rollback(xid).await,
                    Err(StorageError::InvalidState { .. })
                ),
                "ds{i} accepted a fenced ROLLBACK"
            );
        }
        // The adopted outcome won: the +500s never became visible.
        for (i, ds) in cluster.sources().iter().enumerate() {
            assert_eq!(
                ds.engine()
                    .peek(gk(i as u64 * ROWS_PER_NODE).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1_000)
            );
            assert!(ds.engine().prepared_xids().is_empty());
        }
    });
}

/// Epoch fencing, order B: the fence is installed first, the stale COMMIT
/// arrives *before* the adoption sweep — it must already bounce, and the
/// adoption then resolves the branch. The adopted outcome wins in this
/// interleaving too.
#[test]
fn stale_commit_between_fence_and_adoption_is_rejected() {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let cluster = build(2, vec![10, 100]);
        let gtrid = (1u64 << 48) | 9;
        let conns = prepare_in_doubt(&cluster, gtrid).await;

        // Manual takeover, step by step (the public pieces `take_over`
        // composes), so the stale COMMIT can be injected mid-way.
        cluster.membership().declare_dead(1);
        let fencing_epoch = cluster.membership().fence(1);
        cluster.commit_log(1).fence(fencing_epoch);
        for ds in cluster.sources() {
            ds.fence_coordinator(NodeId::middleware(1), fencing_epoch);
        }

        // Stale COMMIT lands after the fence but before any adoption: every
        // source rejects it, so it cannot race the adoption to a commit.
        for (i, conn) in conns.iter().enumerate() {
            let xid = Xid::new(gtrid, i as u32);
            assert!(
                matches!(
                    conn.commit(xid, false).await,
                    Err(StorageError::InvalidState { .. })
                ),
                "ds{i} accepted a fenced COMMIT before adoption"
            );
        }

        // Adoption now resolves the still-prepared branches: no durable
        // decision ⇒ abort, and the stale coordinator's +500s are undone.
        let (committed, aborted) = cluster
            .middleware(0)
            .recover_owned_by(1, cluster.commit_log(1))
            .await;
        assert_eq!((committed, aborted), (0, 2));
        for (i, ds) in cluster.sources().iter().enumerate() {
            assert_eq!(
                ds.engine()
                    .peek(gk(i as u64 * ROWS_PER_NODE).storage_key())
                    .unwrap()
                    .int_value(),
                Some(1_000)
            );
            assert!(ds.engine().prepared_xids().is_empty());
        }
    });
}

/// Scale-out: under a fixed open-loop offered load that saturates one
/// coordinator's capacity, adding coordinators increases completed
/// throughput and collapses the queueing tail.
#[test]
fn open_loop_throughput_scales_with_coordinators() {
    fn run(coordinators: usize) -> (f64, Duration) {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let cluster = build(coordinators, vec![10, 60]);
            let mut config = ClusterConfig::new(
                coordinators,
                Protocol::geotp(),
                Partitioner::Range {
                    rows_per_node: ROWS_PER_NODE,
                    nodes: 2,
                },
            );
            config.max_inflight = 8;
            config.analysis_cost = Duration::from_micros(200);
            config.log_flush_cost = Duration::from_micros(200);
            // Rebuild with the capacity gate (build() above is uncapped).
            let cluster = CoordinatorCluster::build(
                config,
                Rc::clone(cluster.middleware(0).network()),
                cluster.sources(),
            );
            let report = run_open_loop(
                &cluster,
                |rng| {
                    let src = rng.gen_range(0..2 * ROWS_PER_NODE);
                    let dst = rng.gen_range(0..2 * ROWS_PER_NODE);
                    TransactionSpec::single_round(vec![
                        ClientOp::add(gk(src), -1),
                        ClientOp::add(gk(dst), 1),
                    ])
                },
                OpenLoopConfig {
                    arrivals_per_sec: 600,
                    sessions: 128,
                    warmup: Duration::from_millis(500),
                    measure: Duration::from_secs(3),
                    seed: 5,
                },
            )
            .await;
            (report.throughput, report.p99_latency)
        })
    }
    let (tput1, p99_1) = run(1);
    let (tput2, p99_2) = run(2);
    assert!(
        tput2 > tput1 * 1.5,
        "2 coordinators should nearly double a saturated tier: {tput1:.0} -> {tput2:.0} txn/s"
    );
    assert!(
        p99_1 > p99_2,
        "the saturated single coordinator must show the queueing tail: {p99_1:?} vs {p99_2:?}"
    );
}
