//! Session semantics through the tier's front door: mid-transaction
//! coordinator takeover (in-flight `Txn` aborts with a *retryable* error,
//! the session re-routes, the retry commits), session affinity surviving a
//! rebalance, and the capacity gate holding for a transaction's lifetime.

use std::rc::Rc;
use std::time::Duration;

use geotp_cluster::{build_tier, ClusterConfig, CoordinatorCluster, MembershipConfig, TierLayout};
use geotp_middleware::{AbortReason, ClientOp, GlobalKey, Partitioner, Protocol, TransactionSpec};
use geotp_simrt::Runtime;
use geotp_storage::{CostModel, EngineConfig, Row, TableId};

const ROWS_PER_NODE: u64 = 100;

fn gk(row: u64) -> GlobalKey {
    GlobalKey::new(TableId(0), row)
}

fn build(coordinators: usize) -> Rc<CoordinatorCluster> {
    let ds_rtts_ms = vec![10, 100];
    let nodes = ds_rtts_ms.len() as u32;
    let (net, sources) = build_tier(&TierLayout {
        seed: 7,
        coordinators,
        ds_rtts_ms,
        control_rtt_ms: 2,
        engine: EngineConfig {
            lock_wait_timeout: Duration::from_secs(2),
            cost: CostModel::zero(),
            record_history: false,
            ..EngineConfig::default()
        },
        agent_lan_rtt: Duration::ZERO,
    });
    for ds in &sources {
        for row in 0..ROWS_PER_NODE {
            let global = ds.index() as u64 * ROWS_PER_NODE + row;
            ds.load(gk(global).storage_key(), Row::int(1_000));
        }
    }
    let mut config = ClusterConfig::new(
        coordinators,
        Protocol::geotp(),
        Partitioner::Range {
            rows_per_node: ROWS_PER_NODE,
            nodes,
        },
    );
    config.analysis_cost = Duration::ZERO;
    config.log_flush_cost = Duration::ZERO;
    config.membership = MembershipConfig {
        lease: Duration::from_millis(1_500),
        heartbeat_interval: Duration::from_millis(500),
    };
    CoordinatorCluster::build(config, net, &sources)
}

/// A session id routed to the given coordinator on a healthy tier.
fn session_on(cluster: &Rc<CoordinatorCluster>, coordinator: u32) -> u64 {
    (0..)
        .find(|s| cluster.router().route(*s) == Some(coordinator))
        .expect("some session hashes to every coordinator")
}

#[test]
fn mid_transaction_takeover_aborts_retryably_and_the_retry_commits() {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let cluster = build(2);
        let session_id = session_on(&cluster, 1);
        let mut session = cluster.connect(session_id);

        // Round 1 lands on dm1 and holds locks on both branches.
        let mut txn = session.begin().await.unwrap();
        txn.execute(&[ClientOp::add(gk(1), -100)]).await.unwrap();
        txn.execute(&[ClientOp::add(gk(101), 100)]).await.unwrap();

        // dm1 dies mid-transaction; the supervisor fences it and dm0 adopts.
        cluster.crash(1);
        let reports = cluster.supervise_once().await;
        assert_eq!(reports.len(), 1);
        assert_eq!((reports[0].dead, reports[0].by), (1, 0));

        // The in-flight handle aborts with a *retryable* error.
        let error = txn
            .execute_last(&[ClientOp::Read(gk(2))])
            .await
            .expect_err("the coordinator died under the transaction");
        assert!(error.retryable, "takeover aborts must invite a retry");
        assert_eq!(error.reason, AbortReason::CoordinatorCrashed);
        drop(txn);

        // The session re-routes to the survivor and the retry commits.
        assert_eq!(cluster.router().route(session_id), Some(0));
        let retry = session
            .run_spec(&TransactionSpec::multi_round(vec![
                vec![ClientOp::add(gk(1), -100)],
                vec![ClientOp::add(gk(101), 100)],
            ]))
            .await;
        assert!(retry.committed, "{:?}", retry.abort_reason);
        // Atomicity across the takeover: the aborted attempt left nothing.
        assert_eq!(
            cluster.sources()[0]
                .engine()
                .peek(gk(1).storage_key())
                .unwrap()
                .int_value(),
            Some(900)
        );
        assert_eq!(
            cluster.sources()[1]
                .engine()
                .peek(gk(101).storage_key())
                .unwrap()
                .int_value(),
            Some(1100)
        );
    });
}

#[test]
fn session_affinity_survives_rebalance_and_returns_home() {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let cluster = build(3);
        let session_id = session_on(&cluster, 1);
        let mut session = cluster.connect(session_id);
        assert!(
            session
                .run_spec(&TransactionSpec::single_round(vec![ClientOp::add(
                    gk(1),
                    1
                )]))
                .await
                .committed
        );
        assert_eq!(cluster.router().route(session_id), Some(1));

        // Home coordinator dies: the session moves to a survivor, commits
        // there, and *stays* there across transactions (affinity).
        cluster.crash(1);
        cluster.supervise_once().await;
        let moved_to = cluster.router().route(session_id).unwrap();
        assert_ne!(moved_to, 1);
        for _ in 0..3 {
            assert!(
                session
                    .run_spec(&TransactionSpec::single_round(vec![ClientOp::add(
                        gk(1),
                        1
                    )]))
                    .await
                    .committed
            );
            assert_eq!(
                cluster.router().route(session_id),
                Some(moved_to),
                "a failed-over session must not bounce between survivors"
            );
        }

        // The home slot restarts: exactly this session's home traffic moves
        // back, and the next transaction commits on the reborn coordinator.
        cluster.restart(1).await;
        assert_eq!(cluster.router().route(session_id), Some(1));
        let outcome = session
            .run_spec(&TransactionSpec::single_round(vec![ClientOp::add(
                gk(1),
                1,
            )]))
            .await;
        assert!(outcome.committed);
        assert_eq!(
            cluster.sources()[0]
                .engine()
                .peek(gk(1).storage_key())
                .unwrap()
                .int_value(),
            Some(1005)
        );
    });
}

#[test]
fn worker_permit_is_held_for_the_whole_transaction() {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let ds_rtts = vec![10, 100];
        let nodes = ds_rtts.len() as u32;
        let (net, sources) = build_tier(&TierLayout {
            seed: 7,
            coordinators: 1,
            ds_rtts_ms: ds_rtts,
            control_rtt_ms: 2,
            engine: EngineConfig {
                lock_wait_timeout: Duration::from_secs(2),
                cost: CostModel::zero(),
                record_history: false,
                ..EngineConfig::default()
            },
            agent_lan_rtt: Duration::ZERO,
        });
        for ds in &sources {
            for row in 0..ROWS_PER_NODE {
                let global = ds.index() as u64 * ROWS_PER_NODE + row;
                ds.load(gk(global).storage_key(), Row::int(1_000));
            }
        }
        let mut config = ClusterConfig::new(
            1,
            Protocol::geotp(),
            Partitioner::Range {
                rows_per_node: ROWS_PER_NODE,
                nodes,
            },
        );
        config.analysis_cost = Duration::ZERO;
        config.log_flush_cost = Duration::ZERO;
        config.max_inflight = 1;
        let cluster = CoordinatorCluster::build(config, net, &sources);

        // Session A begins but does not conclude: it owns the only permit.
        let mut a = cluster.connect(1);
        let mut txn_a = a.begin().await.unwrap();
        txn_a.execute(&[ClientOp::add(gk(5), 1)]).await.unwrap();

        // Session B's begin queues on the capacity gate until A concludes.
        let cluster_b = Rc::clone(&cluster);
        let b = geotp_simrt::spawn(async move {
            let mut b = cluster_b.connect(2);
            b.run_spec(&TransactionSpec::single_round(vec![ClientOp::add(
                gk(6),
                1,
            )]))
            .await
        });
        geotp_simrt::sleep(Duration::from_millis(500)).await;
        assert_eq!(
            cluster.middleware(0).live_transactions(),
            1,
            "B must still be queued on the worker gate while A is live"
        );
        let outcome_a = txn_a.commit().await;
        assert!(outcome_a.committed);
        let outcome_b = b.await;
        assert!(outcome_b.committed, "B runs once A's permit frees");
    });
}
