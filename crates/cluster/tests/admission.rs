//! Graceful degradation through the tier's front door: bounded-queue
//! admission (shed vs queue vs deadline-expiry), queue time landing in the
//! latency breakdown, deterministic retry backoff with budget exhaustion,
//! and the idle-session reaper's clean-retry contract.

use std::rc::Rc;
use std::time::Duration;

use geotp_cluster::{
    build_tier, AdmissionPolicy, ClusterConfig, CoordinatorCluster, SessionReaperConfig, TierLayout,
};
use geotp_middleware::session::{RetryPolicy, SessionService};
use geotp_middleware::{AbortReason, ClientOp, GlobalKey, Partitioner, Protocol, TransactionSpec};
use geotp_simrt::Runtime;
use geotp_storage::{CostModel, EngineConfig, Row, TableId};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS_PER_NODE: u64 = 100;

/// `Txn` carries no `Debug` impl, so unwrap the error arm by hand.
macro_rules! expect_begin_err {
    ($begin:expr, $msg:literal) => {
        match $begin {
            Err(error) => error,
            Ok(_) => panic!($msg),
        }
    };
}

fn gk(row: u64) -> GlobalKey {
    GlobalKey::new(TableId(0), row)
}

fn transfer(row: u64) -> TransactionSpec {
    TransactionSpec::single_round(vec![ClientOp::add(gk(row), 1)])
}

fn build_with(
    coordinators: usize,
    configure: impl FnOnce(&mut ClusterConfig),
) -> Rc<CoordinatorCluster> {
    let ds_rtts_ms = vec![10, 100];
    let nodes = ds_rtts_ms.len() as u32;
    let (net, sources) = build_tier(&TierLayout {
        seed: 7,
        coordinators,
        ds_rtts_ms,
        control_rtt_ms: 2,
        engine: EngineConfig {
            lock_wait_timeout: Duration::from_secs(2),
            cost: CostModel::zero(),
            record_history: false,
            ..EngineConfig::default()
        },
        agent_lan_rtt: Duration::ZERO,
    });
    for ds in &sources {
        for row in 0..ROWS_PER_NODE {
            let global = ds.index() as u64 * ROWS_PER_NODE + row;
            ds.load(gk(global).storage_key(), Row::int(1_000));
        }
    }
    let mut config = ClusterConfig::new(
        coordinators,
        Protocol::geotp(),
        Partitioner::Range {
            rows_per_node: ROWS_PER_NODE,
            nodes,
        },
    );
    config.analysis_cost = Duration::ZERO;
    config.log_flush_cost = Duration::ZERO;
    configure(&mut config);
    CoordinatorCluster::build(config, net, &sources)
}

#[test]
fn full_queue_sheds_begin_with_overloaded_and_retry_hint() {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let cluster = build_with(1, |config| {
            config.max_inflight = 1;
            config.admission = AdmissionPolicy::bounded(0, Duration::from_millis(250));
        });
        // A holds the only worker permit.
        let mut a = cluster.connect(1);
        let mut txn_a = a.begin().await.unwrap();
        txn_a.execute(&[ClientOp::add(gk(5), 1)]).await.unwrap();

        // With a zero-length queue, B is shed instantly — an explicit,
        // retryable overload with a retry-after hint, not a hang.
        let mut b = cluster.connect(2);
        let error = expect_begin_err!(b.begin().await, "queue of 0 must shed");
        assert_eq!(error.reason, AbortReason::Overloaded);
        assert!(error.retryable);
        assert!(error.outcome.retry_after.unwrap() >= Duration::from_millis(50));
        assert_eq!(error.outcome.gtrid, 0, "no transaction ever started");
        assert_eq!(cluster.load(0).shed_queue_full, 1);
        assert_eq!(cluster.shed_count(), 1);

        let outcome = txn_a.commit().await;
        assert!(outcome.committed);
        // Capacity freed: B's next begin is admitted on the fast path.
        let retry = b.run_spec(&transfer(6)).await;
        assert!(retry.committed);
    });
}

#[test]
fn queue_deadline_expiry_sheds_while_a_freed_permit_admits_fifo() {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let cluster = build_with(1, |config| {
            config.max_inflight = 1;
            config.admission = AdmissionPolicy::bounded(8, Duration::from_millis(150));
        });
        let mut a = cluster.connect(1);
        let mut txn_a = a.begin().await.unwrap();
        txn_a.execute(&[ClientOp::add(gk(5), 1)]).await.unwrap();

        // B queues; its 150ms queue-time deadline expires before A concludes.
        let cluster_b = Rc::clone(&cluster);
        let b = geotp_simrt::spawn(async move {
            let started = geotp_simrt::now();
            let mut b = cluster_b.connect(2);
            let error = expect_begin_err!(b.begin().await, "deadline must expire");
            (error, geotp_simrt::now().duration_since(started))
        });
        let (error, waited) = b.await;
        assert_eq!(error.reason, AbortReason::Overloaded);
        assert_eq!(
            waited,
            Duration::from_millis(150),
            "shed exactly at the deadline"
        );
        assert_eq!(cluster.load(0).shed_deadline, 1);

        // C queues and A concludes within C's deadline: C is admitted and
        // the wait shows up as queue_time in its breakdown and latency.
        let cluster_c = Rc::clone(&cluster);
        let c = geotp_simrt::spawn(async move {
            let mut c = cluster_c.connect(3);
            c.run_spec(&transfer(6)).await
        });
        geotp_simrt::sleep(Duration::from_millis(50)).await;
        assert_eq!(cluster.load(0).queue_depth, 1, "C is queued");
        let outcome_a = txn_a.commit().await;
        assert!(outcome_a.committed);
        let outcome_c = c.await;
        assert!(outcome_c.committed);
        assert!(
            outcome_c.breakdown.queue_time >= Duration::from_millis(50),
            "queue wait must land in the breakdown, got {:?}",
            outcome_c.breakdown.queue_time
        );
        assert!(
            outcome_c.latency >= outcome_c.breakdown.queue_time,
            "end-to-end latency includes the queue wait"
        );
    });
}

#[test]
fn retry_budget_exhaustion_surfaces_the_original_abort_reason() {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let cluster = build_with(1, |config| {
            config.max_inflight = 1;
            config.admission = AdmissionPolicy::bounded(0, Duration::from_millis(250));
        });
        // Park a transaction on the only permit for the whole test.
        let mut a = cluster.connect(1);
        let mut txn_a = a.begin().await.unwrap();
        txn_a.execute(&[ClientOp::add(gk(5), 1)]).await.unwrap();

        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(99);
        let mut b = cluster.connect(2);
        let started = geotp_simrt::now();
        let retried = b
            .run_spec_with_retries(&transfer(6), Duration::ZERO, policy, &mut rng)
            .await;
        assert_eq!(retried.attempts, 3, "budget fully spent");
        assert_eq!(
            retried.outcome.abort_reason,
            Some(AbortReason::Overloaded),
            "exhaustion surfaces the original abort reason"
        );
        assert!(!retried.outcome.committed);
        assert_eq!(
            geotp_simrt::now().duration_since(started),
            retried.backoff,
            "sheds are instant: all elapsed time is backoff"
        );
        // The backoff honoured the shed's retry-after hint (>= 50ms each).
        assert!(retried.backoff >= Duration::from_millis(100));
        assert_eq!(cluster.shed_count(), 3);
        drop(txn_a);
    });
}

#[test]
fn backoff_schedule_is_deterministic_per_seed() {
    let policy = RetryPolicy::default();
    let schedule = |seed: u64| -> Vec<Duration> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..6)
            .map(|retry| policy.backoff(retry, &mut rng))
            .collect()
    };
    assert_eq!(schedule(42), schedule(42), "same seed, same schedule");
    assert_ne!(schedule(42), schedule(43), "jitter depends on the seed");
    // Exponential shape survives the jitter (jitter 0.5 => factor in
    // [0.75, 1.25), while the base doubles every retry).
    let s = schedule(7);
    for (i, pause) in s.iter().enumerate() {
        let raw = policy.base_backoff * 2u32.pow(i as u32);
        let raw = raw.min(policy.max_backoff);
        assert!(*pause >= raw.mul_f64(0.75) && *pause < raw.mul_f64(1.25));
    }
    // A fixed policy consumes no RNG and never varies.
    let fixed = RetryPolicy::fixed(40, Duration::from_millis(250));
    let mut rng = StdRng::seed_from_u64(1);
    for retry in 0..5 {
        assert_eq!(fixed.backoff(retry, &mut rng), Duration::from_millis(250));
    }
}

#[test]
fn reaped_session_gets_clean_retryable_error_and_reconnect_recovers() {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let cluster = build_with(1, |_| {});
        let middleware = cluster.middleware(0);

        // A middleware-level session (registered once at connect): after the
        // reaper evicts it, its next begin fails *cleanly* and retryably.
        let service = middleware.session_service();
        let mut session = service.connect(7);
        assert!(session.run_spec(&transfer(3)).await.committed);
        geotp_simrt::sleep(Duration::from_secs(60)).await;
        let reaped = middleware.reap_idle_sessions(Duration::from_secs(30));
        assert_eq!(reaped, vec![7]);
        assert_eq!(middleware.active_sessions(), 0);
        let error = expect_begin_err!(session.begin().await, "session was reaped");
        assert_eq!(error.reason, AbortReason::SessionExpired);
        assert!(error.retryable, "a reaped session invites a clean retry");
        assert_eq!(error.outcome.gtrid, 0);
        // Reconnecting re-registers the session and the retry commits.
        let mut session = service.connect(7);
        assert!(session.run_spec(&transfer(3)).await.committed);

        // A session with a live transaction is never reaped (session 7 is
        // idle again by now and goes; busy session 8 stays).
        let mut busy = service.connect(8);
        let txn = busy.begin().await.unwrap();
        geotp_simrt::sleep(Duration::from_secs(60)).await;
        let reaped = middleware.reap_idle_sessions(Duration::from_secs(30));
        assert!(!reaped.contains(&8), "in-flight sessions are not reaped");
        assert_eq!(middleware.active_sessions(), 1);
        drop(txn);
    });
}

#[test]
fn cluster_reaper_task_keeps_registry_lean_and_begin_recovers_transparently() {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let cluster = build_with(2, |config| {
            config.session_reaper = Some(SessionReaperConfig {
                interval: Duration::from_millis(500),
                idle_for: Duration::from_secs(2),
            });
        });
        cluster.start();

        // A burst of sessions each runs one transaction, then goes idle.
        let mut sessions = Vec::new();
        for id in 0..32u64 {
            let mut session = cluster.connect(id);
            assert!(session.run_spec(&transfer(id % 90)).await.committed);
            sessions.push(session);
        }
        let registered: usize = (0..2)
            .map(|c| cluster.middleware(c).active_sessions())
            .sum();
        assert_eq!(registered, 32);
        assert_eq!(cluster.router().affinity_len(), 32);

        // Idle long enough for the reaper task to evict all of them.
        geotp_simrt::sleep(Duration::from_secs(5)).await;
        assert_eq!(cluster.reaped_sessions(), 32);
        let registered: usize = (0..2)
            .map(|c| cluster.middleware(c).active_sessions())
            .sum();
        assert_eq!(registered, 0, "registries drained");
        assert_eq!(cluster.router().affinity_len(), 0, "affinity drained");

        // The cluster front door reconnects per begin, so a reaped session's
        // next transaction just works — no client-visible error.
        assert!(sessions[5].run_spec(&transfer(17)).await.committed);

        cluster.stop();
        geotp_simrt::sleep(Duration::from_secs(2)).await;
    });
}
