//! # geotp-cluster — the scale-out middleware tier
//!
//! The paper's middleware is a single coordinator in front of the
//! geo-distributed data sources; this crate promotes it to a *tier*: N
//! coordinators sharing the same data sources, scaled out behind a
//! client-facing session router, with the failure handling a production
//! deployment needs:
//!
//! * **membership** ([`MembershipTable`]) — a deterministic lease/epoch table
//!   on the simulated network: coordinators renew leases against a control
//!   node; a partitioned or crashed coordinator's lease lapses and the
//!   cluster declares it dead;
//! * **routing** ([`SessionRouter`]) — consistent hashing with session
//!   affinity: sessions stick to their coordinator while it lives, and only
//!   a dead coordinator's sessions move on failover;
//! * **fencing** — gtrid spaces are partitioned per coordinator (the index
//!   rides the gtrid's upper bits), every decision is epoch-stamped, and a
//!   declared-dead coordinator's epoch is sealed out of its commit log and
//!   every data source before anything is adopted — a split-brained
//!   coordinator can keep trying, but nothing it decides is accepted;
//! * **peer takeover** ([`CoordinatorCluster::take_over`]) — a surviving
//!   coordinator adopts the dead peer's prepared/in-doubt branches via
//!   gtrid-scoped `XA RECOVER` and drives them to completion from the sealed
//!   commit log, while the data sources abort the dead peer's unprepared
//!   branches (and nobody else's);
//! * **open-loop load** ([`run_open_loop`]) — a fixed-arrival-rate driver
//!   that exposes the tier's capacity (and its queueing tail) instead of the
//!   closed-loop ceiling, for the scale-out experiments;
//! * **graceful degradation** ([`AdmissionGate`]) — bounded FIFO admission
//!   queues with queue-time deadlines and explicit load shedding per
//!   coordinator, load-aware routing away from saturated coordinators, and
//!   an idle-session reaper ([`SessionReaperConfig`]) keeping per-session
//!   state memory-lean under flash crowds.

pub mod admission;
pub mod cluster;
pub mod deploy;
pub mod membership;
pub mod openloop;
pub mod ring;

pub use admission::{
    AdmissionGate, AdmissionPolicy, AdmissionReject, AdmissionTicket, CoordinatorLoad, ShedReason,
};
pub use cluster::{
    ClusterConfig, ClusterSessionService, CoordinatorCluster, RoutedOutcome, SessionReaperConfig,
    TakeoverReport,
};
pub use deploy::{build_tier, TierLayout};
pub use membership::{MembershipConfig, MembershipTable, RenewError, SlotState};
pub use openloop::{run_open_loop, OpenLoopConfig, OpenLoopReport};
pub use ring::SessionRouter;
