//! Deployment helper: wire the network and data sources for a tier.
//!
//! Both the chaos cluster harness and the scale-out experiments need the same
//! physical layout — every coordinator linked to every data source, a control
//! node for the membership heartbeats, data sources inter-linked for the
//! geo-agent early-abort traffic — differing only in engine configuration and
//! what gets plugged into the fault plane afterwards.

use std::rc::Rc;
use std::time::Duration;

use geotp_datasource::{DataSource, DataSourceConfig, Dialect};
use geotp_net::{Network, NetworkBuilder, NodeId};
use geotp_storage::EngineConfig;

/// Physical layout of a cluster deployment.
#[derive(Debug, Clone)]
pub struct TierLayout {
    /// Seed for network latency sampling.
    pub seed: u64,
    /// Number of coordinator slots (every one gets the same RTT vector — the
    /// tier is assumed co-located, as proxy fleets are).
    pub coordinators: usize,
    /// Coordinator↔data-source RTTs in milliseconds, one per source.
    pub ds_rtts_ms: Vec<u64>,
    /// Coordinator↔control-node RTT in milliseconds (the membership service
    /// lives near the tier).
    pub control_rtt_ms: u64,
    /// Storage-engine configuration applied to every source.
    pub engine: EngineConfig,
    /// LAN RTT between each geo-agent and its co-located database.
    pub agent_lan_rtt: Duration,
}

/// Build the latency matrix and the data sources for `layout`:
/// `dm_i ↔ ds_j` at the configured RTT, `dm_i ↔ ctl0` at the control RTT,
/// `ds_i ↔ ds_j` at the max of the two endpoints' coordinator RTTs (the
/// convention the facade's `ClusterBuilder` uses), geo-agent peers registered.
pub fn build_tier(layout: &TierLayout) -> (Rc<Network>, Vec<Rc<DataSource>>) {
    let control = NodeId::control(0);
    let mut net_builder =
        NetworkBuilder::new(layout.seed).default_lan_rtt(Duration::from_micros(500));
    for dm in 0..layout.coordinators as u32 {
        let dm_node = NodeId::middleware(dm);
        for (j, rtt) in layout.ds_rtts_ms.iter().enumerate() {
            net_builder = net_builder.static_link(
                dm_node,
                NodeId::data_source(j as u32),
                Duration::from_millis(*rtt),
            );
        }
        net_builder = net_builder.static_link(
            dm_node,
            control,
            Duration::from_millis(layout.control_rtt_ms),
        );
    }
    for i in 0..layout.ds_rtts_ms.len() {
        for j in (i + 1)..layout.ds_rtts_ms.len() {
            let rtt = layout.ds_rtts_ms[i].max(layout.ds_rtts_ms[j]);
            net_builder = net_builder.static_link(
                NodeId::data_source(i as u32),
                NodeId::data_source(j as u32),
                Duration::from_millis(rtt),
            );
        }
    }
    let net = net_builder.build();

    let mut sources = Vec::with_capacity(layout.ds_rtts_ms.len());
    for j in 0..layout.ds_rtts_ms.len() as u32 {
        let mut cfg = DataSourceConfig::new(NodeId::data_source(j));
        cfg.dialect = Dialect::MySql;
        cfg.engine = layout.engine;
        cfg.agent_lan_rtt = layout.agent_lan_rtt;
        sources.push(DataSource::new(cfg, Rc::clone(&net)));
    }
    for a in &sources {
        for b in &sources {
            if a.index() != b.index() {
                a.register_peer(b);
            }
        }
    }
    (net, sources)
}
