//! Open-loop load driver for the cluster tier.
//!
//! The paper's closed-loop terminals (and `geotp-workloads::driver`) measure
//! a system that is never offered more load than it can absorb — each
//! terminal waits for its outcome before submitting again, so a saturated
//! coordinator simply slows the terminals down and the throughput ceiling of
//! the *tier* stays invisible. The open-loop driver severs that feedback:
//! transactions arrive on a fixed schedule regardless of completions, queue
//! on the routed coordinator's capacity gate, and latency is measured from
//! *arrival* (queueing included). Under-provisioned tiers show up exactly the
//! way they do in production: completed throughput caps at tier capacity and
//! p99 latency explodes with the backlog.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use geotp_middleware::TransactionSpec;
use geotp_simrt::{join_all, now, sleep_until, spawn};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cluster::CoordinatorCluster;

/// Open-loop drive parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopConfig {
    /// Offered load: arrivals per second of virtual time.
    pub arrivals_per_sec: u64,
    /// Distinct client sessions, cycled round-robin over arrivals (sessions
    /// are the unit of router affinity).
    pub sessions: u64,
    /// Arrivals during warm-up are executed but not measured.
    pub warmup: Duration,
    /// Measurement window (starts after `warmup`).
    pub measure: Duration,
    /// Seed for the workload generator stream.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            arrivals_per_sec: 500,
            sessions: 256,
            warmup: Duration::from_millis(500),
            measure: Duration::from_secs(4),
            seed: 42,
        }
    }
}

/// What an open-loop run measured. Completions are attributed to the window
/// they *finish* in (goodput): a saturated tier shows its service capacity,
/// not the offered rate, and the backlog shows up in the latency tail.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Transactions offered (arrivals) during the measurement window.
    pub offered: u64,
    /// Transactions whose commit completed inside the measurement window.
    pub committed: u64,
    /// Definite aborts completing inside the window.
    pub aborted: u64,
    /// Arrivals (any time) that found no live coordinator.
    pub refused: u64,
    /// Arrivals (any time) shed by admission control (bounded queue full or
    /// queue-time deadline expired). Sheds are the tier degrading *on
    /// purpose*: they are excluded from `aborted` and from the latency
    /// population, exactly like refusals.
    pub overloaded: u64,
    /// Committed transactions per second of the measurement window.
    pub throughput: f64,
    /// Mean arrival-to-outcome latency of measured committed transactions
    /// (queueing on the coordinator's capacity gate included).
    pub mean_latency: Duration,
    /// p99 arrival-to-outcome latency of measured committed transactions.
    pub p99_latency: Duration,
}

/// Drive `cluster` open-loop: `make_spec` generates each arrival's
/// transaction from a deterministic stream, arrivals are spaced evenly at
/// `config.arrivals_per_sec`, and every arrival runs as its own task (no
/// feedback from completions to arrivals).
pub async fn run_open_loop(
    cluster: &Rc<CoordinatorCluster>,
    make_spec: impl FnMut(&mut StdRng) -> TransactionSpec,
    config: OpenLoopConfig,
) -> OpenLoopReport {
    let mut make_spec = make_spec;
    let start = now();
    let measure_start = start + config.warmup;
    let end = measure_start + config.measure;
    let interval_micros = (1_000_000 / config.arrivals_per_sec).max(1);
    let total_arrivals = ((config.warmup + config.measure).as_micros() as u64) / interval_micros;

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0b5e_55ed_0b5e_55ed);
    let latencies: Rc<RefCell<Vec<Duration>>> = Rc::new(RefCell::new(Vec::new()));
    let committed = Rc::new(std::cell::Cell::new(0u64));
    let aborted = Rc::new(std::cell::Cell::new(0u64));
    let refused = Rc::new(std::cell::Cell::new(0u64));
    let overloaded = Rc::new(std::cell::Cell::new(0u64));
    let mut offered = 0u64;
    let mut tasks = Vec::with_capacity(total_arrivals as usize);

    for arrival in 0..total_arrivals {
        let at = start + Duration::from_micros(arrival * interval_micros);
        sleep_until(at).await;
        let spec = make_spec(&mut rng);
        let session = arrival % config.sessions;
        if at >= measure_start && at < end {
            offered += 1;
        }
        let cluster = Rc::clone(cluster);
        let latencies = Rc::clone(&latencies);
        let committed = Rc::clone(&committed);
        let aborted = Rc::clone(&aborted);
        let refused = Rc::clone(&refused);
        let overloaded = Rc::clone(&overloaded);
        tasks.push(spawn(async move {
            let arrived = now();
            // Each arrival drives its transaction through the session front
            // door (session affinity + per-coordinator worker capacity live
            // behind `begin`).
            let mut conn = cluster.connect(session);
            let outcome = conn.run_spec(&spec).await;
            if outcome.is_refusal() {
                // Refused: no live coordinator took the session's begin.
                refused.set(refused.get() + 1);
                return;
            }
            if outcome.is_overloaded() {
                // Shed by admission control: an explicit, fast rejection —
                // the degradation the bounded queue exists to produce.
                overloaded.set(overloaded.get() + 1);
                return;
            }
            let finished = now();
            if finished < measure_start || finished >= end {
                return;
            }
            if outcome.committed {
                committed.set(committed.get() + 1);
                latencies
                    .borrow_mut()
                    .push(finished.duration_since(arrived));
            } else {
                aborted.set(aborted.get() + 1);
            }
        }));
    }
    // Drain the backlog so no task outlives the run (completions after the
    // window are executed but not counted).
    join_all(tasks).await;

    let mut lats = latencies.borrow_mut();
    lats.sort_unstable();
    let mean = if lats.is_empty() {
        Duration::ZERO
    } else {
        lats.iter().sum::<Duration>() / lats.len() as u32
    };
    let p99 = lats
        .get(((lats.len() as f64 * 0.99).ceil() as usize).saturating_sub(1))
        .copied()
        .unwrap_or(Duration::ZERO);
    OpenLoopReport {
        offered,
        committed: committed.get(),
        aborted: aborted.get(),
        refused: refused.get(),
        overloaded: overloaded.get(),
        throughput: committed.get() as f64 / config.measure.as_secs_f64(),
        mean_latency: mean,
        p99_latency: p99,
    }
}
