//! The cluster membership table: leases, epochs and fencing.
//!
//! A tiny deterministic model of the consensus-backed membership service a
//! production middleware tier would keep in etcd/ZooKeeper: every coordinator
//! holds a *lease* it must renew before expiry, and every grant carries a
//! monotonically increasing *epoch*. The table itself is an in-memory object
//! (like [`geotp_middleware::CommitLog`], it models replicated storage that
//! survives any single process); what makes it honest is that renewals travel
//! the simulated network to the control node — a partitioned coordinator
//! cannot renew, its lease lapses, and the cluster declares it dead even
//! though the process is still running. Fencing (the epoch bump recorded here
//! and broadcast to the commit log and every data source) is what keeps that
//! split brain harmless: the stale coordinator can keep *trying*, but nothing
//! at a lower epoch is accepted anywhere.

use std::cell::RefCell;
use std::time::Duration;

use geotp_simrt::{now, SimInstant};

/// Health of one coordinator slot as the membership table sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Lease current (as of the last [`MembershipTable::expire_stale`] scan).
    Alive,
    /// Lease lapsed or crash reported; awaiting fencing + takeover.
    Dead,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Epoch of the current (or last) grant. Starts at 1; every re-grant and
    /// every fence moves it strictly upward.
    epoch: u64,
    lease_expires: SimInstant,
    state: SlotState,
}

/// Why a renewal was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenewError {
    /// The slot was fenced at a higher epoch: this instance is dead to the
    /// cluster and must stop deciding.
    Fenced {
        /// The epoch the cluster has moved on to.
        current_epoch: u64,
    },
    /// The coordinator was declared dead (lease lapsed) but not yet fenced;
    /// renewing cannot resurrect it — it must re-register for a fresh epoch.
    DeclaredDead,
}

/// Configuration of the lease protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// How long a granted lease lasts without renewal.
    pub lease: Duration,
    /// How often coordinators renew (must be comfortably below `lease`).
    pub heartbeat_interval: Duration,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        Self {
            lease: Duration::from_millis(1_500),
            heartbeat_interval: Duration::from_millis(500),
        }
    }
}

/// The shared membership/lease table (one per cluster).
pub struct MembershipTable {
    config: MembershipConfig,
    slots: RefCell<Vec<Slot>>,
}

impl MembershipTable {
    /// An empty table for a cluster of `coordinators` slots. Every slot must
    /// [`MembershipTable::register`] before it counts as alive.
    pub fn new(coordinators: usize, config: MembershipConfig) -> Self {
        Self {
            config,
            slots: RefCell::new(vec![
                Slot {
                    epoch: 0,
                    lease_expires: SimInstant::ZERO,
                    state: SlotState::Dead,
                };
                coordinators
            ]),
        }
    }

    /// The lease configuration.
    pub fn config(&self) -> MembershipConfig {
        self.config
    }

    /// Number of coordinator slots.
    pub fn slots(&self) -> usize {
        self.slots.borrow().len()
    }

    /// Grant (or re-grant) slot `coord` a fresh lease. Returns the granted
    /// epoch — strictly above every previous grant and every fence, so a
    /// re-registered instance can never collide with its own stale past.
    pub fn register(&self, coord: u32) -> u64 {
        let mut slots = self.slots.borrow_mut();
        let slot = &mut slots[coord as usize];
        slot.epoch += 1;
        slot.lease_expires = now() + self.config.lease;
        slot.state = SlotState::Alive;
        slot.epoch
    }

    /// Renew the lease of slot `coord`, valid only while `epoch` is still the
    /// current grant and the slot has not been declared dead.
    pub fn renew(&self, coord: u32, epoch: u64) -> Result<(), RenewError> {
        let mut slots = self.slots.borrow_mut();
        let slot = &mut slots[coord as usize];
        if epoch < slot.epoch {
            return Err(RenewError::Fenced {
                current_epoch: slot.epoch,
            });
        }
        if slot.state == SlotState::Dead {
            return Err(RenewError::DeclaredDead);
        }
        slot.lease_expires = now() + self.config.lease;
        Ok(())
    }

    /// Scan for lapsed leases: every alive slot whose lease expired is
    /// declared dead. Returns the newly dead slots (the supervisor fences and
    /// adopts them).
    pub fn expire_stale(&self) -> Vec<u32> {
        let t = now();
        let mut newly_dead = Vec::new();
        for (i, slot) in self.slots.borrow_mut().iter_mut().enumerate() {
            if slot.state == SlotState::Alive && slot.lease_expires < t {
                slot.state = SlotState::Dead;
                newly_dead.push(i as u32);
            }
        }
        newly_dead
    }

    /// Report slot `coord` dead immediately (a detected process crash — the
    /// supervisor need not wait out the lease). No-op if already dead.
    /// Returns `true` if the slot was alive.
    pub fn declare_dead(&self, coord: u32) -> bool {
        let mut slots = self.slots.borrow_mut();
        let slot = &mut slots[coord as usize];
        let was_alive = slot.state == SlotState::Alive;
        slot.state = SlotState::Dead;
        was_alive
    }

    /// Fence a dead slot: bump its epoch past the dead holder's grant and
    /// return the fencing epoch. Anything the dead instance signed with its
    /// old epoch is rejected from here on (by the commit log and by every
    /// data source the caller broadcasts this epoch to).
    ///
    /// # Panics
    /// Panics if the slot is still alive — fencing a live coordinator is a
    /// supervisor bug, not a runtime condition.
    pub fn fence(&self, coord: u32) -> u64 {
        let mut slots = self.slots.borrow_mut();
        let slot = &mut slots[coord as usize];
        assert_eq!(
            slot.state,
            SlotState::Dead,
            "fencing a live coordinator (dm{coord})"
        );
        slot.epoch += 1;
        slot.epoch
    }

    /// Whether slot `coord` is currently alive.
    pub fn is_alive(&self, coord: u32) -> bool {
        self.slots.borrow()[coord as usize].state == SlotState::Alive
    }

    /// The current epoch of slot `coord` (its last grant or fence).
    pub fn current_epoch(&self, coord: u32) -> u64 {
        self.slots.borrow()[coord as usize].epoch
    }

    /// The alive slots, in index order.
    pub fn live_coordinators(&self) -> Vec<u32> {
        self.slots
            .borrow()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == SlotState::Alive)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_simrt::{sleep, Runtime};

    fn config() -> MembershipConfig {
        MembershipConfig {
            lease: Duration::from_millis(100),
            heartbeat_interval: Duration::from_millis(30),
        }
    }

    #[test]
    fn register_renew_expire_lifecycle() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let table = MembershipTable::new(2, config());
            assert!(!table.is_alive(0));
            let e0 = table.register(0);
            let e1 = table.register(1);
            assert_eq!((e0, e1), (1, 1));
            assert_eq!(table.live_coordinators(), vec![0, 1]);

            // Renewals inside the lease keep the slot alive.
            sleep(Duration::from_millis(80)).await;
            table.renew(0, e0).unwrap();
            sleep(Duration::from_millis(80)).await;
            // Slot 1 never renewed: its lease lapsed at t=100ms.
            assert_eq!(table.expire_stale(), vec![1]);
            assert!(table.is_alive(0));
            assert!(!table.is_alive(1));
            // A lapsed slot cannot renew itself back to life.
            assert_eq!(table.renew(1, e1), Err(RenewError::DeclaredDead));
        });
    }

    #[test]
    fn fencing_moves_the_epoch_past_the_dead_grant() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let table = MembershipTable::new(1, config());
            let epoch = table.register(0);
            table.declare_dead(0);
            let fence = table.fence(0);
            assert!(fence > epoch);
            assert_eq!(table.current_epoch(0), fence);
            // The stale instance's renewals are refused as fenced.
            assert_eq!(
                table.renew(0, epoch),
                Err(RenewError::Fenced {
                    current_epoch: fence
                })
            );
            // A re-registered successor gets an epoch above the fence.
            let regrant = table.register(0);
            assert!(regrant > fence);
            assert!(table.is_alive(0));
        });
    }

    #[test]
    #[should_panic(expected = "fencing a live coordinator")]
    fn fencing_a_live_slot_panics() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let table = MembershipTable::new(1, config());
            table.register(0);
            table.fence(0);
        });
    }
}
