//! Client-facing session routing: consistent hashing with session affinity.
//!
//! Sessions (think: client connections) are assigned to coordinators by a
//! consistent-hash ring — each coordinator owns `VNODES_PER_COORDINATOR`
//! points on a 64-bit ring, and a session lands on the first live
//! coordinator clockwise from its hash. The two properties the tier needs:
//!
//! * **session affinity** — a session keeps its coordinator as long as that
//!   coordinator lives (cached in the affinity map), so interactive
//!   transactions never migrate mid-conversation;
//! * **minimal rebalance** — when a coordinator dies, only *its* sessions
//!   move (each to the next live point on the ring); when it re-registers,
//!   only the sessions that originally hashed to its vnodes move back.
//!
//! A third, optional input is **load**: a cluster can install a *saturation
//! probe* ([`SessionRouter::set_saturation_probe`]) reporting which
//! coordinators are currently saturated (all worker permits taken and
//! arrivals queueing). Routing then steers sessions away from saturated
//! coordinators — before their leases lapse — whenever an unsaturated live
//! alternative exists, and the displaced-goes-home rule brings them back
//! once the pressure clears. Without a probe, routing is pure
//! liveness-driven consistent hashing, unchanged.

use std::cell::RefCell;
use std::rc::Rc;

use geotp_simrt::hash::FxHashMap;

use crate::membership::MembershipTable;

/// Virtual nodes per coordinator: enough to spread load within a few percent
/// at the tier sizes we model (1–8 coordinators).
const VNODES_PER_COORDINATOR: u32 = 64;

/// 64-bit SplitMix-style mix — deterministic, seedless, good avalanche.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Ring position of a coordinator's vnode. Salted into its own hash domain:
/// with a shared domain, session `s` hashed *exactly onto* coordinator 0's
/// vnode `replica == s` (identical `mix` input), and the clockwise walk then
/// sent every small session id to coordinator 0.
fn vnode_position(coord: u32, replica: u32) -> u64 {
    mix(0xc0_0d1e ^ ((coord as u64) << 32) ^ replica as u64 ^ (1 << 63))
}

/// Ring position of a session (the client-side hash domain).
fn session_position(session: u64) -> u64 {
    mix(session ^ 0x005e_5510)
}

/// `probe(coord)` → "is this coordinator saturated right now?".
type SaturationProbe = Box<dyn Fn(u32) -> bool>;

/// The session router for one cluster.
pub struct SessionRouter {
    membership: Rc<MembershipTable>,
    /// `(ring_position, coordinator)`, sorted by position.
    vnodes: Vec<(u64, u32)>,
    /// Session → `(assigned coordinator, its epoch at assignment, ring
    /// home)`. Invalidated when the assigned coordinator is no longer alive
    /// at that epoch, or when the session's home coordinator comes back. The
    /// home is cached so the common path (affinity hit) stays O(1).
    affinity: RefCell<FxHashMap<u64, (u32, u64, u32)>>,
    /// Optional load signal: `probe(coord)` reports whether the coordinator
    /// is saturated right now. `None` = routing ignores load.
    saturation: RefCell<Option<SaturationProbe>>,
}

impl SessionRouter {
    /// Build the ring over every coordinator slot of `membership`.
    pub fn new(membership: Rc<MembershipTable>) -> Self {
        let mut vnodes = Vec::with_capacity(membership.slots() * VNODES_PER_COORDINATOR as usize);
        for coord in 0..membership.slots() as u32 {
            for replica in 0..VNODES_PER_COORDINATOR {
                vnodes.push((vnode_position(coord, replica), coord));
            }
        }
        vnodes.sort_unstable();
        Self {
            membership,
            vnodes,
            affinity: RefCell::new(FxHashMap::default()),
            saturation: RefCell::new(None),
        }
    }

    /// Install the saturation probe (see module docs). The cluster wires this
    /// to its admission gates at build time.
    pub fn set_saturation_probe(&self, probe: impl Fn(u32) -> bool + 'static) {
        *self.saturation.borrow_mut() = Some(Box::new(probe));
    }

    fn saturated(&self, coord: u32) -> bool {
        self.saturation
            .borrow()
            .as_ref()
            .is_some_and(|probe| probe(coord))
    }

    /// Whether some live coordinator other than `coord` is not saturated —
    /// i.e. routing away from `coord` has somewhere better to go.
    fn has_unsaturated_alternative(&self, coord: u32) -> bool {
        self.membership
            .live_coordinators()
            .iter()
            .any(|&c| c != coord && !self.saturated(c))
    }

    /// Route `session` to a live coordinator: the cached assignment while its
    /// coordinator lives *and the session's ring home is not back* —
    /// a failed-over session returns to its home coordinator when that slot
    /// re-registers (the "only its sessions move back" half of minimal
    /// rebalance). Otherwise the first live coordinator clockwise from the
    /// session's ring position (cached for affinity). `None` when no
    /// coordinator is alive.
    pub fn route(&self, session: u64) -> Option<u32> {
        if let Some(&(coord, epoch, home)) = self.affinity.borrow().get(&session) {
            let displaced = coord != home && self.membership.is_alive(home);
            if self.membership.is_alive(coord)
                && self.membership.current_epoch(coord) == epoch
                && !displaced
                && !(self.saturated(coord) && self.has_unsaturated_alternative(coord))
            {
                return Some(coord);
            }
        }
        let coord = self.ring_walk(session)?;
        self.affinity.borrow_mut().insert(
            session,
            (
                coord,
                self.membership.current_epoch(coord),
                self.ring_home(session),
            ),
        );
        Some(coord)
    }

    /// The session's *home* coordinator: the first one clockwise regardless
    /// of liveness — where consistent hashing puts the session when the whole
    /// tier is healthy.
    fn ring_home(&self, session: u64) -> u32 {
        debug_assert!(!self.vnodes.is_empty());
        let position = session_position(session);
        let start = self.vnodes.partition_point(|&(p, _)| p < position);
        self.vnodes[start % self.vnodes.len()].1
    }

    /// First live coordinator clockwise from `hash(session)`, preferring
    /// unsaturated ones: the walk skips saturated coordinators on its first
    /// lap and falls back to the first live one when the whole tier is
    /// saturated (liveness beats load).
    fn ring_walk(&self, session: u64) -> Option<u32> {
        if self.vnodes.is_empty() {
            return None;
        }
        let position = session_position(session);
        let start = self.vnodes.partition_point(|&(p, _)| p < position);
        let n = self.vnodes.len();
        let mut first_live = None;
        for i in 0..n {
            let (_, coord) = self.vnodes[(start + i) % n];
            if self.membership.is_alive(coord) {
                if !self.saturated(coord) {
                    return Some(coord);
                }
                first_live.get_or_insert(coord);
            }
        }
        first_live
    }

    /// Drop every cached assignment (tests / explicit rebalance).
    pub fn clear_affinity(&self) {
        self.affinity.borrow_mut().clear();
    }

    /// Drop one session's cached assignment (idle-session reaping): its next
    /// `begin` re-routes from the ring as if it had never connected.
    pub fn forget(&self, session: u64) {
        self.affinity.borrow_mut().remove(&session);
    }

    /// Number of sessions with a cached assignment (memory telemetry for the
    /// reaper's 10^6-session story).
    pub fn affinity_len(&self) -> usize {
        self.affinity.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipConfig;
    use geotp_simrt::Runtime;

    fn table(coordinators: usize) -> Rc<MembershipTable> {
        let t = Rc::new(MembershipTable::new(
            coordinators,
            MembershipConfig::default(),
        ));
        for c in 0..coordinators as u32 {
            t.register(c);
        }
        t
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let membership = table(4);
            let router = SessionRouter::new(Rc::clone(&membership));
            let mut counts = [0u32; 4];
            for session in 0..4_000u64 {
                let coord = router.route(session).unwrap();
                assert_eq!(router.route(session), Some(coord), "affinity is sticky");
                counts[coord as usize] += 1;
            }
            for (i, c) in counts.iter().enumerate() {
                assert!(
                    (500..=1_500).contains(c),
                    "coordinator {i} got {c} of 4000 sessions — ring badly unbalanced: {counts:?}"
                );
            }
        });
    }

    /// Regression: sessions and vnodes used to share one hash domain, so
    /// session `s` landed exactly on coordinator 0's vnode `replica == s` —
    /// every small (sequential) session id routed to coordinator 0 and the
    /// rest of the tier idled.
    #[test]
    fn small_sequential_sessions_spread_over_coordinators() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let membership = table(2);
            let router = SessionRouter::new(Rc::clone(&membership));
            let assigned: std::collections::BTreeSet<u32> =
                (0..8u64).map(|s| router.route(s).unwrap()).collect();
            assert_eq!(
                assigned.len(),
                2,
                "the first 8 sessions must reach both coordinators"
            );
        });
    }

    #[test]
    fn dead_coordinator_sessions_fail_over_others_stay_put() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let membership = table(3);
            let router = SessionRouter::new(Rc::clone(&membership));
            let before: Vec<u32> = (0..3_000u64).map(|s| router.route(s).unwrap()).collect();
            membership.declare_dead(1);
            let mut moved = 0;
            for (session, &coord) in before.iter().enumerate() {
                let after = router.route(session as u64).unwrap();
                assert_ne!(after, 1, "nothing routes to a dead coordinator");
                if coord == 1 {
                    moved += 1;
                } else {
                    // Consistent hashing: survivors' sessions do not move.
                    assert_eq!(after, coord, "session {session} moved needlessly");
                }
            }
            assert!(moved > 0, "the dead coordinator had sessions to move");
        });
    }

    /// The second half of minimal rebalance: when a dead coordinator
    /// re-registers, exactly the sessions whose ring *home* it is move back;
    /// everyone else's affinity is untouched.
    #[test]
    fn revived_coordinator_gets_its_home_sessions_back() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let membership = table(3);
            let router = SessionRouter::new(Rc::clone(&membership));
            let home: Vec<u32> = (0..3_000u64).map(|s| router.route(s).unwrap()).collect();
            membership.declare_dead(1);
            // Failover: dm1's sessions migrate and are cached elsewhere.
            for s in 0..3_000u64 {
                assert_ne!(router.route(s).unwrap(), 1);
            }
            // Revival: dm1's home sessions return; nobody else moves.
            membership.register(1);
            for (s, &h) in home.iter().enumerate() {
                assert_eq!(
                    router.route(s as u64),
                    Some(h),
                    "session {s} must be back on its home coordinator"
                );
            }
        });
    }

    /// Load-aware routing: a session leaves its saturated coordinator while
    /// an unsaturated live alternative exists, and returns home when the
    /// pressure clears; when *every* coordinator is saturated it stays put
    /// (shedding happens at admission, not in the router).
    #[test]
    fn saturated_coordinator_is_avoided_until_pressure_clears() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let membership = table(2);
            let router = SessionRouter::new(Rc::clone(&membership));
            let hot: Rc<std::cell::Cell<Option<u32>>> = Rc::new(std::cell::Cell::new(None));
            let probe_hot = Rc::clone(&hot);
            router.set_saturation_probe(move |c| {
                let h = probe_hot.get();
                h == Some(c) || h == Some(u32::MAX)
            });
            let session = (0..100u64)
                .find(|&s| router.route(s) == Some(0))
                .expect("some session homes on coordinator 0");
            hot.set(Some(0));
            assert_eq!(
                router.route(session),
                Some(1),
                "session leaves its saturated home"
            );
            // Everyone saturated: load no longer discriminates, so routing
            // degenerates to plain consistent hashing — the displaced
            // session returns to its ring home (shedding happens at
            // admission, not in the router).
            hot.set(Some(u32::MAX));
            assert_eq!(router.route(session), Some(0), "uniform load goes home");
            hot.set(Some(0));
            assert_eq!(router.route(session), Some(1), "leaves again under load");
            hot.set(None);
            assert_eq!(
                router.route(session),
                Some(0),
                "returns home once the pressure clears"
            );
        });
    }

    #[test]
    fn forget_drops_affinity_for_one_session() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let membership = table(2);
            let router = SessionRouter::new(Rc::clone(&membership));
            let home = router.route(7).unwrap();
            assert_eq!(router.affinity_len(), 1);
            router.forget(7);
            assert_eq!(router.affinity_len(), 0);
            assert_eq!(router.route(7), Some(home), "re-routes to the same home");
        });
    }

    #[test]
    fn all_dead_routes_none_and_revival_restores() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let membership = table(2);
            let router = SessionRouter::new(Rc::clone(&membership));
            membership.declare_dead(0);
            membership.declare_dead(1);
            assert_eq!(router.route(9), None);
            membership.register(0);
            assert_eq!(router.route(9), Some(0));
        });
    }
}
