//! The coordinator cluster: N middlewares over shared data sources.
//!
//! [`CoordinatorCluster::build`] connects one [`Middleware`] per slot to the
//! same data sources (each with its own durable commit log and a disjoint
//! gtrid space — gtrids embed the coordinator index), registers every slot in
//! the [`MembershipTable`] and wires the [`SessionRouter`] in front. Once
//! [`CoordinatorCluster::start`] is called, each coordinator renews its lease
//! over the simulated network against the control node, and a supervisor task
//! scans for lapsed leases and detected crashes:
//!
//! 1. **declare dead** — lease lapsed (partition, crash) or process crash
//!    observed;
//! 2. **fence** — the membership epoch is bumped, the dead peer's commit log
//!    is sealed, and every data source is told to reject the dead epoch;
//! 3. **scoped disconnect** — each data source aborts the dead coordinator's
//!    *unprepared* branches (other coordinators' in-flight work untouched);
//! 4. **adopt** — a surviving coordinator runs `XA RECOVER` scoped to the
//!    dead gtrid space and finishes each in-doubt branch per the sealed log:
//!    durable `Commit` ⇒ commit, anything else ⇒ abort.
//!
//! Clients keep calling [`CoordinatorCluster::run_transaction`]; the router
//! re-homes the dead coordinator's sessions onto survivors on their next
//! request.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use geotp_datasource::DataSource;
use geotp_middleware::session::{
    BoxFuture, RoundResult, Session, SessionLink, SessionService, Txn, TxnError, TxnHandle,
};
use geotp_middleware::{
    AbortReason, ClientOp, CommitLog, Middleware, MiddlewareConfig, Partitioner, Protocol,
    TransactionSpec, TxnOutcome,
};
use geotp_net::{Network, NodeId};
use geotp_simrt::sync::semaphore::SemaphorePermit;
use geotp_simrt::{join_all, now, sleep, spawn};

use crate::admission::{AdmissionGate, AdmissionPolicy, CoordinatorLoad, ShedReason};
use crate::membership::{MembershipConfig, MembershipTable};
use crate::ring::SessionRouter;

/// Configuration of a coordinator cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of coordinator slots.
    pub coordinators: usize,
    /// Commit protocol every coordinator runs.
    pub protocol: Protocol,
    /// The shared data partitioning scheme.
    pub partitioner: Partitioner,
    /// Lease/heartbeat parameters.
    pub membership: MembershipConfig,
    /// How often the supervisor scans for lapsed leases and crashes.
    pub supervisor_interval: Duration,
    /// Per-coordinator concurrent-transaction capacity (the worker/connection
    /// pool of one proxy instance); `0` means unbounded. This is what makes
    /// the tier *scale out*: total capacity grows with the coordinator count.
    pub max_inflight: usize,
    /// Passed through to each [`MiddlewareConfig`].
    pub decision_wait_timeout: Duration,
    /// Virtual-time cost of parsing/routing/scheduling one transaction.
    pub analysis_cost: Duration,
    /// Commit-log flush cost.
    pub log_flush_cost: Duration,
    /// Populate per-transaction histories (chaos checkers).
    pub record_history: bool,
    /// Commit unannotated read-only transactions via the snapshot-read fast
    /// path (no prepare, no WAL flush). Passed through to each
    /// [`MiddlewareConfig`].
    pub snapshot_reads: bool,
    /// Seed for the coordinators' schedulers (slot index is mixed in).
    pub seed: u64,
    /// Graceful-degradation policy at each coordinator's capacity gate (only
    /// meaningful with `max_inflight > 0`). The default is the legacy
    /// unbounded FIFO wait — no shedding, no deadlines.
    pub admission: AdmissionPolicy,
    /// When set, a background task reaps sessions idle past the deadline
    /// (registry entries and router affinity), keeping per-session state
    /// memory-lean toward 10^6 mostly-idle sessions. `None` = never reap.
    pub session_reaper: Option<SessionReaperConfig>,
}

/// Idle-session reaper schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionReaperConfig {
    /// How often the reaper scans the registries.
    pub interval: Duration,
    /// Sessions idle (no live transaction, no activity) for at least this
    /// long are evicted; their next `begin` reconnects transparently.
    pub idle_for: Duration,
}

impl ClusterConfig {
    /// Reasonable defaults for `coordinators` slots over `partitioner`.
    pub fn new(coordinators: usize, protocol: Protocol, partitioner: Partitioner) -> Self {
        Self {
            coordinators,
            protocol,
            partitioner,
            membership: MembershipConfig::default(),
            supervisor_interval: Duration::from_millis(500),
            max_inflight: 0,
            decision_wait_timeout: Duration::from_secs(2),
            analysis_cost: Duration::from_micros(200),
            log_flush_cost: Duration::from_micros(200),
            record_history: false,
            snapshot_reads: false,
            seed: 42,
            admission: AdmissionPolicy::default(),
            session_reaper: None,
        }
    }
}

/// One coordinator slot. The middleware instance behind a slot is
/// *replaceable*: [`CoordinatorCluster::restart`] installs a successor
/// process (fresh epoch, advanced gtrid space) over the slot's durable
/// commit log — how a crashed tier recovers from cold.
struct Slot {
    middleware: RefCell<Rc<Middleware>>,
    commit_log: Rc<CommitLog>,
    /// The membership epoch of the current instance (re-granted on restart).
    epoch: Cell<u64>,
    /// Worker-capacity admission gate (pass-through when unbounded).
    admission: Rc<AdmissionGate>,
}

impl Slot {
    fn middleware(&self) -> Rc<Middleware> {
        self.middleware.borrow().clone()
    }
}

/// What one peer takeover did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TakeoverReport {
    /// The adopted (dead) coordinator.
    pub dead: u32,
    /// The surviving adopter.
    pub by: u32,
    /// The fencing epoch installed at the commit log and every data source.
    pub fencing_epoch: u64,
    /// Adopted in-doubt branches driven to commit.
    pub adopted_committed: usize,
    /// Adopted in-doubt branches driven to abort.
    pub adopted_aborted: usize,
    /// Unprepared branches of the dead coordinator aborted by the data
    /// sources' scoped disconnect handling.
    pub unprepared_aborted: usize,
}

/// A transaction outcome plus the coordinator that served it.
#[derive(Debug, Clone)]
pub struct RoutedOutcome {
    /// The coordinator slot the session was routed to.
    pub coordinator: u32,
    /// The transaction outcome.
    pub outcome: TxnOutcome,
}

/// The scale-out middleware tier.
pub struct CoordinatorCluster {
    config: ClusterConfig,
    net: Rc<Network>,
    sources: Vec<Rc<DataSource>>,
    slots: Vec<Slot>,
    membership: Rc<MembershipTable>,
    router: SessionRouter,
    /// Stops the heartbeat/supervisor tasks (harness quiescing).
    stopped: Cell<bool>,
    /// Whether [`CoordinatorCluster::start`] ran (restarted slots spawn
    /// their own heartbeat only in that case).
    started: Cell<bool>,
    /// Takeovers performed so far (telemetry for harnesses and tests).
    takeovers: Cell<u64>,
    /// Idle sessions reaped so far (telemetry for harnesses and tests).
    reaped: Cell<u64>,
}

/// The [`MiddlewareConfig`] a slot's (current or successor) instance runs.
fn slot_middleware_config(
    config: &ClusterConfig,
    coord: u32,
    epoch: u64,
    first_txn_seq: u64,
) -> MiddlewareConfig {
    let mut mw_cfg = MiddlewareConfig::new(
        NodeId::middleware(coord),
        config.protocol,
        config.partitioner,
    );
    mw_cfg.analysis_cost = config.analysis_cost;
    mw_cfg.log_flush_cost = config.log_flush_cost;
    mw_cfg.decision_wait_timeout = config.decision_wait_timeout;
    mw_cfg.record_history = config.record_history;
    mw_cfg.snapshot_reads = config.snapshot_reads;
    mw_cfg.scheduler.seed = config.seed.wrapping_add(coord as u64);
    mw_cfg.epoch = epoch;
    mw_cfg.first_txn_seq = first_txn_seq;
    mw_cfg
}

impl CoordinatorCluster {
    /// Wire `config.coordinators` middlewares onto `sources` over `net`.
    /// Every slot registers in a fresh membership table and is granted its
    /// initial epoch before serving anything.
    pub fn build(config: ClusterConfig, net: Rc<Network>, sources: &[Rc<DataSource>]) -> Rc<Self> {
        let membership = Rc::new(MembershipTable::new(config.coordinators, config.membership));
        let mut slots = Vec::with_capacity(config.coordinators);
        for coord in 0..config.coordinators as u32 {
            let epoch = membership.register(coord);
            geotp_telemetry::gauge_set("cluster.epoch", "", coord, epoch as i64);
            let mw_cfg = slot_middleware_config(&config, coord, epoch, 1);
            let middleware = Middleware::connect(mw_cfg, Rc::clone(&net), sources, None);
            let commit_log = Rc::clone(middleware.commit_log());
            slots.push(Slot {
                middleware: RefCell::new(middleware),
                commit_log,
                epoch: Cell::new(epoch),
                admission: Rc::new(
                    AdmissionGate::new(config.max_inflight, config.admission)
                        .with_metrics_index(coord),
                ),
            });
        }
        let router = SessionRouter::new(Rc::clone(&membership));
        // Degradation signal: routing consults each gate's saturation state,
        // steering new sessions off saturated coordinators before their
        // leases lapse.
        let gates: Vec<Rc<AdmissionGate>> = slots.iter().map(|s| Rc::clone(&s.admission)).collect();
        router.set_saturation_probe(move |coord| {
            gates
                .get(coord as usize)
                .is_some_and(|gate| gate.is_saturated())
        });
        Rc::new(Self {
            config,
            net,
            sources: sources.to_vec(),
            slots,
            membership,
            router,
            stopped: Cell::new(false),
            started: Cell::new(false),
            takeovers: Cell::new(0),
            reaped: Cell::new(0),
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The membership/lease table.
    pub fn membership(&self) -> &Rc<MembershipTable> {
        &self.membership
    }

    /// The session router.
    pub fn router(&self) -> &SessionRouter {
        &self.router
    }

    /// The shared data sources.
    pub fn sources(&self) -> &[Rc<DataSource>] {
        &self.sources
    }

    /// The middleware instance currently serving slot `coord` (replaced by
    /// [`CoordinatorCluster::restart`]).
    pub fn middleware(&self, coord: u32) -> Rc<Middleware> {
        self.slots[coord as usize].middleware()
    }

    /// The durable commit log of slot `coord`.
    pub fn commit_log(&self, coord: u32) -> &Rc<CommitLog> {
        &self.slots[coord as usize].commit_log
    }

    /// The membership epoch of slot `coord`'s current instance.
    pub fn epoch(&self, coord: u32) -> u64 {
        self.slots[coord as usize].epoch.get()
    }

    /// The durable decision for `gtrid`, looked up in its owner's commit log
    /// (cross-coordinator: this is what cluster-wide invariant checkers use).
    pub fn decision(&self, gtrid: u64) -> Option<geotp_middleware::Decision> {
        let owner = geotp_middleware::gtrid_owner(gtrid) as usize;
        self.slots
            .get(owner)
            .and_then(|s| s.commit_log.decision(gtrid))
    }

    /// Takeovers performed so far.
    pub fn takeover_count(&self) -> u64 {
        self.takeovers.get()
    }

    /// Load snapshot of coordinator `coord`'s admission gate: permit
    /// occupancy, queue depth and shed counters — the degradation signals
    /// the router's saturation probe reads.
    pub fn load(&self, coord: u32) -> CoordinatorLoad {
        self.slots[coord as usize].admission.load()
    }

    /// Total `begin`s shed (queue full or deadline expired) across the tier.
    pub fn shed_count(&self) -> u64 {
        self.slots.iter().map(|s| s.admission.load().shed()).sum()
    }

    /// Idle sessions reaped so far.
    pub fn reaped_sessions(&self) -> u64 {
        self.reaped.get()
    }

    /// One reaper pass: every live coordinator evicts sessions idle for at
    /// least `idle_for`, and the router drops their affinity entries. Returns
    /// how many sessions were reaped. (The background reaper task calls this
    /// on the configured interval; harnesses may call it directly.)
    pub fn reap_idle_sessions_once(&self, idle_for: Duration) -> usize {
        let mut total = 0;
        for slot in &self.slots {
            let middleware = slot.middleware();
            if middleware.is_crashed() {
                continue; // its registry dies with the process
            }
            for session in middleware.reap_idle_sessions(idle_for) {
                self.router.forget(session);
                total += 1;
            }
        }
        self.reaped.set(self.reaped.get() + total as u64);
        total
    }

    /// Crash coordinator `coord`'s process: in-flight transactions die, the
    /// heartbeat task stops at its next tick, and the supervisor fences and
    /// adopts the slot.
    pub fn crash(&self, coord: u32) {
        self.slots[coord as usize].middleware().crash();
    }

    /// Arm the §V-A fail point on slot `coord`: crash right after its next
    /// commit-log flush (decision durable, never dispatched).
    pub fn crash_after_next_flush(&self, coord: u32) {
        self.slots[coord as usize]
            .middleware()
            .crash_after_next_flush();
    }

    /// Restart a dead coordinator slot: a successor process re-registers for
    /// a fresh membership epoch (strictly above any fence), shares the slot's
    /// durable commit log, starts its gtrid space past the predecessor's,
    /// resolves its own in-doubt branches against the log (idempotent when a
    /// peer already adopted them), and resumes serving — the router re-homes
    /// the slot's home sessions on their next request. This is how the tier
    /// recovers *from cold* when every coordinator died and nobody was left
    /// to adopt anyone. Returns the successor's epoch.
    pub async fn restart(self: &Rc<Self>, coord: u32) -> u64 {
        let slot = &self.slots[coord as usize];
        let old = slot.middleware();
        assert!(
            old.is_crashed() || !self.membership.is_alive(coord),
            "restarting a live coordinator (dm{coord})"
        );
        if self.membership.is_alive(coord) {
            self.membership.declare_dead(coord);
        }
        let epoch = self.membership.register(coord);
        geotp_telemetry::gauge_set("cluster.epoch", "", coord, epoch as i64);
        let mw_cfg = slot_middleware_config(&self.config, coord, epoch, old.next_txn_seq());
        let successor = Middleware::connect(
            mw_cfg,
            Rc::clone(&self.net),
            &self.sources,
            Some(Rc::clone(&slot.commit_log)),
        );
        *slot.middleware.borrow_mut() = Rc::clone(&successor);
        slot.epoch.set(epoch);
        // Cold recovery of the slot's own gtrid space: data sources may hold
        // prepared branches nobody adopted while the whole tier was down.
        let _ = successor.recover().await;
        if self.started.get() {
            let cluster = Rc::clone(self);
            spawn(async move { cluster.heartbeat_loop(coord, epoch).await });
        }
        epoch
    }

    /// Stop the background heartbeat/supervisor tasks (they observe the flag
    /// at their next tick). Used by harnesses before the final recovery pass.
    pub fn stop(&self) {
        self.stopped.set(true);
    }

    /// Spawn the lease heartbeats (one task per slot) and the supervisor.
    pub fn start(self: &Rc<Self>) {
        self.started.set(true);
        for coord in 0..self.slots.len() as u32 {
            let cluster = Rc::clone(self);
            let epoch = self.slots[coord as usize].epoch.get();
            spawn(async move { cluster.heartbeat_loop(coord, epoch).await });
        }
        let cluster = Rc::clone(self);
        spawn(async move {
            loop {
                sleep(cluster.config.supervisor_interval).await;
                if cluster.stopped.get() {
                    return;
                }
                cluster.supervise_once().await;
            }
        });
        if let Some(reaper) = self.config.session_reaper {
            let cluster = Rc::clone(self);
            spawn(async move {
                loop {
                    sleep(reaper.interval).await;
                    if cluster.stopped.get() {
                        return;
                    }
                    cluster.reap_idle_sessions_once(reaper.idle_for);
                }
            });
        }
    }

    /// One coordinator instance's lease-renewal loop (generation-scoped: a
    /// restarted slot spawns a fresh loop with its new epoch and this one
    /// exits). Renewals ride the simulated network to the control node, so a
    /// partitioned coordinator's renewal stalls and its lease lapses — the
    /// split-brain entry point the fencing machinery exists for.
    async fn heartbeat_loop(self: Rc<Self>, coord: u32, epoch: u64) {
        let dm = NodeId::middleware(coord);
        let control = NodeId::control(0);
        let interval = self.config.membership.heartbeat_interval;
        loop {
            sleep(interval).await;
            let stale = self.slots[coord as usize].epoch.get() != epoch;
            if self.stopped.get() || stale || self.slots[coord as usize].middleware().is_crashed() {
                return;
            }
            self.net.transfer(dm, control).await;
            if self.slots[coord as usize].middleware().is_crashed()
                || self.slots[coord as usize].epoch.get() != epoch
            {
                return; // died or was replaced while the renewal was in flight
            }
            if self.membership.renew(coord, epoch).is_err() {
                // Fenced or declared dead: this instance must stop claiming
                // liveness (and its epoch is already rejected everywhere).
                return;
            }
            self.net.transfer(control, dm).await;
        }
    }

    /// One supervisor scan: lapse overdue leases, notice crashed processes,
    /// fence and adopt every dead slot that has not been adopted yet.
    /// A slot that died while *nobody* was left to adopt it (the whole tier
    /// down) is retried on every scan — its commit log is still unfenced —
    /// so the first coordinator to restart adopts the rest of the cold tier.
    /// Returns the takeovers performed.
    pub async fn supervise_once(&self) -> Vec<TakeoverReport> {
        self.membership.expire_stale();
        for coord in 0..self.slots.len() as u32 {
            if self.slots[coord as usize].middleware().is_crashed()
                && self.membership.is_alive(coord)
            {
                self.membership.declare_dead(coord);
            }
        }
        let mut reports = Vec::new();
        for dead in 0..self.slots.len() as u32 {
            if self.membership.is_alive(dead) {
                continue;
            }
            let slot = &self.slots[dead as usize];
            if slot.commit_log.min_epoch() > slot.epoch.get() {
                continue; // already fenced + adopted at this incarnation
            }
            let Some(&by) = self
                .membership
                .live_coordinators()
                .iter()
                .find(|&&c| !self.slots[c as usize].middleware().is_crashed())
            else {
                continue; // nobody left to adopt; retried next scan / recover_all
            };
            reports.push(self.take_over(dead, by).await);
        }
        reports
    }

    /// Fence coordinator `dead` and let `by` adopt its in-doubt branches.
    ///
    /// Order matters: the commit log is sealed *before* it is read, so the
    /// dead peer cannot slip in a decision after adoption resolved the
    /// branches; the data sources are fenced *before* the scoped disconnect
    /// and the adoption, so a stale dispatch cannot land between them.
    pub async fn take_over(&self, dead: u32, by: u32) -> TakeoverReport {
        assert_ne!(dead, by, "a coordinator cannot adopt itself");
        let fencing_epoch = self.membership.fence(dead);
        let dead_log = Rc::clone(&self.slots[dead as usize].commit_log);
        // 1. Seal the dead peer's commit log (shared durable storage).
        dead_log.fence(fencing_epoch);

        // 2. Broadcast the fence + scoped disconnect handling to every data
        //    source, in parallel. The fence is durable XA metadata on the
        //    source (it survives a source crash alongside the prepared
        //    branches it protects), so it is installed even on a currently
        //    crashed source. The scoped abort only runs on live engines —
        //    a crashed engine's unprepared branches die with it anyway.
        let dead_node = NodeId::middleware(dead);
        let by_node = NodeId::middleware(by);
        let unprepared_counts = join_all(
            self.sources
                .iter()
                .map(|ds| {
                    let ds = Rc::clone(ds);
                    let net = Rc::clone(&self.net);
                    async move {
                        net.transfer(by_node, ds.node()).await;
                        ds.fence_coordinator(dead_node, fencing_epoch);
                        let aborted = if ds.is_crashed() {
                            0
                        } else {
                            ds.coordinator_disconnected_scoped(dead).await.len()
                        };
                        net.transfer(ds.node(), by_node).await;
                        aborted
                    }
                })
                .collect(),
        )
        .await;

        // 3. Adopt: XA RECOVER scoped to the dead gtrid space, decisions from
        //    the sealed log, driven over the survivor's (live-epoch)
        //    connections.
        let (adopted_committed, adopted_aborted) = self.slots[by as usize]
            .middleware()
            .recover_owned_by(dead, &dead_log)
            .await;

        self.takeovers.set(self.takeovers.get() + 1);
        geotp_telemetry::counter_add("cluster.takeovers", "", by, 1);
        geotp_telemetry::gauge_set("cluster.epoch", "", dead, fencing_epoch as i64);
        TakeoverReport {
            dead,
            by,
            fencing_epoch,
            adopted_committed,
            adopted_aborted,
            unprepared_aborted: unprepared_counts.iter().sum(),
        }
    }

    /// Run one client transaction for `session`: route to a live coordinator,
    /// queue on its capacity gate, execute. `None` when no coordinator is
    /// alive (the client should back off and retry).
    pub async fn run_transaction(
        &self,
        session: u64,
        spec: &TransactionSpec,
    ) -> Option<RoutedOutcome> {
        let coordinator = self.router.route(session)?;
        let slot = &self.slots[coordinator as usize];
        let enqueued = now();
        let ticket = match slot.admission.admit().await {
            Ok(ticket) => ticket,
            Err(reject) => {
                if reject.reason == ShedReason::Closed {
                    return None;
                }
                return Some(RoutedOutcome {
                    coordinator,
                    outcome: TxnError::overloaded(reject.retry_after).outcome,
                });
            }
        };
        let _permit = ticket.permit;
        let middleware = slot.middleware();
        let mut outcome = middleware.run_transaction(spec).await;
        if !ticket.queue_time.is_zero() {
            outcome.breakdown.queue_time += ticket.queue_time;
            outcome.latency += ticket.queue_time;
            // The queue wait predates the transaction's gtrid; backdate it
            // into the trace now that the id is known.
            if outcome.gtrid != 0 {
                geotp_telemetry::span_leaf_window(
                    outcome.gtrid,
                    geotp_telemetry::TraceNode::middleware(coordinator),
                    geotp_telemetry::SpanKind::Admission,
                    0,
                    enqueued,
                    geotp_simrt::SimInstant::from_micros(
                        enqueued.as_micros() + ticket.queue_time.as_micros() as u64,
                    ),
                );
            }
        }
        Some(RoutedOutcome {
            coordinator,
            outcome,
        })
    }

    /// Final recovery pass (after every fault healed): every live coordinator
    /// recovers its own gtrid space, then any still-dead slot that was never
    /// adopted (e.g. every peer was down at the time) is adopted now by the
    /// first live coordinator. Returns `(committed, aborted)` branch totals.
    pub async fn recover_all(&self) -> (usize, usize) {
        // A crashed process the (possibly stopped) supervisor never got to:
        // declare it dead now so the adoption sweep below covers it.
        for coord in 0..self.slots.len() as u32 {
            if self.slots[coord as usize].middleware().is_crashed() {
                self.membership.declare_dead(coord);
            }
        }
        let mut committed = 0;
        let mut aborted = 0;
        for coord in 0..self.slots.len() as u32 {
            let slot = &self.slots[coord as usize];
            let middleware = slot.middleware();
            if self.membership.is_alive(coord) && !middleware.is_crashed() {
                let (c, a) = middleware.recover().await;
                committed += c;
                aborted += a;
            }
        }
        for dead in 0..self.slots.len() as u32 {
            if self.membership.is_alive(dead) {
                continue;
            }
            let Some(&by) = self
                .membership
                .live_coordinators()
                .iter()
                .find(|&&c| !self.slots[c as usize].middleware().is_crashed())
            else {
                break;
            };
            let report = self.take_over_if_unfenced(dead, by).await;
            committed += report.adopted_committed;
            aborted += report.adopted_aborted;
        }
        (committed, aborted)
    }

    /// Adopt `dead` by `by`; if the slot was already fenced by an earlier
    /// takeover this only re-runs the (idempotent) adoption sweep for
    /// branches a then-crashed data source has since recovered from its WAL.
    async fn take_over_if_unfenced(&self, dead: u32, by: u32) -> TakeoverReport {
        let dead_log = Rc::clone(&self.slots[dead as usize].commit_log);
        if dead_log.min_epoch() <= self.slots[dead as usize].epoch.get() {
            return self.take_over(dead, by).await;
        }
        let (adopted_committed, adopted_aborted) = self.slots[by as usize]
            .middleware()
            .recover_owned_by(dead, &dead_log)
            .await;
        TakeoverReport {
            dead,
            by,
            fencing_epoch: dead_log.min_epoch(),
            adopted_committed,
            adopted_aborted,
            unprepared_aborted: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Session front door (the interactive client API, tier edition).
//
// Sessions are *durable routing entities* here: the consistent-hash router
// pins each session to a coordinator while it lives (affinity), re-homes it
// to a survivor when that coordinator dies, and moves it back when its home
// slot re-registers. A live transaction is pinned to the coordinator its
// `begin` was routed to; a takeover mid-transaction surfaces as a
// *retryable* abort on the handle, and the session's next `begin` re-routes.
// ---------------------------------------------------------------------------

/// The cluster's [`SessionService`].
#[derive(Clone)]
pub struct ClusterSessionService(Rc<CoordinatorCluster>);

impl CoordinatorCluster {
    /// The session front door for this tier.
    pub fn session_service(self: &Rc<Self>) -> ClusterSessionService {
        ClusterSessionService(Rc::clone(self))
    }

    /// Open a session directly (convenience for tests and drivers).
    pub fn connect(self: &Rc<Self>, session_id: u64) -> Session {
        self.session_service().connect(session_id)
    }
}

impl SessionService for ClusterSessionService {
    fn connect(&self, session_id: u64) -> Session {
        Session::from_link(
            session_id,
            self.label(),
            Box::new(ClusterLink {
                cluster: Rc::clone(&self.0),
                session: session_id,
            }),
        )
    }

    fn label(&self) -> String {
        format!(
            "{} tier x{}",
            self.0.config.protocol.name(),
            self.0.config.coordinators
        )
    }
}

struct ClusterLink {
    cluster: Rc<CoordinatorCluster>,
    session: u64,
}

impl SessionLink for ClusterLink {
    fn begin<'a>(&'a mut self) -> BoxFuture<'a, Result<Box<dyn TxnHandle>, TxnError>> {
        let cluster = Rc::clone(&self.cluster);
        let session = self.session;
        Box::pin(async move {
            let begin_started = now();
            // Route (affinity, else the first live coordinator clockwise).
            let Some(coordinator) = cluster.router.route(session) else {
                return Err(TxnError::refused()); // nobody alive; back off + retry
            };
            let slot = &cluster.slots[coordinator as usize];
            let enqueued = now();
            let ticket = match slot.admission.admit().await {
                Ok(ticket) => ticket,
                Err(reject) => {
                    return Err(if reject.reason == ShedReason::Closed {
                        TxnError::refused()
                    } else {
                        // Explicit load shed: overloaded, back off for the
                        // hinted duration and retry.
                        TxnError::overloaded(reject.retry_after)
                    });
                }
            };
            let middleware = slot.middleware();
            let mut inner = SessionService::connect(&middleware, session);
            match inner.begin().await {
                Ok(mut txn) => {
                    if !ticket.queue_time.is_zero() {
                        // The wait for a worker permit is part of the client's
                        // observed begin latency.
                        txn.note_queue_time(ticket.queue_time);
                    }
                    if geotp_telemetry::enabled() && txn.gtrid() != 0 {
                        // Backdate the front-door segments into the trace now
                        // that the transaction has an id: the full session
                        // begin, and the admission-queue wait inside it.
                        let dm = geotp_telemetry::TraceNode::middleware(coordinator);
                        geotp_telemetry::span_leaf_window(
                            txn.gtrid(),
                            dm,
                            geotp_telemetry::SpanKind::SessionBegin,
                            session,
                            begin_started,
                            now(),
                        );
                        if !ticket.queue_time.is_zero() {
                            geotp_telemetry::span_leaf_window(
                                txn.gtrid(),
                                dm,
                                geotp_telemetry::SpanKind::Admission,
                                0,
                                enqueued,
                                geotp_simrt::SimInstant::from_micros(
                                    enqueued.as_micros() + ticket.queue_time.as_micros() as u64,
                                ),
                            );
                        }
                    }
                    Ok(Box::new(ClusterTxn {
                        inner: Some(txn),
                        _permit: ticket.permit,
                    }) as Box<dyn TxnHandle>)
                }
                Err(mut refused) => {
                    // The routed coordinator is crashed but not yet declared
                    // dead; the session re-routes once the supervisor
                    // notices, so the refusal stays retryable.
                    refused.retryable = true;
                    Err(refused)
                }
            }
        })
    }
}

/// A live transaction pinned to one coordinator of the tier, holding its
/// worker-capacity permit for the transaction's whole lifetime. (Which
/// coordinator a session is pinned to is the router's knowledge:
/// `cluster.router().route(session_id)`.)
struct ClusterTxn {
    inner: Option<Txn>,
    _permit: Option<SemaphorePermit>,
}

/// Coordinator-loss abort reasons become *retryable* at the tier boundary:
/// the session will be re-routed (takeover) or served by a successor.
fn mark_tier_retryable(mut error: TxnError) -> TxnError {
    if matches!(
        error.reason,
        AbortReason::CoordinatorCrashed | AbortReason::CoordinatorFenced
    ) {
        error.retryable = true;
    }
    error
}

impl TxnHandle for ClusterTxn {
    fn execute<'a>(
        &'a mut self,
        ops: &'a [ClientOp],
        last: bool,
    ) -> BoxFuture<'a, Result<RoundResult, TxnError>> {
        Box::pin(async move {
            let inner = self.inner.as_mut().expect("transaction already concluded");
            inner
                .execute_round(ops, last)
                .await
                .map_err(mark_tier_retryable)
        })
    }

    fn execute_sql<'a>(
        &'a mut self,
        statement: &'a str,
    ) -> BoxFuture<'a, Result<RoundResult, TxnError>> {
        Box::pin(async move {
            let inner = self.inner.as_mut().expect("transaction already concluded");
            inner
                .execute_sql(statement)
                .await
                .map_err(mark_tier_retryable)
        })
    }

    fn note_think(&mut self, thought: Duration) {
        if let Some(inner) = self.inner.as_mut() {
            inner.note_think(thought);
        }
    }

    fn commit(mut self: Box<Self>) -> BoxFuture<'static, TxnOutcome> {
        let inner = self.inner.take().expect("transaction already concluded");
        Box::pin(async move {
            let outcome = inner.commit().await;
            drop(self); // release the worker permit after the outcome is known
            outcome
        })
    }

    fn rollback(mut self: Box<Self>) -> BoxFuture<'static, TxnOutcome> {
        let inner = self.inner.take().expect("transaction already concluded");
        Box::pin(async move {
            let outcome = inner.rollback().await;
            drop(self);
            outcome
        })
    }

    fn abandon(mut self: Box<Self>) {
        // Dropping the inner handle runs the middleware's connection-loss
        // cleanup; the permit frees with `self`.
        drop(self.inner.take());
    }

    fn gtrid(&self) -> u64 {
        self.inner.as_ref().map(|t| t.gtrid()).unwrap_or(0)
    }
}
