//! Bounded-queue admission control for a coordinator's worker pool.
//!
//! The tier's original capacity gate was a bare FIFO semaphore: when every
//! worker permit was taken, new `begin`s queued *unboundedly* and waited
//! *forever* — under sustained overload (the `scaleout` golden's 600 txn/s on
//! one coordinator) the queue grows without limit and p99 collapses into
//! seconds. [`AdmissionGate`] keeps the FIFO semaphore but adds graceful
//! degradation around it:
//!
//! * a **bounded wait queue** ([`AdmissionPolicy::max_queue`]): when the
//!   queue is full, new arrivals are shed immediately with
//!   [`AbortReason::Overloaded`](geotp_middleware::AbortReason::Overloaded)
//!   and a retry-after hint scaled by the current queue depth;
//! * a **queue-time deadline** ([`AdmissionPolicy::queue_deadline`]): a
//!   queued `begin` that cannot get a permit in time is shed rather than
//!   left to age out in the queue;
//! * **load telemetry** ([`AdmissionGate::load`]): permit occupancy, queue
//!   depth and shed counters, consumed by the
//!   [`SessionRouter`](crate::SessionRouter)'s saturation probe so routing
//!   steers new sessions away from saturated coordinators before their
//!   leases lapse.
//!
//! The default policy is *legacy-compatible*: no queue bound, no deadline —
//! exactly the old unbounded semaphore wait, so existing experiments and
//! fingerprints are unchanged unless a configuration opts in.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use geotp_simrt::sync::semaphore::SemaphorePermit;
use geotp_simrt::sync::Semaphore;
use geotp_simrt::{now, timeout};

/// How a coordinator's `begin` admission degrades under overload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Maximum `begin`s waiting for a worker permit; arrivals beyond this are
    /// shed immediately. `None` = unbounded queue (legacy behaviour).
    pub max_queue: Option<usize>,
    /// How long a queued `begin` may wait before it is shed. `None` = wait
    /// forever (legacy behaviour).
    pub queue_deadline: Option<Duration>,
    /// Base retry-after hint attached to sheds; the actual hint scales with
    /// the queue depth at shed time (deeper queue ⇒ back off longer).
    pub retry_after: Duration,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            max_queue: None,
            queue_deadline: None,
            retry_after: Duration::from_millis(50),
        }
    }
}

impl AdmissionPolicy {
    /// A bounded policy: at most `max_queue` waiters, each waiting at most
    /// `queue_deadline`.
    pub fn bounded(max_queue: usize, queue_deadline: Duration) -> Self {
        Self {
            max_queue: Some(max_queue),
            queue_deadline: Some(queue_deadline),
            ..Self::default()
        }
    }

    /// Whether this policy ever sheds (false = legacy unbounded waits).
    pub fn sheds(&self) -> bool {
        self.max_queue.is_some() || self.queue_deadline.is_some()
    }
}

/// Why an admission attempt was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded wait queue was full on arrival.
    QueueFull,
    /// The queue-time deadline expired before a permit freed up.
    DeadlineExpired,
    /// The gate was closed (coordinator shutting down) — callers map this to
    /// a refusal, not an overload shed.
    Closed,
}

/// An admission rejection: why, and how long the client should back off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionReject {
    /// Why the `begin` was not admitted.
    pub reason: ShedReason,
    /// Suggested client backoff (scaled by queue depth at shed time).
    pub retry_after: Duration,
}

/// A granted admission: the worker permit (if the gate is bounded) and how
/// long the `begin` waited in the queue for it.
pub struct AdmissionTicket {
    /// The worker permit, held for the transaction's lifetime. `None` when
    /// the coordinator has unbounded capacity.
    pub permit: Option<SemaphorePermit>,
    /// Time spent queued before the permit was granted.
    pub queue_time: Duration,
}

impl std::fmt::Debug for AdmissionTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionTicket")
            .field("permit", &self.permit.is_some())
            .field("queue_time", &self.queue_time)
            .finish()
    }
}

/// Point-in-time load snapshot of one coordinator's admission gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoordinatorLoad {
    /// Worker-permit capacity (`0` = unbounded).
    pub capacity: usize,
    /// Permits currently held by live transactions.
    pub inflight: usize,
    /// `begin`s currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Total `begin`s admitted (fast-path and queued).
    pub admitted: u64,
    /// Total `begin`s shed because the queue was full.
    pub shed_queue_full: u64,
    /// Total `begin`s shed because their queue-time deadline expired.
    pub shed_deadline: u64,
}

impl CoordinatorLoad {
    /// Total sheds (queue-full + deadline).
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline
    }

    /// Whether the coordinator is saturated: every permit taken *and*
    /// arrivals are queueing behind them. Unbounded gates never saturate.
    pub fn is_saturated(&self) -> bool {
        self.capacity > 0 && self.inflight >= self.capacity && self.queue_depth > 0
    }
}

/// Decrements the gate's queue-depth counter even if the waiting future is
/// dropped mid-queue (client abandoned the `begin`).
struct QueueSlot<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for QueueSlot<'_> {
    fn drop(&mut self) {
        let gate = self.gate;
        gate.queued.set(gate.queued.get() - 1);
        gate.publish_queue_depth();
    }
}

/// One coordinator's admission gate: the worker-pool semaphore plus the
/// bounded-queue/deadline policy and its load counters.
pub struct AdmissionGate {
    permits: Option<Rc<Semaphore>>,
    capacity: usize,
    policy: AdmissionPolicy,
    queued: Cell<usize>,
    admitted: Cell<u64>,
    shed_queue_full: Cell<u64>,
    shed_deadline: Cell<u64>,
    /// Coordinator index used to label this gate's telemetry metrics.
    metrics_index: Cell<u32>,
}

impl AdmissionGate {
    /// A gate over `capacity` worker permits (`0` = unbounded: everything is
    /// admitted instantly and the policy never applies).
    pub fn new(capacity: usize, policy: AdmissionPolicy) -> Self {
        Self {
            permits: (capacity > 0).then(|| Rc::new(Semaphore::new(capacity))),
            capacity,
            policy,
            queued: Cell::new(0),
            admitted: Cell::new(0),
            shed_queue_full: Cell::new(0),
            shed_deadline: Cell::new(0),
            metrics_index: Cell::new(0),
        }
    }

    /// Tag the gate with its coordinator index so its metrics don't collide
    /// across a multi-coordinator tier.
    pub fn with_metrics_index(self, index: u32) -> Self {
        self.metrics_index.set(index);
        self
    }

    fn publish_queue_depth(&self) {
        geotp_telemetry::gauge_set(
            "cluster.admission_queue",
            "",
            self.metrics_index.get(),
            self.queued.get() as i64,
        );
    }

    /// The configured policy.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Current load snapshot.
    pub fn load(&self) -> CoordinatorLoad {
        let inflight = match &self.permits {
            Some(sem) => self.capacity - sem.available_permits().min(self.capacity),
            None => 0,
        };
        CoordinatorLoad {
            capacity: self.capacity,
            inflight,
            queue_depth: self.queued.get(),
            admitted: self.admitted.get(),
            shed_queue_full: self.shed_queue_full.get(),
            shed_deadline: self.shed_deadline.get(),
        }
    }

    /// Whether the gate is saturated right now (see
    /// [`CoordinatorLoad::is_saturated`]).
    pub fn is_saturated(&self) -> bool {
        self.load().is_saturated()
    }

    /// The retry-after hint for a shed happening now: the policy's base,
    /// scaled by the queue depth (a deeper queue tells clients to back off
    /// longer), capped at one second.
    fn retry_after_hint(&self) -> Duration {
        let depth = self.queued.get() as u32;
        self.policy
            .retry_after
            .saturating_mul(depth + 1)
            .min(Duration::from_secs(1))
    }

    /// Admit one `begin`: fast-path when a permit is free; otherwise wait in
    /// the bounded FIFO queue (order is the semaphore's FIFO order) until a
    /// permit frees or the queue-time deadline expires.
    pub async fn admit(&self) -> Result<AdmissionTicket, AdmissionReject> {
        let Some(sem) = &self.permits else {
            return Ok(AdmissionTicket {
                permit: None,
                queue_time: Duration::ZERO,
            });
        };
        if let Some(permit) = sem.try_acquire() {
            self.admitted.set(self.admitted.get() + 1);
            geotp_telemetry::counter_add("cluster.admitted", "", self.metrics_index.get(), 1);
            return Ok(AdmissionTicket {
                permit: Some(permit),
                queue_time: Duration::ZERO,
            });
        }
        if let Some(max_queue) = self.policy.max_queue {
            if self.queued.get() >= max_queue {
                self.shed_queue_full.set(self.shed_queue_full.get() + 1);
                geotp_telemetry::counter_add(
                    "cluster.sheds",
                    "queue_full",
                    self.metrics_index.get(),
                    1,
                );
                let retry_after = self.retry_after_hint();
                // The hint *distribution* matters for tuning the backoff
                // policy, not just the shed count — record it as a histogram
                // so the metrics timeline shows how hard clients were told
                // to back off as the queue deepened.
                geotp_telemetry::observe(
                    "cluster.retry_after",
                    "queue_full",
                    self.metrics_index.get(),
                    retry_after,
                );
                return Err(AdmissionReject {
                    reason: ShedReason::QueueFull,
                    retry_after,
                });
            }
        }
        let enqueued = now();
        self.queued.set(self.queued.get() + 1);
        self.publish_queue_depth();
        let _slot = QueueSlot { gate: self };
        let acquired = match self.policy.queue_deadline {
            Some(deadline) => match timeout(deadline, sem.acquire()).await {
                Ok(result) => result,
                Err(_elapsed) => {
                    self.shed_deadline.set(self.shed_deadline.get() + 1);
                    geotp_telemetry::counter_add(
                        "cluster.sheds",
                        "deadline",
                        self.metrics_index.get(),
                        1,
                    );
                    let retry_after = self.retry_after_hint();
                    geotp_telemetry::observe(
                        "cluster.retry_after",
                        "deadline",
                        self.metrics_index.get(),
                        retry_after,
                    );
                    // How long the shed `begin` actually waited before its
                    // deadline expired (= the deadline, but recorded from
                    // the clock so the histogram pins real queue residence).
                    geotp_telemetry::observe(
                        "cluster.queue_wait",
                        "expired",
                        self.metrics_index.get(),
                        now().duration_since(enqueued),
                    );
                    return Err(AdmissionReject {
                        reason: ShedReason::DeadlineExpired,
                        retry_after,
                    });
                }
            },
            None => sem.acquire().await,
        };
        match acquired {
            Ok(permit) => {
                self.admitted.set(self.admitted.get() + 1);
                geotp_telemetry::counter_add("cluster.admitted", "", self.metrics_index.get(), 1);
                Ok(AdmissionTicket {
                    permit: Some(permit),
                    queue_time: now().duration_since(enqueued),
                })
            }
            Err(_closed) => Err(AdmissionReject {
                reason: ShedReason::Closed,
                retry_after: Duration::ZERO,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_simrt::{sleep, spawn, Runtime};
    use std::cell::RefCell;

    #[test]
    fn unbounded_gate_admits_instantly() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let gate = AdmissionGate::new(0, AdmissionPolicy::default());
            let ticket = gate.admit().await.unwrap();
            assert!(ticket.permit.is_none());
            assert_eq!(ticket.queue_time, Duration::ZERO);
            assert_eq!(gate.load().capacity, 0);
            assert!(!gate.is_saturated());
        });
    }

    #[test]
    fn queue_full_sheds_with_depth_scaled_hint() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let policy = AdmissionPolicy::bounded(1, Duration::from_secs(10));
            let gate = Rc::new(AdmissionGate::new(1, policy));
            let held = gate.admit().await.unwrap();
            // One waiter fills the queue.
            let waiter = {
                let gate = Rc::clone(&gate);
                spawn(async move { gate.admit().await.map(|t| t.queue_time) })
            };
            sleep(Duration::from_millis(1)).await;
            assert_eq!(gate.load().queue_depth, 1);
            assert!(gate.is_saturated());
            // The next arrival is shed, with the hint scaled by queue depth.
            let reject = gate.admit().await.unwrap_err();
            assert_eq!(reject.reason, ShedReason::QueueFull);
            assert_eq!(reject.retry_after, policy.retry_after * 2);
            assert_eq!(gate.load().shed_queue_full, 1);
            // Releasing the held permit admits the queued waiter FIFO.
            drop(held);
            let queue_time = waiter.await.unwrap();
            assert_eq!(queue_time, Duration::from_millis(1));
            assert_eq!(gate.load().admitted, 2);
        });
    }

    #[test]
    fn deadline_expiry_sheds_queued_begin() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let policy = AdmissionPolicy::bounded(4, Duration::from_millis(100));
            let gate = Rc::new(AdmissionGate::new(1, policy));
            let _held = gate.admit().await.unwrap();
            let started = geotp_simrt::now();
            let reject = gate.admit().await.unwrap_err();
            assert_eq!(reject.reason, ShedReason::DeadlineExpired);
            assert_eq!(
                geotp_simrt::now().duration_since(started),
                Duration::from_millis(100)
            );
            let load = gate.load();
            assert_eq!(load.shed_deadline, 1);
            assert_eq!(load.queue_depth, 0, "timed-out waiter left the queue");
        });
    }

    #[test]
    fn shed_paths_record_retry_hint_and_queue_wait_histograms() {
        let mut rt = Runtime::new();
        let telemetry = geotp_telemetry::install();
        rt.block_on(async {
            // Queue-full shed: capacity 1, queue 1, so a third arrival bounces.
            let policy = AdmissionPolicy::bounded(1, Duration::from_secs(10));
            let gate = Rc::new(AdmissionGate::new(1, policy));
            let held = gate.admit().await.unwrap();
            let waiter = {
                let gate = Rc::clone(&gate);
                spawn(async move { gate.admit().await })
            };
            sleep(Duration::from_millis(1)).await;
            let reject = gate.admit().await.unwrap_err();
            assert_eq!(reject.reason, ShedReason::QueueFull);
            drop(held);
            drop(waiter.await.unwrap());

            // Deadline shed: the queued begin waits out its full deadline.
            let gate = Rc::new(AdmissionGate::new(
                1,
                AdmissionPolicy::bounded(4, Duration::from_millis(100)),
            ));
            let _held = gate.admit().await.unwrap();
            let reject = gate.admit().await.unwrap_err();
            assert_eq!(reject.reason, ShedReason::DeadlineExpired);
        });
        geotp_telemetry::uninstall();

        let snapshot = telemetry.metrics.snapshot();
        let histogram = |name: &str, label: &str| match snapshot.get(name, label, 0) {
            Some(geotp_telemetry::MetricValue::Histogram { count, mean, .. }) => (*count, *mean),
            other => panic!("{name}{{{label}}}: expected histogram, got {other:?}"),
        };
        // Both shed paths record the hint they handed back...
        let (count, mean) = histogram("cluster.retry_after", "queue_full");
        assert_eq!(count, 1);
        assert_eq!(mean, AdmissionPolicy::default().retry_after * 2);
        let (count, _mean) = histogram("cluster.retry_after", "deadline");
        assert_eq!(count, 1);
        // ...and the deadline path records how long the shed begin waited.
        let (count, mean) = histogram("cluster.queue_wait", "expired");
        assert_eq!(count, 1);
        assert_eq!(mean, Duration::from_millis(100));
    }

    #[test]
    fn queued_begins_are_admitted_in_fifo_order() {
        let mut rt = Runtime::new();
        let order = rt.block_on(async {
            let gate = Rc::new(AdmissionGate::new(
                1,
                AdmissionPolicy::bounded(8, Duration::from_secs(10)),
            ));
            let held = gate.admit().await.unwrap();
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut handles = Vec::new();
            for i in 0..4u32 {
                let gate = Rc::clone(&gate);
                let log = Rc::clone(&log);
                handles.push(spawn(async move {
                    let ticket = gate.admit().await.unwrap();
                    log.borrow_mut().push(i);
                    // Hold briefly so the next waiter's grant is observable.
                    sleep(Duration::from_millis(1)).await;
                    drop(ticket);
                }));
                // Deterministic enqueue order: let the waiter park.
                sleep(Duration::from_millis(1)).await;
            }
            drop(held);
            for h in handles {
                h.await;
            }
            Rc::try_unwrap(log).unwrap().into_inner()
        });
        assert_eq!(order, vec![0, 1, 2, 3], "grants follow enqueue order");
    }
}
